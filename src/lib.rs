//! # `xvc` — Composing XSL Transformations with XML Publishing Views
//!
//! A from-scratch Rust reproduction of the SIGMOD 2003 paper by Chengkai
//! Li, Philip Bohannon, Henry F. Korth and P.P.S. Narayan.
//!
//! Given an XML-publishing view `v` (a *schema-tree query* mapping
//! relational tables to an XML document) and an XSLT stylesheet `x`, the
//! composition algorithm produces a **stylesheet view** `v'` such that for
//! every database instance `I`:
//!
//! ```text
//! v'(I) = x(v(I))          (document order excluded)
//! ```
//!
//! — the XSLT run disappears; its work is pushed into SQL executed by the
//! relational engine, and none of the intermediate or unreferenced view
//! nodes are ever materialized.
//!
//! ## Quickstart
//!
//! ```
//! use xvc::prelude::*;
//!
//! // A database: one table, two rows.
//! let mut db = Database::new();
//! db.create_table(
//!     TableSchema::new(
//!         "city",
//!         vec![
//!             ColumnDef::new("id", ColumnType::Int),
//!             ColumnDef::new("name", ColumnType::Str),
//!         ],
//!     )
//!     .unwrap(),
//! );
//! db.insert("city", vec![Value::Int(1), Value::Str("chicago".into())]).unwrap();
//! db.insert("city", vec![Value::Int(2), Value::Str("nyc".into())]).unwrap();
//!
//! // A publishing view: <city id=... name=...> per row.
//! let mut view = SchemaTree::new();
//! view.add_root_node(ViewNode::new(
//!     1,
//!     "city",
//!     "c",
//!     parse_query("SELECT id, name FROM city").unwrap(),
//! ))
//! .unwrap();
//!
//! // A stylesheet renaming cities into <place> wrappers.
//! let xslt = parse_stylesheet(
//!     r#"<xsl:stylesheet>
//!          <xsl:template match="/"><places><xsl:apply-templates select="city"/></places></xsl:template>
//!          <xsl:template match="city"><place><xsl:value-of select="@name"/></place></xsl:template>
//!        </xsl:stylesheet>"#,
//! )
//! .unwrap();
//!
//! // Compose: the stylesheet disappears into SQL.
//! let composition = Composer::new(&view, &xslt, &db.catalog()).run().unwrap();
//!
//! // Publish through an Engine: tag queries are compiled to prepared
//! // plans once and cached across publishes (and across concurrent
//! // sessions); `.parallel(n)` evaluates independent root subtrees on n
//! // threads. Each request-scoped Session publishes through the shared
//! // warm cache.
//! let engine = Engine::new(&composition.view);
//! let direct = engine.session().publish(&db).unwrap().document;
//!
//! // Same document as materializing the view and running the stylesheet.
//! let full = Engine::new(&view).session().publish(&db).unwrap().document;
//! let expected = process(&xslt, &full).unwrap();
//! assert!(documents_equal_unordered(&direct, &expected));
//! assert_eq!(
//!     direct.to_xml(),
//!     "<places><place name=\"chicago\"/><place name=\"nyc\"/></places>"
//! );
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`xml`] (`xvc-xml`) | arena DOM, parser, serializers, unordered canonical comparison |
//! | [`xpath`] (`xvc-xpath`) | the paper's XPath dialect: paths, patterns, predicates, evaluation |
//! | [`rel`] (`xvc-rel`) | in-memory relational engine: SQL AST/parser/printer/evaluator |
//! | [`view`] (`xvc-view`) | schema-tree queries (Definition 1) and the XML publisher |
//! | [`xslt`] (`xvc-xslt`) | stylesheet model, Figure-5 engine, `XSLT_basic` checks, §5.2 rewrites |
//! | [`core`] (`xvc-core`) | the composition algorithm: CTG → TVQ → OTT → stylesheet view; §5.3 recursion |
//! | [`analyze`] (`xvc-analyze`) | `xvc check` static analysis: dialect conformance, tag-query typing, CTG blowup prediction |
//! | [`serve`] (in this crate) | `xvc serve`: a concurrent publishing server over one shared [`view::Engine`] |

#![warn(missing_docs)]

pub mod serve;

pub use xvc_analyze as analyze;
pub use xvc_core as core;
pub use xvc_rel as rel;
pub use xvc_view as view;
pub use xvc_xml as xml;
pub use xvc_xpath as xpath;
pub use xvc_xslt as xslt;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use xvc_analyze::{check_sources, check_workload, CheckOptions, Report};
    pub use xvc_core::{
        check_composition, compose_recursive, ComposeOptions, ComposeStats, Composer, Composition,
        Divergence, DivergenceKind, RecursiveComposition,
    };
    pub use xvc_rel::{
        explain_query, parse_query, prepare, BatchResult, Catalog, ColumnDef, ColumnType, Database,
        EvalStats, PreparedPlan, SelectQuery, TableSchema, Value,
    };
    pub use xvc_view::{
        analyze_view_bounds, AttrProjection, Engine, EngineTotals, PublishStats, PublishTrace,
        Published, SchemaTree, Session, Streamed, ViewBounds, ViewNode,
    };
    pub use xvc_xml::{documents_equal_unordered, Document};
    pub use xvc_xpath::{parse_expr, parse_path, parse_pattern};
    pub use xvc_xslt::{check_basic, parse_stylesheet, process, Stylesheet};
}
