//! `xvc` — command-line front end for XSLT/view composition.
//!
//! ```text
//! xvc compose --view v.view --xslt s.xsl --ddl schema.sql [--rewrites]
//! xvc publish --view v.view --ddl schema.sql --data DIR
//! xvc run     --view v.view --xslt s.xsl --ddl schema.sql --data DIR
//!             [--naive] [--rewrites] [--pretty]
//! xvc explain --sql "SELECT ..." --ddl schema.sql
//! xvc explain --view v.view --xslt s.xsl --ddl schema.sql [--rewrites]
//! xvc stats   --view v.view --xslt s.xsl --ddl schema.sql [--data DIR]
//! xvc deps    --view v.view --xslt s.xsl --ddl schema.sql [--json]
//! xvc serve   --view v.view --ddl schema.sql --data DIR [--xslt s.xsl]
//!             [--addr HOST:PORT] [--threads N] [--parallel N]
//! xvc check   [FILE...] [--view FILE] [--xslt FILE] [--ddl FILE]
//! ```
//!
//! * `compose` prints the composed stylesheet view (tag queries included);
//! * `publish` materializes `v(I)` from CSV data (`DIR/<table>.csv`);
//! * `run` prints the transformation result — by default via the composed
//!   view (`v'(I)`), with `--naive` via materialize-then-transform
//!   (`x(v(I))`); both paths are verified against each other, and any
//!   disagreement is reported as a localized divergence diff;
//! * `explain` prints evaluation plans (join order, join strategy, pushed
//!   predicates) plus the prepared set-oriented pipeline (scan fusion,
//!   fused pushdown, batch join keys) — for one `--sql` query, or for
//!   every composed tag query;
//! * `stats` prints per-stage composition counters (CTG/TVQ sizes, §4.5
//!   duplication factor, unbind depth) and, with `--data`, the relational
//!   engine's work executing the composed view;
//! * `deps` prints the static table→view dependency map
//!   ([`xvc::core::deps`]): every base `(table, column)` the TVQ reads,
//!   partitioned by role (scan/join-key/predicate/guard/output) and
//!   classified for update-safety, each edge justified by a fact chain —
//!   the map that drives `Session::republish_delta`;
//! * `check` runs the static analyzer (dialect conformance, tag-query
//!   scoping/typing, CTG blowup prediction) and prints rustc-style
//!   diagnostics; positional files are classified by extension
//!   (`.view`, `.xsl`/`.xslt`, `.sql`/`.ddl`).
//!
//! Exit codes: 0 success (warnings allowed), 1 failure or error-level
//! diagnostics, 2 usage errors (unknown command/flag, missing argument).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use xvc::core::Error as XvcError;
use xvc::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {}", e.message);
            if e.usage {
                // Distinct exit code for "you invoked me wrongly", so
                // scripts can tell misuse from a failed check/compose.
                ExitCode::from(2)
            } else {
                ExitCode::FAILURE
            }
        }
    }
}

/// A CLI failure. `usage: true` means the invocation itself was malformed
/// (unknown command/flag, missing or unclassifiable argument) — exit 2;
/// everything else exits 1.
struct CliError {
    message: String,
    usage: bool,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            usage: true,
        }
    }
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError {
            message,
            usage: false,
        }
    }
}

/// All library failures funnel through [`xvc::core::Error`]: the loaders
/// and commands below return typed errors, and this is the single point
/// where they are rendered for the terminal.
impl From<XvcError> for CliError {
    fn from(e: XvcError) -> Self {
        CliError {
            message: e.to_string(),
            usage: false,
        }
    }
}

impl From<xvc::view::Error> for CliError {
    fn from(e: xvc::view::Error) -> Self {
        XvcError::from(e).into()
    }
}

impl From<xvc::rel::Error> for CliError {
    fn from(e: xvc::rel::Error) -> Self {
        XvcError::from(e).into()
    }
}

impl From<xvc::xslt::Error> for CliError {
    fn from(e: xvc::xslt::Error) -> Self {
        XvcError::from(e).into()
    }
}

struct Opts {
    view: Option<PathBuf>,
    xslt: Option<PathBuf>,
    ddl: Option<PathBuf>,
    data: Option<PathBuf>,
    sql: Option<String>,
    files: Vec<PathBuf>,
    rewrites: bool,
    naive: bool,
    pretty: bool,
    optimize: bool,
    prune: bool,
    json: bool,
    addr: Option<String>,
    threads: Option<usize>,
    parallel: Option<usize>,
}

fn run(args: Vec<String>) -> Result<ExitCode, CliError> {
    let Some(command) = args.first().cloned() else {
        return Err(CliError::usage(usage()));
    };
    let mut opts = Opts {
        view: None,
        xslt: None,
        ddl: None,
        data: None,
        sql: None,
        files: Vec::new(),
        rewrites: false,
        naive: false,
        pretty: false,
        optimize: false,
        prune: false,
        json: false,
        addr: None,
        threads: None,
        parallel: None,
    };
    let mut it = args.into_iter().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--view" => opts.view = Some(path_arg(&mut it, "--view")?),
            "--xslt" => opts.xslt = Some(path_arg(&mut it, "--xslt")?),
            "--ddl" => opts.ddl = Some(path_arg(&mut it, "--ddl")?),
            "--data" => opts.data = Some(path_arg(&mut it, "--data")?),
            "--sql" => {
                opts.sql = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--sql needs a query argument"))?,
                )
            }
            "--addr" => {
                opts.addr = Some(
                    it.next()
                        .ok_or_else(|| CliError::usage("--addr needs a host:port argument"))?,
                )
            }
            "--threads" => opts.threads = Some(count_arg(&mut it, "--threads")?),
            "--parallel" => opts.parallel = Some(count_arg(&mut it, "--parallel")?),
            "--rewrites" => opts.rewrites = true,
            "--optimize" => opts.optimize = true,
            "--prune" => opts.prune = true,
            "--json" => opts.json = true,
            "--naive" => opts.naive = true,
            "--pretty" => opts.pretty = true,
            "--help" | "-h" => {
                println!("{}", usage());
                return Ok(ExitCode::SUCCESS);
            }
            other if other.starts_with('-') => {
                return Err(CliError::usage(format!(
                    "unknown flag `{other}`\n{}",
                    usage()
                )))
            }
            _ => opts.files.push(PathBuf::from(arg)),
        }
    }
    if command != "check" && !opts.files.is_empty() {
        return Err(CliError::usage(format!(
            "unexpected argument `{}` — only `check` takes positional files\n{}",
            opts.files[0].display(),
            usage()
        )));
    }
    let code = match command.as_str() {
        "compose" => {
            cmd_compose(&opts)?;
            ExitCode::SUCCESS
        }
        "publish" => {
            cmd_publish(&opts)?;
            ExitCode::SUCCESS
        }
        "run" => {
            cmd_run(&opts)?;
            ExitCode::SUCCESS
        }
        "explain" => {
            cmd_explain(&opts)?;
            ExitCode::SUCCESS
        }
        "stats" => {
            cmd_stats(&opts)?;
            ExitCode::SUCCESS
        }
        "deps" => {
            cmd_deps(&opts)?;
            ExitCode::SUCCESS
        }
        "serve" => {
            cmd_serve(&opts)?;
            ExitCode::SUCCESS
        }
        "check" => cmd_check(&opts)?,
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            ExitCode::SUCCESS
        }
        other => {
            return Err(CliError::usage(format!(
                "unknown command `{other}`\n{}",
                usage()
            )))
        }
    };
    Ok(code)
}

fn usage() -> String {
    "usage:\n  \
     xvc compose --view FILE --xslt FILE --ddl FILE [--rewrites] [--optimize] [--prune]\n  \
     xvc publish --view FILE --ddl FILE --data DIR [--pretty]\n  \
     xvc run     --view FILE --xslt FILE --ddl FILE --data DIR \
     [--naive] [--rewrites] [--pretty] [--prune]\n  \
     xvc explain --sql QUERY --ddl FILE\n  \
     xvc explain --view FILE --xslt FILE --ddl FILE [--rewrites] [--optimize] [--prune]\n  \
     xvc stats   --view FILE --xslt FILE --ddl FILE [--data DIR] [--rewrites] [--optimize] \
     [--prune]\n  \
     xvc deps    --view FILE --xslt FILE --ddl FILE [--json]\n  \
     xvc serve   --view FILE --ddl FILE --data DIR [--xslt FILE] \
     [--addr HOST:PORT] [--threads N] [--parallel N]\n  \
     xvc check   [FILE...] [--view FILE] [--xslt FILE] [--ddl FILE] [--json]\n\n\
     `serve` loads everything once, composes when --xslt is given, and answers\n\
     GET /doc, GET /publish, POST /dml, POST /ddl, GET /stats, GET /healthz and\n\
     POST /shutdown over HTTP from a pool of --threads workers (default 4)\n\
     sharing one plan cache.\n\
     `check` classifies positional files by extension: .view (publishing view),\n\
     .xsl/.xslt (stylesheet), .sql/.ddl (catalog). It exits 0 when only\n\
     warnings were emitted, 1 on error-level diagnostics, 2 on usage errors.\n\
     With --json it prints one JSON object per diagnostic per line\n\
     (code, severity, stage, file, span, message, help).\n\
     `--prune` removes provably dead TVQ subtrees and redundant conjuncts\n\
     during composition (see the XVC4xx diagnostics for what it would do)."
        .to_owned()
}

fn path_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<PathBuf, CliError> {
    it.next()
        .map(PathBuf::from)
        .ok_or_else(|| CliError::usage(format!("{flag} needs a path argument")))
}

fn count_arg(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<usize, CliError> {
    let raw = it
        .next()
        .ok_or_else(|| CliError::usage(format!("{flag} needs a number argument")))?;
    raw.parse()
        .map_err(|_| CliError::usage(format!("{flag} needs a number, got `{raw}`")))
}

/// The path for `flag`, or the legacy "missing --flag FILE" failure
/// (exit 1, not a usage error — the command was recognizable).
fn require<'a>(path: &'a Option<PathBuf>, flag: &str) -> Result<&'a Path, CliError> {
    path.as_deref()
        .ok_or_else(|| CliError::from(format!("missing {flag}")))
}

fn read(path: &Path) -> Result<String, XvcError> {
    std::fs::read_to_string(path).map_err(|e| XvcError::io(path.display().to_string(), &e))
}

fn load_view(path: &Path) -> Result<SchemaTree, XvcError> {
    xvc::view::parse_view(&read(path)?)
        .map_err(|e| XvcError::in_file(path.display().to_string(), e))
}

fn load_xslt(path: &Path) -> Result<Stylesheet, XvcError> {
    parse_stylesheet(&read(path)?).map_err(|e| XvcError::in_file(path.display().to_string(), e))
}

fn load_catalog(path: &Path) -> Result<Catalog, XvcError> {
    xvc::rel::parse_ddl(&read(path)?).map_err(|e| XvcError::in_file(path.display().to_string(), e))
}

fn load_database(ddl_path: &Path, dir: &Path) -> Result<Database, XvcError> {
    let mut db = xvc::rel::database_from_ddl(&read(ddl_path)?)
        .map_err(|e| XvcError::in_file(ddl_path.display().to_string(), e))?;
    let tables: Vec<String> = db.catalog().iter().map(|t| t.name.clone()).collect();
    let mut loaded = 0;
    for table in tables {
        let csv_path = dir.join(format!("{table}.csv"));
        if csv_path.exists() {
            let rows = xvc::rel::load_csv(&mut db, &table, &read(&csv_path)?)
                .map_err(|e| XvcError::in_file(csv_path.display().to_string(), e))?;
            eprintln!("loaded {rows} rows into {table}");
            loaded += 1;
        }
    }
    if loaded == 0 {
        eprintln!(
            "warning: no <table>.csv files found in {} — all tables are empty",
            dir.display()
        );
    }
    Ok(db)
}

/// Composes the stylesheet view under the CLI flags. The returned
/// [`Composition`] carries the composed tree, per-stage statistics, and
/// the stylesheet actually composed (lowered under `--rewrites`) — the
/// one the result must be checked against.
fn compose_view(
    view: &SchemaTree,
    xslt: &Stylesheet,
    catalog: &Catalog,
    opts: &Opts,
) -> Result<Composition, XvcError> {
    Composer::new(view, xslt, catalog)
        .rewrites(opts.rewrites)
        .optimize(opts.optimize)
        .prune(opts.prune)
        .run()
}

fn cmd_compose(opts: &Opts) -> Result<(), CliError> {
    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let xslt = load_xslt(require(&opts.xslt, "--xslt FILE")?)?;
    let catalog = load_catalog(require(&opts.ddl, "--ddl FILE")?)?;
    let composition = compose_view(&view, &xslt, &catalog, opts)?;
    print!("{}", composition.view.render());
    Ok(())
}

fn cmd_publish(opts: &Opts) -> Result<(), CliError> {
    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let db = load_database(
        require(&opts.ddl, "--ddl FILE")?,
        require(&opts.data, "--data DIR")?,
    )?;
    let published = Engine::new(&view).session().publish(&db)?;
    emit(&published.document, opts.pretty);
    let stats = &published.stats;
    eprintln!(
        "({} elements, {} queries, {} tuples)",
        stats.elements, stats.queries_run, stats.tuples_fetched
    );
    Ok(())
}

fn cmd_run(opts: &Opts) -> Result<(), CliError> {
    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let xslt = load_xslt(require(&opts.xslt, "--xslt FILE")?)?;
    let db = load_database(
        require(&opts.ddl, "--ddl FILE")?,
        require(&opts.data, "--data DIR")?,
    )?;
    if opts.naive {
        let full = Engine::new(&view).session().publish(&db)?.document;
        let out = process(&xslt, &full)?;
        emit(&out, opts.pretty);
        return Ok(());
    }
    let composition = compose_view(&view, &xslt, &db.catalog(), opts)?;
    let published = Engine::new(&composition.view).session().publish(&db)?;
    // Belt and braces: verify against the naive pipeline; on disagreement,
    // report where and which tag query is responsible.
    match check_composition(&view, &composition.stylesheet, &composition.view, &db) {
        Ok(None) => {}
        Ok(Some(divergence)) => {
            return Err(CliError::from(format!(
                "internal error: v'(I) != x(v(I))\n{divergence}"
            )))
        }
        Err(e) => {
            return Err(CliError::from(format!(
                "internal error verifying v'(I) = x(v(I)): {e}"
            )))
        }
    }
    emit(&published.document, opts.pretty);
    eprintln!(
        "(composed execution: {} elements, {} queries)",
        published.stats.elements, published.stats.queries_run
    );
    Ok(())
}

fn cmd_explain(opts: &Opts) -> Result<(), CliError> {
    let catalog = load_catalog(require(&opts.ddl, "--ddl FILE")?)?;
    // One ad-hoc query…
    if let Some(sql) = &opts.sql {
        let q = parse_query(sql)?;
        let plan = explain_query(&q, &catalog)?;
        println!("{}", plan.trim_end_matches('\n'));
        println!();
        println!(
            "{}",
            prepare(&q, &catalog)?.describe().trim_end_matches('\n')
        );
        return Ok(());
    }
    // …or every tag query of the composed stylesheet view, with the
    // static cardinality bounds that drive the batched-vs-scalar and
    // join-strategy decisions.
    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let xslt = load_xslt(require(&opts.xslt, "--xslt FILE")?)?;
    let composition = compose_view(&view, &xslt, &catalog, opts)?;
    let bounds = analyze_view_bounds(&composition.view, &catalog);
    let mut printed = 0;
    for vid in composition.view.node_ids() {
        let Some(node) = composition.view.node(vid) else {
            continue;
        };
        let Some(q) = &node.query else { continue };
        if printed > 0 {
            println!();
        }
        println!("<{}> tag query:", node.tag);
        if let Some(nb) = bounds.node(vid) {
            println!(
                "  bounds: fan-out {}, per-document {}",
                nb.fan_out.card, nb.global
            );
        }
        let plan = explain_query(q, &catalog)?;
        for line in plan.lines() {
            println!("  {line}");
        }
        let prepared = prepare(q, &catalog)?.with_binding_bound(bounds.batch_bound(vid));
        for line in prepared.describe().lines() {
            println!("  {line}");
        }
        printed += 1;
    }
    if printed == 0 {
        println!("(composed view has no tag queries — all literal output)");
    }
    Ok(())
}

fn cmd_stats(opts: &Opts) -> Result<(), CliError> {
    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let xslt = load_xslt(require(&opts.xslt, "--xslt FILE")?)?;
    let catalog = load_catalog(require(&opts.ddl, "--ddl FILE")?)?;
    let composition = compose_view(&view, &xslt, &catalog, opts)?;
    println!("composition:");
    for line in composition.stats.to_string().lines() {
        println!("  {line}");
    }
    // With data, also measure what executing the composed view costs —
    // publishing twice through one warm session so the plan cache shows a
    // steady-state (warm) hit rate.
    if let Some(dir) = &opts.data {
        let db = load_database(require(&opts.ddl, "--ddl FILE")?, dir)?;
        let mut session = Engine::new(&composition.view).session();
        session.publish(&db)?; // cold: fills the plan cache
        let published = session.publish(&db)?;
        let p = &published.stats;
        println!("publish (composed v'(I)):");
        println!(
            "  {} elements, {} attributes, {} tag-query executions, {} tuples fetched",
            p.elements, p.attributes, p.queries_run, p.tuples_fetched
        );
        println!(
            "  plan cache: {} prepared, {} hits ({:.0}% warm hit rate), memo {} hits / {} misses",
            p.plans_prepared,
            p.plan_cache_hits,
            p.plan_cache_hit_rate() * 100.0,
            p.memo_hits,
            p.memo_misses
        );
        println!(
            "  batched execution: {} batches, {} max bindings per batch, {} rows regrouped",
            p.batches_executed, p.bindings_per_batch_max, p.rows_regrouped
        );
        println!(
            "  delta publish: {} nodes respliced, {} batches re-executed, {} delta rows in",
            p.nodes_respliced, p.batches_reexecuted, p.delta_rows_in
        );
        println!("engine:");
        for line in published.eval.to_string().lines() {
            println!("  {line}");
        }
    }
    Ok(())
}

fn cmd_deps(opts: &Opts) -> Result<(), CliError> {
    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let xslt = load_xslt(require(&opts.xslt, "--xslt FILE")?)?;
    let catalog = load_catalog(require(&opts.ddl, "--ddl FILE")?)?;
    let ctg = xvc::core::build_ctg(&view, &xslt)?;
    // Cyclic CTGs have no TVQ (§5.3): fall back to the raw-view walk with
    // every edge recompute-required, exactly as analyzer pass 7 does.
    let map = if ctg.has_cycle().is_some() {
        xvc::core::DependencyMap::of_view(&view, &catalog, true)
    } else {
        let tvq = xvc::core::build_tvq(
            &view,
            &xslt,
            &ctg,
            &catalog,
            xvc::core::tvq::DEFAULT_TVQ_LIMIT,
        )?;
        xvc::core::DependencyMap::of_tvq(&tvq, &view, &catalog)
    };
    if opts.json {
        println!("{}", map.to_json());
    } else {
        print!("{}", map.render());
    }
    Ok(())
}

/// `xvc serve`: composes once (when `--xslt` is given), loads the data,
/// and serves publish/DML/DDL/stats requests from a worker pool behind one
/// shared `Engine`. Prints the bound address on stdout (flushed, so
/// scripts can wait on it) and blocks until `POST /shutdown`.
fn cmd_serve(opts: &Opts) -> Result<(), CliError> {
    use std::io::Write as _;

    let view = load_view(require(&opts.view, "--view FILE")?)?;
    let db = load_database(
        require(&opts.ddl, "--ddl FILE")?,
        require(&opts.data, "--data DIR")?,
    )?;
    let tree = match &opts.xslt {
        Some(path) => {
            let xslt = load_xslt(path)?;
            compose_view(&view, &xslt, &db.catalog(), opts)?.view
        }
        None => view,
    };
    let threads = opts.threads.unwrap_or(4);
    let engine = Engine::new(&tree).parallel(opts.parallel.unwrap_or(1));
    let addr = opts.addr.as_deref().unwrap_or("127.0.0.1:7070");
    let server = xvc::serve::Server::start(engine, db, addr, threads)
        .map_err(|e| CliError::from(format!("serve: {e}")))?;
    println!(
        "listening on http://{} ({threads} worker threads)",
        server.addr()
    );
    std::io::stdout().flush().ok();
    server.join();
    Ok(())
}

fn cmd_check(opts: &Opts) -> Result<ExitCode, CliError> {
    use xvc::analyze::{
        check_sources, render, render_summary, sort_for_display, CheckOptions, Sources,
    };

    let mut view_path = opts.view.clone();
    let mut xslt_path = opts.xslt.clone();
    let mut ddl_path = opts.ddl.clone();
    for f in &opts.files {
        match f.extension().and_then(|e| e.to_str()) {
            Some("view") => view_path = Some(f.clone()),
            Some("xsl" | "xslt") => xslt_path = Some(f.clone()),
            Some("sql" | "ddl") => ddl_path = Some(f.clone()),
            _ => {
                return Err(CliError::usage(format!(
                    "cannot classify `{}` by extension — expected .view, .xsl/.xslt or .sql/.ddl",
                    f.display()
                )))
            }
        }
    }
    if view_path.is_none() && xslt_path.is_none() {
        return Err(CliError::usage(format!(
            "check needs a view and/or a stylesheet\n{}",
            usage()
        )));
    }
    let view_src = match &view_path {
        Some(p) => Some((p.display().to_string(), read(p)?)),
        None => None,
    };
    let xslt_src = match &xslt_path {
        Some(p) => Some((p.display().to_string(), read(p)?)),
        None => None,
    };
    let catalog = match &ddl_path {
        Some(p) => Some(
            xvc::rel::parse_ddl(&read(p)?)
                .map_err(|e| XvcError::in_file(p.display().to_string(), e))?,
        ),
        None => None,
    };
    let report = check_sources(
        view_src.as_ref().map(|(_, s)| s.as_str()),
        xslt_src.as_ref().map(|(_, s)| s.as_str()),
        catalog.as_ref(),
        &CheckOptions::default(),
    );
    let sources = Sources {
        view: view_src.as_ref().map(|(n, s)| (n.as_str(), s.as_str())),
        stylesheet: xslt_src.as_ref().map(|(n, s)| (n.as_str(), s.as_str())),
    };
    // Presentation order: by file, span offset, code — duplicates dropped.
    let display = sort_for_display(&report.diagnostics);
    if opts.json {
        for d in &display {
            println!(
                "{}",
                diag_to_json(
                    d,
                    view_src.as_ref().map(|(n, _)| n.as_str()),
                    xslt_src.as_ref().map(|(n, _)| n.as_str()),
                )
            );
        }
    } else {
        for (i, d) in display.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print!("{}", render(d, &sources));
        }
        println!("{}", render_summary(&display));
        if let Some(p) = &report.prediction {
            if !p.cyclic {
                eprintln!(
                    "(§4.5 prediction: {} CTG nodes -> {} TVQ nodes, duplication factor {:.2})",
                    p.ctg_nodes, p.predicted_tvq_nodes, p.duplication_factor
                );
            }
        }
    }
    Ok(if report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// One diagnostic as a single-line JSON object (no serde in-tree; the
/// schema is stable: code, severity, stage, file, span, message, help,
/// justification).
fn diag_to_json(
    d: &xvc::analyze::Diagnostic,
    view_name: Option<&str>,
    xslt_name: Option<&str>,
) -> String {
    use xvc::analyze::Stage;
    let stage = match d.stage {
        Stage::View => "view",
        Stage::Stylesheet => "stylesheet",
        Stage::Composed => "composed",
        Stage::General => "general",
    };
    let file = match d.stage {
        Stage::View => view_name,
        Stage::Stylesheet => xslt_name,
        Stage::Composed | Stage::General => None,
    };
    let mut s = format!(
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"stage\":\"{stage}\"",
        d.code.as_str(),
        d.severity
    );
    match file {
        Some(f) => s.push_str(&format!(",\"file\":\"{}\"", json_escape(f))),
        None => s.push_str(",\"file\":null"),
    }
    match d.span {
        Some(sp) => s.push_str(&format!(
            ",\"span\":{{\"start\":{},\"end\":{}}}",
            sp.start, sp.end
        )),
        None => s.push_str(",\"span\":null"),
    }
    s.push_str(&format!(",\"message\":\"{}\"", json_escape(&d.message)));
    match &d.help {
        Some(h) => s.push_str(&format!(",\"help\":\"{}\"", json_escape(h))),
        None => s.push_str(",\"help\":null"),
    }
    s.push_str(",\"justification\":[");
    for (i, j) in d.justification.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!("\"{}\"", json_escape(j)));
    }
    s.push_str("]}");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn emit(doc: &Document, pretty: bool) {
    if pretty {
        print!("{}", doc.to_pretty_xml());
    } else {
        println!("{}", doc.to_xml());
    }
}
