//! `xvc serve` — a concurrent publishing server over one shared [`Engine`].
//!
//! The server loads the catalog, data and (composed) view once at startup,
//! publishes the initial document, and then answers requests from a fixed
//! pool of worker threads. Every worker publishes through the same
//! [`Engine`], so prepared plans are compiled once and shared; per-request
//! state (memo, trace, statistics) lives in a throwaway
//! [`Session`](crate::view::Session) per request.
//!
//! The protocol is a deliberately small HTTP/1.1 subset (no external
//! dependencies — the request parser and response writer are hand-rolled
//! over [`std::net::TcpStream`], with keep-alive):
//!
//! | method & path   | body    | response |
//! |-----------------|---------|----------|
//! | `GET /doc`      | —       | the currently published document (XML) |
//! | `GET /publish`  | —       | a fresh `v(I)` against the live database (`?pretty=1` pretty-prints) |
//! | `POST /dml`     | SQL     | executes `INSERT`/`DELETE`, absorbs the delta via [`Session::republish_delta`](crate::view::Session::republish_delta), returns a JSON summary |
//! | `POST /ddl`     | SQL     | executes `CREATE TABLE`/`CREATE INDEX`, republishes in full (the catalog fingerprint changed, so the plan cache recompiles), returns JSON |
//! | `GET /stats`    | —       | engine totals + server counters as JSON |
//! | `GET /healthz`  | —       | `ok` |
//! | `POST /shutdown`| —       | acknowledges, then stops accepting and drains workers |
//!
//! Writes serialize on the published-document lock, then mutate the
//! database under its write lock, then republish under its read lock —
//! readers (`/publish`, `/doc`) never block each other and never observe a
//! half-applied mutation. Unknown paths get 404, malformed SQL 400.
//!
//! `GET /publish` **streams**: the response is `Transfer-Encoding:
//! chunked`, produced by [`Session::publish_to`](crate::view::Session::publish_to)
//! writing straight into the socket through a small chunking buffer — the
//! server never materializes the output document for this endpoint, so its
//! peak memory does not scale with document size. A publish error before
//! the first chunk goes out becomes a clean `500`; after bytes are on the
//! wire the connection is closed mid-body, which a chunked client detects
//! as truncation (no terminal chunk). Every other response carries
//! `Content-Length`, so clients can pipeline over one connection; `/doc`
//! serves a shared `Arc<str>` snapshot of the last published document
//! without copying it per request.

// Curated clippy::pedantic subset shared with `xvc-rel` / `xvc-view` /
// `xvc-analyze` (kept clean under `-D warnings` in ci.sh).
#![warn(
    clippy::doc_markdown,
    clippy::explicit_iter_loop,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::match_same_arms,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, PoisonError, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::rel::Database;
use crate::view::{Engine, Published};

/// How long a worker blocks on a socket read before re-checking the
/// shutdown flag. Bounds shutdown latency for idle keep-alive connections.
const READ_POLL: Duration = Duration::from_millis(200);

/// Upper bound on the request head (request line + headers).
const MAX_HEAD: usize = 16 * 1024;

/// Upper bound on a request body (`/dml`, `/ddl` SQL).
const MAX_BODY: usize = 1024 * 1024;

/// Chunking buffer for streamed responses: bytes queue here and go out as
/// one HTTP/1.1 chunk each time the buffer fills.
const CHUNK_BUF: usize = 8 * 1024;

/// The last published document, kept so `/doc` is a cache read and so
/// deltas chain: each `/dml` splices into the previous [`Published`]. The
/// serialized form is an `Arc<str>` so `/doc` hands the response body out
/// by reference count instead of cloning the whole document per request.
struct DocState {
    published: Published,
    xml: Arc<str>,
}

/// Everything the acceptor and the workers share.
struct State {
    engine: Engine,
    db: RwLock<Database>,
    doc: RwLock<DocState>,
    running: AtomicBool,
    addr: SocketAddr,
    threads: usize,
    requests: AtomicUsize,
    errors: AtomicUsize,
}

/// A running `xvc serve` instance: an acceptor thread feeding a fixed
/// worker pool over a channel. Start with [`Server::start`]; stop with
/// [`Server::shutdown`] (or `POST /shutdown`) and reap with
/// [`Server::join`].
pub struct Server {
    state: Arc<State>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7070`; port `0` picks a free one),
    /// publishes the initial document from `db` through `engine` — which
    /// warms the shared plan cache before the first request arrives — and
    /// spawns `threads` workers (at least one).
    ///
    /// The engine is switched to [`Engine::incremental`] so `/dml` can
    /// splice deltas into the served document.
    pub fn start(engine: Engine, db: Database, addr: &str, threads: usize) -> io::Result<Server> {
        let engine = engine.incremental(true);
        let published = engine
            .session()
            .publish(&db)
            .map_err(|e| io::Error::other(e.to_string()))?;
        let xml = Arc::<str>::from(published.document.to_xml());
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let threads = threads.max(1);
        let state = Arc::new(State {
            engine,
            db: RwLock::new(db),
            doc: RwLock::new(DocState { published, xml }),
            running: AtomicBool::new(true),
            addr: local,
            threads,
            requests: AtomicUsize::new(0),
            errors: AtomicUsize::new(0),
        });
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let state = Arc::clone(&state);
            let rx = Arc::clone(&rx);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("xvc-serve-{i}"))
                    .spawn(move || worker_loop(&state, &rx))?,
            );
        }
        let acceptor = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("xvc-serve-accept".to_owned())
                .spawn(move || {
                    for conn in listener.incoming() {
                        if !state.running.load(Ordering::SeqCst) {
                            break;
                        }
                        if let Ok(stream) = conn {
                            // A send only fails after every worker exited,
                            // which only happens once tx is dropped — i.e.
                            // never while we are still accepting.
                            let _ = tx.send(stream);
                        }
                    }
                    // Dropping tx closes the channel; workers drain what
                    // was queued and then exit.
                })?
        };
        Ok(Server {
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (the resolved port when started with port `0`).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Requests served so far (all endpoints, including errors).
    pub fn requests(&self) -> usize {
        self.state.requests.load(Ordering::SeqCst)
    }

    /// Stops accepting new connections and tells workers to finish up.
    /// Idempotent; `join` afterwards to wait for them.
    pub fn shutdown(&self) {
        self.state.running.store(false, Ordering::SeqCst);
        // Wake the acceptor out of its blocking accept.
        let _ = TcpStream::connect(self.state.addr);
    }

    /// Waits for the acceptor and every worker to exit. Call after
    /// [`Server::shutdown`] (or let a `POST /shutdown` trigger it) —
    /// joining a server nobody asked to stop blocks until somebody does.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// One parsed request off the wire.
struct Request {
    method: String,
    path: String,
    query: String,
    body: Vec<u8>,
    close: bool,
}

/// A response body: owned text, or a shared snapshot (`/doc`) handed out
/// by reference count.
enum Body {
    Text(String),
    Shared(Arc<str>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Text(s) => s.as_bytes(),
            Body::Shared(s) => s.as_bytes(),
        }
    }
}

/// One response about to go onto the wire.
struct Response {
    status: u16,
    content_type: &'static str,
    body: Body,
    /// Set by `POST /shutdown`: reply first, then stop the server.
    shutdown: bool,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Response {
        Response {
            status: 200,
            content_type,
            body: Body::Text(body),
            shutdown: false,
        }
    }

    fn error(status: u16, message: &str) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: Body::Text(format!("{message}\n")),
            shutdown: false,
        }
    }
}

fn worker_loop(state: &Arc<State>, rx: &Arc<Mutex<mpsc::Receiver<TcpStream>>>) {
    loop {
        let stream = {
            let guard = rx.lock().unwrap_or_else(PoisonError::into_inner);
            guard.recv()
        };
        let Ok(stream) = stream else {
            break; // channel closed: the acceptor is gone
        };
        let _ = handle_conn(state, stream);
    }
}

/// Serves one connection until the client closes it, asks to close, or the
/// server shuts down. Errors just drop the connection — the client sees a
/// reset, the server moves on.
fn handle_conn(state: &Arc<State>, stream: TcpStream) -> io::Result<()> {
    stream.set_read_timeout(Some(READ_POLL))?;
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut out = stream;
    loop {
        let Some(request) = read_request(&mut reader, &state.running)? else {
            return Ok(()); // clean close (EOF, or idle at shutdown)
        };
        state.requests.fetch_add(1, Ordering::SeqCst);
        if request.path == "/publish" && matches!(request.method.as_str(), "GET" | "POST") {
            // Streamed endpoint: the session writes chunked XML straight
            // into the socket — no Response, no output document.
            let keep = !request.close && state.running.load(Ordering::SeqCst);
            match stream_publish(state, &request.query, &mut out, keep) {
                Ok(true) => {}
                Ok(false) => {
                    // Failed before the first byte: a clean 500 went out.
                    state.errors.fetch_add(1, Ordering::SeqCst);
                }
                Err(e) => {
                    // Mid-body failure: the body is truncated (no terminal
                    // chunk); drop the connection so the client notices.
                    state.errors.fetch_add(1, Ordering::SeqCst);
                    return Err(e);
                }
            }
            if !keep {
                return Ok(());
            }
            continue;
        }
        let response = dispatch(state, &request);
        if response.status >= 400 {
            state.errors.fetch_add(1, Ordering::SeqCst);
        }
        let keep = !request.close && !response.shutdown && state.running.load(Ordering::SeqCst);
        write_response(&mut out, &response, keep)?;
        if response.shutdown {
            state.running.store(false, Ordering::SeqCst);
            let _ = TcpStream::connect(state.addr); // wake the acceptor
        }
        if !keep {
            return Ok(());
        }
    }
}

/// Reads one request head + body. `Ok(None)` means "close the connection
/// quietly": EOF between requests, or shutdown while idle. Socket-read
/// timeouts are retried while the server runs so keep-alive connections
/// can sit idle without pinning an error path.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    running: &AtomicBool,
) -> io::Result<Option<Request>> {
    let Some(request_line) = read_head_line(reader, running)? else {
        return Ok(None);
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(io::Error::other("malformed request line"));
    };
    let (method, target) = (method.to_owned(), target.to_owned());
    let mut content_length = 0usize;
    let mut close = false;
    let mut head = request_line.len();
    loop {
        let Some(line) = read_head_line(reader, running)? else {
            return Ok(None);
        };
        head += line.len();
        if head > MAX_HEAD {
            return Err(io::Error::other("request head too large"));
        }
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        match name.trim().to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| io::Error::other("bad content-length"))?;
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    if content_length > MAX_BODY {
        return Err(io::Error::other("request body too large"));
    }
    let Some(body) = read_body(reader, content_length, running)? else {
        return Ok(None);
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_owned(), q.to_owned()),
        None => (target, String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        body,
        close,
    }))
}

/// One CRLF-terminated head line, timeouts retried while `running`.
/// `Ok(None)`: EOF with nothing buffered, or shutdown.
fn read_head_line(
    reader: &mut BufReader<TcpStream>,
    running: &AtomicBool,
) -> io::Result<Option<String>> {
    let mut line = String::new();
    loop {
        match reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(line.trim_end_matches(['\r', '\n']).to_owned())),
            Err(e) if is_timeout(&e) => {
                if !running.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::ConnectionReset => return Ok(None),
            Err(e) => return Err(e),
        }
    }
}

fn read_body(
    reader: &mut BufReader<TcpStream>,
    len: usize,
    running: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    let mut body = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Ok(None),
            Ok(n) => filled += n,
            Err(e) if is_timeout(&e) => {
                if !running.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(Some(body))
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn write_response(out: &mut TcpStream, response: &Response, keep_alive: bool) -> io::Result<()> {
    let reason = match response.status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let body = response.body.as_bytes();
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason,
        response.content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    out.write_all(head.as_bytes())?;
    out.write_all(body)?;
    out.flush()
}

/// Chunked-transfer writer over the socket for streamed responses. Bytes
/// buffer up to [`CHUNK_BUF`] and leave as one `len\r\n…\r\n` chunk; the
/// response head itself is deferred until the first chunk (or `finish`),
/// so a producer that fails before yielding any output leaves the wire
/// untouched and the caller can still send a clean error response.
struct ChunkedWriter<'a> {
    out: &'a mut TcpStream,
    buf: Vec<u8>,
    /// Deferred response head; `None` once on the wire.
    head: Option<String>,
}

impl<'a> ChunkedWriter<'a> {
    fn new(out: &'a mut TcpStream, head: String) -> ChunkedWriter<'a> {
        ChunkedWriter {
            out,
            buf: Vec::with_capacity(CHUNK_BUF),
            head: Some(head),
        }
    }

    /// Nothing on the wire yet: the caller may still respond normally.
    fn untouched(&self) -> bool {
        self.head.is_some()
    }

    fn flush_chunk(&mut self) -> io::Result<()> {
        if let Some(head) = self.head.take() {
            self.out.write_all(head.as_bytes())?;
        }
        if !self.buf.is_empty() {
            write!(self.out, "{:x}\r\n", self.buf.len())?;
            self.out.write_all(&self.buf)?;
            self.out.write_all(b"\r\n")?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes the tail chunk and writes the terminal `0\r\n\r\n`.
    fn finish(mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.out.write_all(b"0\r\n\r\n")?;
        self.out.flush()
    }
}

impl io::Write for ChunkedWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(buf);
        if self.buf.len() >= CHUNK_BUF {
            self.flush_chunk()?;
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.flush_chunk()?;
        self.out.flush()
    }
}

fn dispatch(state: &Arc<State>, request: &Request) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::ok("text/plain; charset=utf-8", "ok\n".to_owned()),
        ("GET", "/doc") => {
            let doc = state.doc.read().unwrap_or_else(PoisonError::into_inner);
            Response {
                status: 200,
                content_type: "application/xml; charset=utf-8",
                body: Body::Shared(Arc::clone(&doc.xml)),
                shutdown: false,
            }
        }
        ("POST", "/dml") => handle_dml(state, &request.body),
        ("POST", "/ddl") => handle_ddl(state, &request.body),
        ("GET", "/stats") => Response::ok("application/json", stats_json(state)),
        ("POST", "/shutdown") => Response {
            status: 200,
            content_type: "text/plain; charset=utf-8",
            body: Body::Text("shutting down\n".to_owned()),
            shutdown: true,
        },
        ("GET" | "POST", _) => Response::error(404, &format!("no such endpoint: {}", request.path)),
        _ => Response::error(405, &format!("unsupported method: {}", request.method)),
    }
}

/// `GET /publish`: a fresh publish against the live database through a
/// throwaway session, streamed to the client as a chunked response —
/// [`Session::publish_to`](crate::view::Session::publish_to) serializes
/// each root-level subtree into the socket as it is produced, so the
/// output document is never materialized server-side. Concurrent calls
/// share the warm plan cache and block only if a write is mid-flight.
///
/// Returns `Ok(true)` when the response (streamed 200) completed,
/// `Ok(false)` when the publish failed before any output and a clean 500
/// was written instead, and `Err` when the body was truncated mid-stream
/// (caller drops the connection).
fn stream_publish(
    state: &Arc<State>,
    query: &str,
    out: &mut TcpStream,
    keep_alive: bool,
) -> io::Result<bool> {
    let pretty = query_flag(query, "pretty");
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: application/xml; charset=utf-8\r\n\
         Transfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
        if keep_alive { "keep-alive" } else { "close" },
    );
    let db = state.db.read().unwrap_or_else(PoisonError::into_inner);
    let mut session = state.engine.session();
    let mut writer = ChunkedWriter::new(out, head);
    let result = if pretty {
        session.publish_pretty_to(&db, &mut writer)
    } else {
        session.publish_to(&db, &mut writer)
    };
    match result {
        Ok(_) => {
            writer.finish()?;
            Ok(true)
        }
        Err(e) => {
            if writer.untouched() {
                drop(writer);
                let response = Response::error(500, &format!("publish failed: {e}"));
                write_response(out, &response, keep_alive)?;
                Ok(false)
            } else {
                Err(io::Error::other(format!("publish failed mid-stream: {e}")))
            }
        }
    }
}

/// `POST /dml`: executes the SQL, maps the delta through the dependency
/// map and splices the served document in place. Lock order is doc.write →
/// db.write (mutation) → db.read (republish); every write takes the same
/// order, so writes serialize and readers interleave safely.
fn handle_dml(state: &Arc<State>, body: &[u8]) -> Response {
    let Ok(sql) = std::str::from_utf8(body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let mut doc = state.doc.write().unwrap_or_else(PoisonError::into_inner);
    let delta = {
        let mut db = state.db.write().unwrap_or_else(PoisonError::into_inner);
        match db.execute_dml(sql) {
            Ok(delta) => delta,
            Err(e) => return Response::error(400, &format!("dml failed: {e}")),
        }
    };
    let db = state.db.read().unwrap_or_else(PoisonError::into_inner);
    let mut session = state.engine.session();
    match session.republish_delta(&db, &doc.published, &delta) {
        Ok(published) => {
            let stats = &published.stats;
            let body = format!(
                "{{\"delta_rows\":{},\"nodes_respliced\":{},\"batches_reexecuted\":{},\"elements\":{}}}\n",
                delta.row_count(),
                stats.nodes_respliced,
                stats.batches_reexecuted,
                stats.elements,
            );
            doc.xml = Arc::<str>::from(published.document.to_xml());
            doc.published = published;
            Response::ok("application/json", body)
        }
        Err(e) => Response::error(500, &format!("republish failed: {e}")),
    }
}

/// `POST /ddl`: `CREATE TABLE` / `CREATE INDEX` against the live database.
/// The catalog fingerprint changes, so the next publish recompiles the
/// shared plan cache; the served document is republished in full here so
/// `/doc` never trails the schema.
fn handle_ddl(state: &Arc<State>, body: &[u8]) -> Response {
    let Ok(sql) = std::str::from_utf8(body) else {
        return Response::error(400, "body is not UTF-8");
    };
    let mut doc = state.doc.write().unwrap_or_else(PoisonError::into_inner);
    let applied = {
        let mut db = state.db.write().unwrap_or_else(PoisonError::into_inner);
        match db.execute_ddl(sql) {
            Ok(applied) => applied,
            Err(e) => return Response::error(400, &format!("ddl failed: {e}")),
        }
    };
    let db = state.db.read().unwrap_or_else(PoisonError::into_inner);
    match state.engine.session().publish(&db) {
        Ok(published) => {
            doc.xml = Arc::<str>::from(published.document.to_xml());
            doc.published = published;
            Response::ok(
                "application/json",
                format!("{{\"statements\":{applied}}}\n"),
            )
        }
        Err(e) => Response::error(500, &format!("republish failed: {e}")),
    }
}

/// `GET /stats`: engine totals (all sessions, all workers) plus server
/// counters, as one flat JSON object.
fn stats_json(state: &Arc<State>) -> String {
    let totals = state.engine.totals();
    let s = &totals.stats;
    format!(
        concat!(
            "{{\"publishes\":{},\"delta_publishes\":{},",
            "\"plans_prepared\":{},\"plan_cache_hits\":{},\"plan_cache_hit_rate\":{:.6},",
            "\"elements\":{},\"queries_run\":{},\"tuples_fetched\":{},",
            "\"nodes_respliced\":{},\"batches_reexecuted\":{},",
            "\"requests\":{},\"errors\":{},\"threads\":{}}}\n"
        ),
        totals.publishes,
        totals.delta_publishes,
        s.plans_prepared,
        s.plan_cache_hits,
        s.plan_cache_hit_rate(),
        s.elements,
        s.queries_run,
        s.tuples_fetched,
        s.nodes_respliced,
        s.batches_reexecuted,
        state.requests.load(Ordering::SeqCst),
        state.errors.load(Ordering::SeqCst),
        state.threads,
    )
}

/// `true` when `name` appears in the query string as `name`, `name=1` or
/// `name=true`.
fn query_flag(query: &str, name: &str) -> bool {
    query.split('&').any(|pair| {
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        key == name && matches!(value, "" | "1" | "true")
    })
}
