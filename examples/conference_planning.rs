//! The paper's running example, end to end: the Figure 1 conference-
//! planning view over the Figure 2 hotel schema, transformed by the
//! Figure 4 stylesheet — first naively, then via composition, with all the
//! intermediate artifacts (CTG, TVQ, stylesheet view) printed.
//!
//! ```text
//! cargo run --example conference_planning
//! ```

use xvc::core::paper_fixtures::{figure1_view, figure2_catalog, sample_database};
use xvc::core::{build_ctg, build_tvq};
use xvc::prelude::*;
use xvc::xslt::parse::FIGURE4_XSLT;

fn main() {
    let view = figure1_view();
    let stylesheet = parse_stylesheet(FIGURE4_XSLT).expect("fixture");
    let db = sample_database();
    let catalog = figure2_catalog();

    println!(
        "== Figure 1: the conference-planning view ==\n{}",
        view.render()
    );
    println!("== Figure 4: the stylesheet ==\n{}", stylesheet.to_xslt());

    // The naive pipeline.
    let naive = Engine::new(&view)
        .session()
        .publish(&db)
        .expect("publish v");
    let (full, naive_stats) = (naive.document, naive.stats);
    println!(
        "== v(I): the full published document ==\n{}",
        full.to_pretty_xml()
    );
    let expected = process(&stylesheet, &full).expect("engine");
    println!(
        "== x(v(I)): the transformed document ==\n{}",
        expected.to_pretty_xml()
    );

    // Step 1: the context transition graph (Figure 6).
    let ctg = build_ctg(&view, &stylesheet).expect("ctg");
    println!(
        "== Figure 6: context transition graph ==\n{}",
        ctg.render(&view, &stylesheet)
    );

    // Step 2: the traverse view query (Figure 7a).
    let tvq = build_tvq(&view, &stylesheet, &ctg, &catalog, 10_000).expect("tvq");
    println!(
        "== Figure 7(a): traverse view query ==\n{}",
        tvq.render(&view, &stylesheet)
    );

    // Steps 3-4: the stylesheet view (Figure 7c).
    let composed = Composer::new(&view, &stylesheet, &catalog)
        .run()
        .expect("compose")
        .view;
    println!("== Figure 7(c): stylesheet view ==\n{}", composed.render());

    // Evaluate it directly — no XSLT processing, no intermediate nodes.
    let published = Engine::new(&composed)
        .session()
        .publish(&db)
        .expect("publish v'");
    let (direct, composed_stats) = (published.document, published.stats);
    assert!(documents_equal_unordered(&expected, &direct));
    println!("v'(I) = x(v(I))  ✓\n");

    println!("materialization (the paper's efficiency argument):");
    println!(
        "  naive:    {:>4} elements, {:>3} tag queries (then an XSLT run on top)",
        naive_stats.elements, naive_stats.queries_run
    );
    println!(
        "  composed: {:>4} elements, {:>3} tag queries (the result only)",
        composed_stats.elements, composed_stats.queries_run
    );
}
