//! A second domain — order/invoice publishing — showing that nothing in
//! the library is tied to the paper's hotel example. Builds a fresh
//! relational schema, a two-branch publishing view (line items and a
//! per-order total, mirroring the paper's detail/summary split), and an
//! invoice stylesheet with flow control and predicates; composes it and
//! prints the invoice XML straight from SQL.
//!
//! ```text
//! cargo run --example order_invoices
//! ```

use xvc::prelude::*;

fn build_database() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("cid", ColumnType::Int),
                ColumnDef::new("cname", ColumnType::Str),
                ColumnDef::new("tier", ColumnType::Str),
            ],
        )
        .expect("valid schema"),
    );
    db.create_table(
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("oid", ColumnType::Int),
                ColumnDef::new("o_cid", ColumnType::Int),
                ColumnDef::new("odate", ColumnType::Str),
            ],
        )
        .expect("valid schema"),
    );
    db.create_table(
        TableSchema::new(
            "lineitem",
            vec![
                ColumnDef::new("lid", ColumnType::Int),
                ColumnDef::new("l_oid", ColumnType::Int),
                ColumnDef::new("product", ColumnType::Str),
                ColumnDef::new("qty", ColumnType::Int),
                ColumnDef::new("price", ColumnType::Int),
            ],
        )
        .expect("valid schema"),
    );
    let i = Value::Int;
    let s = |x: &str| Value::Str(x.into());
    for (cid, name, tier) in [(1, "acme", "gold"), (2, "initech", "basic")] {
        db.insert("customer", vec![i(cid), s(name), s(tier)])
            .unwrap();
    }
    for (oid, cid, date) in [
        (100, 1, "2026-07-01"),
        (101, 1, "2026-07-03"),
        (102, 2, "2026-07-04"),
    ] {
        db.insert("orders", vec![i(oid), i(cid), s(date)]).unwrap();
    }
    for (lid, oid, product, qty, price) in [
        (1, 100, "widget", 3, 40),
        (2, 100, "sprocket", 1, 250),
        (3, 101, "widget", 10, 40),
        (4, 102, "gadget", 2, 99),
    ] {
        db.insert(
            "lineitem",
            vec![i(lid), i(oid), s(product), i(qty), i(price)],
        )
        .unwrap();
    }
    db
}

fn build_view() -> SchemaTree {
    let mut v = SchemaTree::new();
    let customer = v
        .add_root_node(ViewNode::new(
            1,
            "customer",
            "c",
            parse_query("SELECT cid, cname, tier FROM customer").expect("valid SQL"),
        ))
        .expect("valid view");
    let order = v
        .add_child(
            customer,
            ViewNode::new(
                2,
                "order",
                "o",
                parse_query("SELECT oid, odate FROM orders WHERE o_cid = $c.cid")
                    .expect("valid SQL"),
            ),
        )
        .expect("valid view");
    // Detail branch: one <item> per line item.
    v.add_child(
        order,
        ViewNode::new(
            3,
            "item",
            "li",
            parse_query("SELECT product, qty, price FROM lineitem WHERE l_oid = $o.oid")
                .expect("valid SQL"),
        ),
    )
    .expect("valid view");
    // Summary branch: per-order total (implicit aggregation — always one
    // row, even for empty orders).
    v.add_child(
        order,
        ViewNode::new(
            4,
            "total",
            "t",
            parse_query("SELECT SUM(qty * price) FROM lineitem WHERE l_oid = $o.oid")
                .expect("valid SQL"),
        ),
    )
    .expect("valid view");
    v
}

fn main() {
    let db = build_database();
    let view = build_view();
    println!("== publishing view ==\n{}", view.render());

    // Invoices for gold customers only; big orders get a badge; each
    // invoice lists items over a threshold plus the order total.
    let stylesheet = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <invoices><xsl:apply-templates select="customer[@tier='gold']"/></invoices>
             </xsl:template>
             <xsl:template match="customer">
               <invoice_set>
                 <xsl:value-of select="@cname"/>
                 <xsl:apply-templates select="order"/>
               </invoice_set>
             </xsl:template>
             <xsl:template match="order">
               <invoice>
                 <xsl:value-of select="@odate"/>
                 <xsl:apply-templates select="item[@qty&gt;1]"/>
                 <xsl:apply-templates select="total"/>
               </invoice>
             </xsl:template>
             <xsl:template match="item">
               <xsl:choose>
                 <xsl:when test="@price&gt;100"><line premium="yes"><xsl:value-of select="."/></line></xsl:when>
                 <xsl:otherwise><line><xsl:value-of select="."/></line></xsl:otherwise>
               </xsl:choose>
             </xsl:template>
             <xsl:template match="total">
               <amount_due><xsl:value-of select="@sum"/></amount_due>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .expect("valid stylesheet");

    let composition = Composer::new(&view, &stylesheet, &db.catalog())
        .rewrites(true)
        .run()
        .expect("composable");
    let (composed, lowered) = (&composition.view, &composition.stylesheet);
    println!(
        "== composed stylesheet view ({} lowered rules) ==\n{}",
        lowered.len(),
        composed.render()
    );

    let published = Engine::new(composed)
        .session()
        .publish(&db)
        .expect("publish v'");
    let (invoices, stats) = (published.document, published.stats);
    println!(
        "== invoices, straight from SQL ==\n{}",
        invoices.to_pretty_xml()
    );

    // Cross-check against the reference pipeline.
    let naive = Engine::new(&view)
        .session()
        .publish(&db)
        .expect("publish v");
    let (full, naive_stats) = (naive.document, naive.stats);
    let expected = process(&stylesheet, &full).expect("engine");
    assert!(documents_equal_unordered(&expected, &invoices));
    println!(
        "v'(I) = x(v(I))  ✓   (composed: {} elements / naive view alone: {})",
        stats.elements, naive_stats.elements
    );
}
