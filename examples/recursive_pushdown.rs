//! §5.3: partial pushdown for recursive stylesheets (Figures 25-27).
//!
//! The Figure 25 stylesheet recurses between `/metro` and
//! `metro_available` through the parent axis, bounded by an `$idx`
//! countdown — it cannot be composed away completely. The §5.3 approach
//! materializes the path computation as a `.../down` + `.../up` node pair
//! (Figure 26) and leaves a small residual stylesheet (Figure 27) that
//! bounces between the two siblings, never touching the hotel / confstat /
//! hotel_available intermediates.
//!
//! ```text
//! cargo run --example recursive_pushdown
//! ```

use xvc::core::paper_fixtures::{
    dense_availability_database, figure1_view, figure2_catalog, FIGURE25_XSLT,
};
use xvc::core::recursion::with_root_driver;
use xvc::prelude::*;

fn main() {
    let view = figure1_view();
    let stylesheet = parse_stylesheet(FIGURE25_XSLT).expect("fixture");
    println!(
        "== Figure 25: the recursive stylesheet ==\n{}",
        stylesheet.to_xslt()
    );

    let rc =
        compose_recursive(&view, &stylesheet, &figure2_catalog()).expect("supported §5.3 shape");
    println!(
        "== Figure 26: the materialized view v' ==\n{}",
        rc.view.render()
    );
    println!(
        "== Figure 27: the residual stylesheet x' ==\n{}",
        rc.stylesheet.to_xslt()
    );

    // Evaluate on an instance dense enough to clear the @count thresholds.
    let db = dense_availability_database();
    let published = Engine::new(&rc.view)
        .session()
        .publish(&db)
        .expect("publish v'");
    let (materialized, stats) = (published.document, published.stats);
    println!("== v'(I) ==\n{}", materialized.to_pretty_xml());
    println!(
        "materialized {} elements — no hotel/confstat/confroom intermediates\n",
        stats.elements
    );

    // Run the residual recursion (Figure 25's default $idx=10 is
    // unsatisfiable by construction — the metro-level count dominates the
    // hotel-level count — so drive it with a larger budget).
    let driver = with_root_driver(&rc.stylesheet, "metro");
    let result = process(&driver, &materialized).expect("residual runs");
    println!("== x'(v'(I)) ==\n{}", result.to_pretty_xml());
}
