-- travel-guide schema for the xvc CLI walkthrough
CREATE TABLE city (
    id         INT PRIMARY KEY,
    name       TEXT,
    population INT
);
CREATE TABLE sight (
    sid     INT PRIMARY KEY,
    city_id INT,
    sname   TEXT,
    fee     INT
);

-- Secondary index: the composed view's sight query pushes city_id = $c.id,
-- so the planner takes an index lookup instead of a full scan.
CREATE INDEX sight_city ON sight (city_id) USING HASH;
