-- travel-guide schema for the xvc CLI walkthrough
CREATE TABLE city (
    id         INT PRIMARY KEY,
    name       TEXT,
    population INT
);
CREATE TABLE sight (
    sid     INT PRIMARY KEY,
    city_id INT,
    sname   TEXT,
    fee     INT
);
