-- Figure 2: the hotel-reservation relational schema (SIGMOD'03 §2.1).
-- Transcribed from xvc_core::paper_fixtures::figure2_catalog.
CREATE TABLE hotelchain (
    chainid     INT PRIMARY KEY,
    companyname TEXT,
    hqstate     TEXT
);
CREATE TABLE metroarea (
    metroid   INT PRIMARY KEY,
    metroname TEXT
);
CREATE TABLE hotel (
    hotelid    INT PRIMARY KEY,
    hotelname  TEXT,
    starrating INT,
    chain_id   INT,
    metro_id   INT,
    state_id   INT,
    city       TEXT,
    pool       TEXT,
    gym        TEXT
);
CREATE TABLE guestroom (
    r_id       INT PRIMARY KEY,
    rhotel_id  INT,
    roomnumber INT,
    type       TEXT,
    rackrate   INT
);
CREATE TABLE confroom (
    c_id        INT PRIMARY KEY,
    chotel_id   INT,
    croomnumber INT,
    capacity    INT,
    rackrate    INT
);
CREATE TABLE availability (
    a_id      INT PRIMARY KEY,
    a_r_id    INT,
    startdate TEXT,
    enddate   TEXT,
    price     INT
);
