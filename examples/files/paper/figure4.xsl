<xsl:stylesheet>
  <xsl:template match="/">
    <HTML>
      <HEAD></HEAD>
      <BODY>
        <xsl:apply-templates select="metro"/>
      </BODY>
    </HTML>
  </xsl:template>
  <xsl:template match="metro">
    <result_metro>
      <A></A>
      <xsl:apply-templates select="hotel/confstat"/>
    </result_metro>
  </xsl:template>
  <xsl:template match="confstat">
    <result_confstat>
      <B></B>
      <xsl:apply-templates select="../hotel_available/../confroom"/>
    </result_confstat>
  </xsl:template>
  <xsl:template match="metro/hotel/confroom">
    <xsl:value-of select="."/>
  </xsl:template>
</xsl:stylesheet>
