<xsl:stylesheet>
  <xsl:template match="/">
    <guide><xsl:apply-templates select="city[@population&gt;1000000]"/></guide>
  </xsl:template>
  <xsl:template match="city">
    <entry>
      <xsl:value-of select="@name"/>
      <xsl:apply-templates select="sight[@fee=0]"/>
    </entry>
  </xsl:template>
  <xsl:template match="sight">
    <free><xsl:value-of select="@sname"/></free>
  </xsl:template>
</xsl:stylesheet>
