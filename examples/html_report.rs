//! HTML report generation with flow control and predicates — the §5
//! extensions in action. The stylesheet uses `xsl:choose`, `xsl:if` and
//! predicate-carrying paths; `Composer::rewrites(true)` lowers it to
//! `XSLT_basic` (+ predicates) via the Figure 21/22 transforms, then
//! composes it into SQL.
//!
//! ```text
//! cargo run --example html_report
//! ```

use xvc::core::paper_fixtures::{figure1_view, sample_database};
use xvc::prelude::*;

fn main() {
    let view = figure1_view();
    let db = sample_database();

    let stylesheet = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <HTML>
                 <BODY>
                   <xsl:apply-templates select="metro"/>
                 </BODY>
               </HTML>
             </xsl:template>
             <xsl:template match="metro">
               <DIV class="metro">
                 <H2><xsl:value-of select="@metroname"/></H2>
                 <xsl:apply-templates select="hotel[@starrating&gt;4]"/>
               </DIV>
             </xsl:template>
             <xsl:template match="hotel">
               <DIV class="hotel">
                 <H3><xsl:value-of select="@hotelname"/></H3>
                 <xsl:choose>
                   <xsl:when test="@pool='yes'"><SPAN class="badge-pool"/></xsl:when>
                   <xsl:otherwise><SPAN class="badge-none"/></xsl:otherwise>
                 </xsl:choose>
                 <xsl:if test="@gym='yes'"><SPAN class="badge-gym"/></xsl:if>
                 <xsl:apply-templates select="confroom[@capacity&gt;200]"/>
               </DIV>
             </xsl:template>
             <xsl:template match="confroom">
               <P class="room"><xsl:value-of select="@capacity"/></P>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .expect("valid stylesheet");

    // Those xsl:choose / xsl:if constructs are outside XSLT_basic:
    let violations = check_basic(&stylesheet);
    println!("XSLT_basic violations before lowering:");
    for v in &violations {
        println!("  - {v}");
    }

    // Lower (§5.2) and compose (§3-4 + §5.1).
    let composition = Composer::new(&view, &stylesheet, &db.catalog())
        .rewrites(true)
        .run()
        .expect("composable");
    let (composed, lowered) = (&composition.view, &composition.stylesheet);
    println!(
        "\nlowered to {} XSLT_basic rules; composed stylesheet view:\n{}",
        lowered.len(),
        composed.render()
    );

    // Verify against the reference engine.
    let full = Engine::new(&view)
        .session()
        .publish(&db)
        .expect("publish v")
        .document;
    let expected = process(&stylesheet, &full).expect("engine");
    let published = Engine::new(composed)
        .session()
        .publish(&db)
        .expect("publish v'");
    let (html, stats) = (published.document, published.stats);
    assert!(documents_equal_unordered(&expected, &html));

    println!(
        "== generated HTML (directly from SQL) ==\n{}",
        html.to_pretty_xml()
    );
    println!(
        "v'(I) = x(v(I))  ✓   ({} elements materialized, {} queries)",
        stats.elements, stats.queries_run
    );
}
