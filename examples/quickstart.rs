//! Quickstart: define a relational database, publish it as XML through a
//! schema-tree view, and compose an XSLT stylesheet away into SQL.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use xvc::prelude::*;

fn main() {
    // 1. A tiny relational database.
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "city",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
                ColumnDef::new("population", ColumnType::Int),
            ],
        )
        .expect("valid schema"),
    );
    for (id, name, pop) in [
        (1, "chicago", 2_700_000),
        (2, "nyc", 8_300_000),
        (3, "galena", 3_200),
    ] {
        db.insert(
            "city",
            vec![Value::Int(id), Value::Str(name.into()), Value::Int(pop)],
        )
        .expect("row fits schema");
    }

    // 2. An XML-publishing view (Definition 1): one <city> element per row.
    let mut view = SchemaTree::new();
    view.add_root_node(ViewNode::new(
        1,
        "city",
        "c",
        parse_query("SELECT id, name, population FROM city").expect("valid SQL"),
    ))
    .expect("valid view");

    println!("== the publishing view v ==\n{}", view.render());
    let published = Engine::new(&view).session().publish(&db).expect("publish");
    let (doc, stats) = (published.document, published.stats);
    println!("== v(I) ==\n{}", doc.to_pretty_xml());
    println!("(materialized {} elements)\n", stats.elements);

    // 3. An XSLT stylesheet: select big cities, restructure, project a
    //    single attribute.
    let xslt = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <big_cities><xsl:apply-templates select="city[@population&gt;1000000]"/></big_cities>
             </xsl:template>
             <xsl:template match="city">
               <metropolis><xsl:value-of select="@name"/></metropolis>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .expect("valid stylesheet");

    // 4. The naive strategy: materialize v(I), run the stylesheet.
    let expected = process(&xslt, &doc).expect("engine");
    println!("== x(v(I)) — naive ==\n{}", expected.to_pretty_xml());

    // 5. Composition: the stylesheet disappears into SQL.
    let composed = Composer::new(&view, &xslt, &db.catalog())
        .run()
        .expect("composable")
        .view;
    println!("== the stylesheet view v' ==\n{}", composed.render());
    let published = Engine::new(&composed)
        .session()
        .publish(&db)
        .expect("publish v'");
    let (direct, stats) = (published.document, published.stats);
    println!("== v'(I) — composed ==\n{}", direct.to_pretty_xml());
    println!(
        "(materialized {} elements — the result only)",
        stats.elements
    );

    assert!(documents_equal_unordered(&expected, &direct));
    println!("\nv'(I) = x(v(I))  ✓");
}
