//! Stress tests for the composition algorithm beyond the paper's fixtures:
//! conflicting rules, ambiguous tag names (one select expression reaching
//! several schema-tree nodes), rebind chains from flow-control rewrites,
//! and views with static attributes.

use xvc::prelude::*;

// Local shims over the builder API: the deprecated free functions are
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

fn publish(v: &SchemaTree, db: &Database) -> xvc::view::Result<(Document, PublishStats)> {
    Engine::new(v)
        .session()
        .publish(db)
        .map(|p| (p.document, p.stats))
}

/// A view where one select expression reaches *two* schema-tree nodes with
/// the same tag under one parent — the multigraph case: one CTG node per
/// (node, rule) but several TVQ children for one apply-templates.
fn twin_tag_view_and_db() -> (SchemaTree, Database) {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "dept",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        )
        .unwrap(),
    );
    db.create_table(
        TableSchema::new(
            "emp",
            vec![
                ColumnDef::new("eid", ColumnType::Int),
                ColumnDef::new("dept_id", ColumnType::Int),
                ColumnDef::new("senior", ColumnType::Int),
            ],
        )
        .unwrap(),
    );
    for (id, name) in [(1, "eng"), (2, "ops")] {
        db.insert("dept", vec![Value::Int(id), Value::Str(name.into())])
            .unwrap();
    }
    for (eid, d, s) in [(10, 1, 1), (11, 1, 0), (12, 2, 1)] {
        db.insert("emp", vec![Value::Int(eid), Value::Int(d), Value::Int(s)])
            .unwrap();
    }

    let mut v = SchemaTree::new();
    let dept = v
        .add_root_node(ViewNode::new(
            1,
            "dept",
            "d",
            parse_query("SELECT id, name FROM dept").unwrap(),
        ))
        .unwrap();
    // Two children with the SAME tag: seniors and juniors.
    v.add_child(
        dept,
        ViewNode::new(
            2,
            "person",
            "p1",
            parse_query("SELECT eid FROM emp WHERE dept_id = $d.id AND senior = 1").unwrap(),
        ),
    )
    .unwrap();
    v.add_child(
        dept,
        ViewNode::new(
            3,
            "person",
            "p2",
            parse_query("SELECT eid FROM emp WHERE dept_id = $d.id AND senior = 0").unwrap(),
        ),
    )
    .unwrap();
    (v, db)
}

fn assert_equiv(v: &SchemaTree, xslt: &str, db: &Database, rewrites: bool) {
    let x = parse_stylesheet(xslt).unwrap();
    let composed = Composer::new(v, &x, &db.catalog())
        .rewrites(rewrites)
        .run()
        .unwrap()
        .view;
    let (full, _) = publish(v, db).unwrap();
    let expected = process(&x, &full).unwrap();
    let (actual, _) = publish(&composed, db).unwrap();
    assert!(
        documents_equal_unordered(&expected, &actual),
        "expected:\n{}\nactual:\n{}\ncomposed:\n{}",
        expected.to_pretty_xml(),
        actual.to_pretty_xml(),
        composed.render()
    );
}

#[test]
fn one_select_reaching_two_view_nodes() {
    let (v, db) = twin_tag_view_and_db();
    // "person" from dept selects instances of BOTH view nodes 2 and 3: the
    // CTG has two edges for one apply-templates, the TVQ two children.
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="dept"/></r></xsl:template>
             <xsl:template match="dept"><d><xsl:apply-templates select="person"/></d></xsl:template>
             <xsl:template match="person"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
        &db,
        false,
    );
}

#[test]
fn conflicting_rules_compose_via_rewrites() {
    let (v, db) = twin_tag_view_and_db();
    // Two same-mode rules both matching <person>: the engine resolves by
    // priority; composition needs the Figure 24 rewrite first.
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="dept/person"/></r></xsl:template>
             <xsl:template match="person[@eid&gt;11]" priority="2"><vip/></xsl:template>
             <xsl:template match="person"><regular/></xsl:template>
           </xsl:stylesheet>"#,
        &db,
        true,
    );
}

#[test]
fn chained_ifs_build_rebind_chains() {
    let (v, db) = twin_tag_view_and_db();
    // Nested xsl:if lowers to a chain of `.[guard]` transitions: rebind
    // nodes stacked on rebind nodes.
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="dept"/></r></xsl:template>
             <xsl:template match="dept">
               <d>
                 <xsl:if test="@name='eng'">
                   <eng_badge/>
                   <xsl:if test="@id=1"><primary/></xsl:if>
                 </xsl:if>
               </d>
             </xsl:template>
           </xsl:stylesheet>"#,
        &db,
        true,
    );
}

#[test]
fn static_attributes_survive_composition() {
    let (v, db) = twin_tag_view_and_db();
    let x = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r lang="en"><xsl:apply-templates select="dept"/></r></xsl:template>
             <xsl:template match="dept"><d class="department"><xsl:value-of select="@name"/></d></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let composed = compose(&v, &x, &db.catalog()).unwrap();
    let (doc, _) = publish(&composed, &db).unwrap();
    let xml = doc.to_xml();
    assert!(xml.starts_with("<r lang=\"en\">"), "{xml}");
    assert!(
        xml.contains("<d class=\"department\" name=\"eng\"/>"),
        "{xml}"
    );
    // And it matches the engine.
    let (full, _) = publish(&v, &db).unwrap();
    let expected = process(&x, &full).unwrap();
    assert!(documents_equal_unordered(&expected, &doc));
}

#[test]
fn empty_stylesheet_with_root_rule_only() {
    let (v, db) = twin_tag_view_and_db();
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/"><empty_result/></xsl:template>
           </xsl:stylesheet>"#,
        &db,
        false,
    );
}

#[test]
fn mode_fanout_duplicates_subtrees() {
    let (v, db) = twin_tag_view_and_db();
    // The same node processed in two modes: two TVQ subtrees over one
    // schema-tree node.
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <r>
                 <xsl:apply-templates select="dept" mode="brief"/>
                 <xsl:apply-templates select="dept" mode="full"/>
               </r>
             </xsl:template>
             <xsl:template match="dept" mode="brief"><b><xsl:value-of select="@name"/></b></xsl:template>
             <xsl:template match="dept" mode="full">
               <f><xsl:apply-templates select="person"/></f>
             </xsl:template>
             <xsl:template match="person"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
        &db,
        false,
    );
}

#[test]
fn multi_element_fragments_share_the_carrier() {
    let (v, db) = twin_tag_view_and_db();
    // Two top-level elements in one rule body: both iterate the rule's
    // tuples (each gets its own uniquified binding variable).
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="dept"/></r></xsl:template>
             <xsl:template match="dept">
               <header><xsl:value-of select="@name"/></header>
               <body><xsl:apply-templates select="person"/></body>
             </xsl:template>
             <xsl:template match="person"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
        &db,
        false,
    );
}

#[test]
fn negated_existence_composes() {
    // not(path) predicates become NOT EXISTS; uses the Figure 1 view where
    // the branch path is unambiguous.
    use xvc::core::paper_fixtures::{figure1_view, sample_database};
    let v = figure1_view();
    let db = sample_database();
    let x = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel[not(confroom[@capacity&gt;200])]"/></r></xsl:template>
             <xsl:template match="hotel"><small_rooms_only><xsl:value-of select="@hotelname"/></small_rooms_only></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let composed = compose(&v, &x, &db.catalog()).unwrap();
    // The generated SQL contains a NOT EXISTS.
    assert!(
        composed.render().contains("NOT (EXISTS ("),
        "{}",
        composed.render()
    );
    let (full, _) = publish(&v, &db).unwrap();
    let expected = process(&x, &full).unwrap();
    let (actual, _) = publish(&composed, &db).unwrap();
    assert!(
        documents_equal_unordered(&expected, &actual),
        "expected:
{}
actual:
{}",
        expected.to_pretty_xml(),
        actual.to_pretty_xml()
    );
}

#[test]
fn for_each_composes_via_rewrites() {
    let (v, db) = twin_tag_view_and_db();
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="dept"/></r></xsl:template>
             <xsl:template match="dept">
               <d>
                 <xsl:for-each select="person"><row><xsl:value-of select="."/></row></xsl:for-each>
               </d>
             </xsl:template>
           </xsl:stylesheet>"#,
        &db,
        true,
    );
}

#[test]
fn descendant_selects_compose() {
    // `//` in selects is outside XSLT_basic (restriction (9)); the
    // abstract walk lifts it by expanding each schema-reachable endpoint
    // into an explicit chain.
    use xvc::core::paper_fixtures::{figure1_view, sample_database};
    let v = figure1_view();
    let db = sample_database();
    for xslt in [
        // Both confstat levels through one select.
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro//confstat"/></r></xsl:template>
             <xsl:template match="confstat"><s><xsl:value-of select="@sum"/></s></xsl:template>
           </xsl:stylesheet>"#,
        // Deep jump straight to the grandchild.
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="//metro_available"/></r></xsl:template>
             <xsl:template match="metro_available"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
        // Descendant with a predicate on the endpoint.
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro//confroom[@capacity&gt;200]"/></r></xsl:template>
             <xsl:template match="confroom"><big/></xsl:template>
           </xsl:stylesheet>"#,
    ] {
        let x = parse_stylesheet(xslt).unwrap();
        let composed = compose(&v, &x, &db.catalog()).unwrap();
        let (full, _) = publish(&v, &db).unwrap();
        let expected = process(&x, &full).unwrap();
        let (actual, _) = publish(&composed, &db).unwrap();
        assert!(
            documents_equal_unordered(&expected, &actual),
            "{xslt}\nexpected:\n{}\nactual:\n{}",
            expected.to_pretty_xml(),
            actual.to_pretty_xml()
        );
    }
}

#[test]
fn deep_literal_nesting_around_applies() {
    let (v, db) = twin_tag_view_and_db();
    assert_equiv(
        &v,
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <html><body><table><tbody>
                 <xsl:apply-templates select="dept"/>
               </tbody></table></body></html>
             </xsl:template>
             <xsl:template match="dept">
               <tr><td><xsl:value-of select="@name"/></td><td><xsl:apply-templates select="person"/></td></tr>
             </xsl:template>
             <xsl:template match="person"><span><xsl:value-of select="@eid"/></span></xsl:template>
           </xsl:stylesheet>"#,
        &db,
        false,
    );
}
