//! One minimal fixture per diagnostic code: each test triggers exactly the
//! code under test (plus documented companions) and pins down the span —
//! either the exact source slice it underlines, or its deliberate absence.
//!
//! This file is the executable counterpart of `DIAGNOSTICS.md`.

use xvc::analyze::{
    check_composed, check_sources, check_workload, CheckOptions, Code, Diagnostic, Report,
    Severity, Stage,
};
use xvc::core::paper_fixtures::{figure1_view, figure2_catalog};
use xvc::prelude::*;

fn check(view: Option<&str>, xslt: Option<&str>) -> Report {
    let cat = figure2_catalog();
    check_sources(view, xslt, Some(&cat), &CheckOptions::default())
}

/// The single diagnostic with this code; fails if it is absent or repeated.
fn the(report: &Report, code: Code) -> Diagnostic {
    let hits: Vec<&Diagnostic> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .collect();
    assert_eq!(
        hits.len(),
        1,
        "expected exactly one {}: {:?}",
        code.as_str(),
        report.diagnostics
    );
    hits[0].clone()
}

fn slice<'a>(src: &'a str, d: &Diagnostic) -> &'a str {
    let span = d.span.unwrap_or_else(|| panic!("{} has no span", d));
    &src[span.start..span.end]
}

// ---------------------------------------------------------------- stylesheet

#[test]
fn xvc001_predicates() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro[@metroid=1]"/></r></xsl:template>
      <xsl:template match="metro"><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    assert_eq!(r.codes(), vec![Code::Xvc001]);
    let d = the(&r, Code::Xvc001);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(slice(src, &d), "metro[@metroid=1]");
}

#[test]
fn xvc002_flow_control() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><xsl:if test="@pool='yes'"><m/></xsl:if></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc002);
    assert_eq!(d.severity, Severity::Warning);
    assert!(slice(src, &d).starts_with("<xsl:if"), "{:?}", d.span);
}

#[test]
fn xvc003_conflicting_rules() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m1/></xsl:template>
      <xsl:template match="metro"><m2/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc003);
    assert_eq!(d.severity, Severity::Warning);
    // The span points at the *second* (conflicting) rule's match pattern.
    assert_eq!(slice(src, &d), "metro");
    assert!(d.span.unwrap().start > src.find("<m1/>").unwrap());
}

#[test]
fn xvc004_parameters() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><xsl:param name="depth"/><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc004);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(slice(src, &d), "metro");
}

#[test]
fn xvc005_descendant_axis() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro//hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc005);
    // Outside XSLT_basic, but the composer handles unambiguous descendant
    // steps — a warning, not a gate.
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(slice(src, &d), "metro//hotel");
}

#[test]
fn xvc006_value_of_select() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:value-of select="hotel/@hotelname"/></m></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc006);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(slice(src, &d), "hotel/@hotelname");
}

#[test]
fn xvc007_empty_mode() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro" mode="ghost"/></r></xsl:template>
      <xsl:template match="metro"><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc007);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(slice(src, &d), "metro");
}

#[test]
fn xvc008_no_root_rule() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="metro"><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc008);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.is_none(), "{d}");
    assert!(d.help.as_deref().unwrap().contains("match=\"/\""));
}

#[test]
fn xvc009_not_composable() {
    // Literal text output: the paper's views are attribute-only, so this
    // stylesheet parses and type-checks but cannot be composed.
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><a>text!</a></xsl:template>
    </xsl:stylesheet>"#;
    let cat = figure2_catalog();
    let v = figure1_view();
    let x = parse_stylesheet(src).unwrap();
    let r = check_workload(Some(&v), Some(&x), Some(&cat), &CheckOptions::default());
    let d = the(&r, Code::Xvc009);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.is_none(), "{d}");
}

#[test]
fn xvc010_stylesheet_parse_error() {
    let src = "<not-a-stylesheet/>";
    let r = check(None, Some(src));
    let d = the(&r, Code::Xvc010);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.is_some(), "{d}");
}

// ---------------------------------------------------------------------- view

#[test]
fn xvc101_unknown_table() {
    let src = "node a $x { query: SELECT metroid FROM metrarea; }";
    let r = check(Some(src), None);
    let d = the(&r, Code::Xvc101);
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(slice(src, &d), "SELECT metroid FROM metrarea");
    assert!(d.help.as_deref().unwrap().contains("metroarea"));
}

#[test]
fn xvc102_unknown_column() {
    let src = "node a $x { query: SELECT metroidd FROM metroarea; }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc102]);
    let d = the(&r, Code::Xvc102);
    assert_eq!(slice(src, &d), "SELECT metroidd FROM metroarea");
    assert!(d.help.as_deref().unwrap().contains("metroid"));
}

#[test]
fn xvc103_type_mismatch() {
    let src = "node a $x { query: SELECT metroid FROM metroarea WHERE metroname = 3; }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc103]);
    let d = the(&r, Code::Xvc103);
    assert!(slice(src, &d).starts_with("SELECT metroid"));
    assert!(d.message.contains("Str"), "{d}");
    assert!(d.message.contains("Int"), "{d}");
}

#[test]
fn xvc104_unbound_parameter() {
    // $m is never bound by an ancestor: rejected while parsing, reported
    // with the offending tag query's span.
    let src = "node hotel $h { query: SELECT hotelid FROM hotel WHERE metro_id = $m.metroid; }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc104]);
    let d = the(&r, Code::Xvc104);
    assert_eq!(d.severity, Severity::Error);
    assert!(slice(src, &d).contains("$m.metroid"), "{:?}", d.span);
    assert!(d.help.as_deref().unwrap().contains("Definition 1"));
}

#[test]
fn xvc105_parameter_column_missing() {
    let src = "node metro $m { query: SELECT metroid, metroname FROM metroarea;\n\
               node hotel $h { query: SELECT hotelid FROM hotel WHERE metro_id = $m.hqstate; } }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc105]);
    let d = the(&r, Code::Xvc105);
    assert_eq!(
        slice(src, &d),
        "SELECT hotelid FROM hotel WHERE metro_id = $m.hqstate"
    );
    assert!(d.help.as_deref().unwrap().contains("metroid"));
}

#[test]
fn xvc106_aggregate_projection() {
    let src = "node a $x { query: SELECT SUM(capacity), croomnumber FROM confroom; }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc106]);
    let d = the(&r, Code::Xvc106);
    assert!(slice(src, &d).starts_with("SELECT SUM(capacity)"));
    assert!(d.message.contains("croomnumber"), "{d}");
}

#[test]
fn xvc107_duplicate_binding() {
    let src = "node a $x { query: SELECT metroid FROM metroarea; }\n\
               node b $x { query: SELECT metroname FROM metroarea; }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc107]);
    let d = the(&r, Code::Xvc107);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.is_some(), "{d}");
}

#[test]
fn xvc110_view_parse_error() {
    let src = "node metro { query: SELECT metroid FROM metroarea; }";
    let r = check(Some(src), None);
    assert_eq!(r.codes(), vec![Code::Xvc110]);
    let d = the(&r, Code::Xvc110);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.span.is_some(), "{d}");
}

// ----------------------------------------------------------------------- CTG

const TWO_LEVEL_VIEW: &str = "\
node metro $m {
    query: SELECT metroid, metroname FROM metroarea;
    node hotel $h {
        query: SELECT hotelid FROM hotel WHERE metro_id = $m.metroid;
    }
}";

#[test]
fn xvc201_unreachable_rule() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m/></xsl:template>
      <xsl:template match="guestroom"><g/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(TWO_LEVEL_VIEW), Some(src));
    let d = the(&r, Code::Xvc201);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(slice(src, &d), "guestroom");
}

#[test]
fn xvc202_dead_view_node() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(TWO_LEVEL_VIEW), Some(src));
    let d = the(&r, Code::Xvc202);
    assert_eq!(d.severity, Severity::Warning);
    // The span underlines the dead node's tag query in the view source.
    assert_eq!(
        slice(TWO_LEVEL_VIEW, &d),
        "SELECT hotelid FROM hotel WHERE metro_id = $m.metroid"
    );
}

#[test]
fn xvc203_recursion() {
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>
      <xsl:template match="hotel"><h><xsl:apply-templates select=".."/></h></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(TWO_LEVEL_VIEW), Some(src));
    let d = the(&r, Code::Xvc203);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.is_some(), "{d}");
    assert!(d.help.as_deref().unwrap().contains("compose_recursive"));
}

/// Four levels of double apply-templates: occurrences 1, 2, 4, 8, 16 —
/// 31 TVQ nodes from a 5-node CTG (§4.5's exponential case in miniature).
const BLOWUP_VIEW: &str = "\
node a $a {
    query: SELECT metroid FROM metroarea;
    node b $b {
        query: SELECT metroid FROM metroarea;
        node c $c {
            query: SELECT metroid FROM metroarea;
            node d $d {
                query: SELECT metroid FROM metroarea;
            }
        }
    }
}";

const BLOWUP_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/"><r><xsl:apply-templates select="a"/><xsl:apply-templates select="a"/></r></xsl:template>
  <xsl:template match="a"><xa><xsl:apply-templates select="b"/><xsl:apply-templates select="b"/></xa></xsl:template>
  <xsl:template match="b"><xb><xsl:apply-templates select="c"/><xsl:apply-templates select="c"/></xb></xsl:template>
  <xsl:template match="c"><xc><xsl:apply-templates select="d"/><xsl:apply-templates select="d"/></xc></xsl:template>
  <xsl:template match="d"><xd/></xsl:template>
</xsl:stylesheet>"#;

#[test]
fn xvc204_blowup_warning_with_exact_prediction() {
    let r = check(Some(BLOWUP_VIEW), Some(BLOWUP_XSLT));
    let d = the(&r, Code::Xvc204);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.span.is_some(), "{d}");
    assert!(d.message.contains("6.2x"), "{d}");

    let p = r.prediction.as_ref().unwrap();
    assert_eq!(p.ctg_nodes, 5);
    assert_eq!(p.predicted_tvq_nodes, 31);
    assert_eq!(p.per_node.iter().max(), Some(&16));

    // Acceptance cross-check: the §4.5 estimate equals what composition
    // actually measures.
    let v = xvc::view::parse_view(BLOWUP_VIEW).unwrap();
    let x = parse_stylesheet(BLOWUP_XSLT).unwrap();
    let cat = figure2_catalog();
    let stats = Composer::new(&v, &x, &cat).run().unwrap().stats;
    assert_eq!(p.predicted_tvq_nodes, stats.tvq_nodes);
    assert!((p.duplication_factor - stats.duplication_factor).abs() < 1e-9);
}

#[test]
fn xvc204_is_an_error_above_the_budget() {
    let cat = figure2_catalog();
    let opts = CheckOptions {
        tvq_limit: 10,
        ..CheckOptions::default()
    };
    let r = check_sources(Some(BLOWUP_VIEW), Some(BLOWUP_XSLT), Some(&cat), &opts);
    let d = the(&r, Code::Xvc204);
    assert_eq!(d.severity, Severity::Error);
    assert!(d.message.contains("31"), "{d}");
    assert!(r.has_errors());
}

// ------------------------------------------------------------------ composed

fn corrupt_composed(extra: xvc::rel::ScalarExpr) -> (SchemaTree, Catalog) {
    let v = figure1_view();
    let x = parse_stylesheet(xvc::xslt::parse::FIGURE4_XSLT).unwrap();
    let cat = figure2_catalog();
    let mut composed = Composer::new(&v, &x, &cat).run().unwrap().view;
    let victim = composed
        .node_ids()
        .into_iter()
        .find(|&i| composed.node(i).is_some_and(|n| n.query.is_some()))
        .unwrap();
    composed
        .node_mut(victim)
        .unwrap()
        .query
        .as_mut()
        .unwrap()
        .and_where(extra);
    (composed, cat)
}

#[test]
fn xvc301_composed_not_well_typed() {
    let (composed, cat) = corrupt_composed(xvc::rel::ScalarExpr::eq(
        xvc::rel::ScalarExpr::col("no_such_column"),
        xvc::rel::ScalarExpr::int(1),
    ));
    let ds = check_composed(&composed, &cat);
    let hits: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Xvc301).collect();
    assert_eq!(hits.len(), 1, "{ds:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].stage, Stage::Composed);
    // Composed trees are built in memory — no source, no span.
    assert!(hits[0].span.is_none(), "{}", hits[0]);
}

#[test]
fn xvc302_composed_scoping() {
    let (composed, cat) = corrupt_composed(xvc::rel::ScalarExpr::eq(
        xvc::rel::ScalarExpr::Param {
            var: "ghost".into(),
            column: "q".into(),
        },
        xvc::rel::ScalarExpr::int(1),
    ));
    let ds = check_composed(&composed, &cat);
    let hits: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Xvc302).collect();
    assert_eq!(hits.len(), 1, "{ds:?}");
    assert_eq!(hits[0].severity, Severity::Error);
    assert_eq!(hits[0].stage, Stage::Composed);
    assert!(hits[0].span.is_none(), "{}", hits[0]);
}

// ------------------------------------------------- predicate dataflow (4xx)

/// The paper's hotel filter (`starrating > 4`), as textual view source.
const STAR_VIEW: &str = "\
node metro $m {
    query: SELECT metroid, metroname FROM metroarea;
    node hotel $h {
        query: SELECT hotelid, hotelname, starrating FROM hotel \
               WHERE metro_id = $m.metroid AND starrating > 4;
    }
}";

#[test]
fn xvc401_dead_subtree_with_fact_chain() {
    // Figure 4 extended with a conflicting match predicate: the view keeps
    // only hotels with starrating > 4, the stylesheet selects < 3.
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel[@starrating &lt; 3]"/></m></xsl:template>
      <xsl:template match="hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(STAR_VIEW), Some(xslt));
    let d = the(&r, Code::Xvc401);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::Composed);
    assert!(d.span.is_none(), "{d}");
    let help = d.help.as_deref().unwrap();
    assert!(help.contains("fact chain"), "{help}");
    assert!(help.contains("starrating"), "{help}");
    // The prune report quantifies the removal.
    let p = the(&r, Code::Xvc407);
    assert!(p.message.contains("remove 1 of"), "{p}");
    assert!(!r.has_errors());
}

#[test]
fn xvc402_implicit_aggregate_survives_contradiction() {
    // WHERE is provably false, but SUM over no tuples still yields a row —
    // the node is NOT dead, and the report says why.
    let view = "node stat $s { query: SELECT SUM(capacity) AS total FROM confroom \
                WHERE capacity > 10 AND capacity < 5; }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="stat"/></r></xsl:template>
      <xsl:template match="stat"><s/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc402);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("implicit"), "{d}");
    assert!(!r.codes().contains(&Code::Xvc401), "{:?}", r.codes());
}

#[test]
fn xvc403_redundant_conjunct_and_prune_report() {
    let view = "node hotel $h { query: SELECT hotelid, starrating FROM hotel \
                WHERE starrating > 4 AND starrating > 2; }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="hotel"/></r></xsl:template>
      <xsl:template match="hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc403);
    assert!(d.message.contains("starrating > 2"), "{d}");
    assert!(
        d.help.as_deref().unwrap().contains("starrating > 4"),
        "{d:?}"
    );
    let p = the(&r, Code::Xvc407);
    assert!(p.message.contains("drop 1 redundant conjunct"), "{p}");
}

#[test]
fn xvc404_tautological_exists() {
    // An implicitly aggregating subquery always yields its one row, so the
    // EXISTS is always TRUE.
    let view = "node metro $m { query: SELECT metroid FROM metroarea \
                WHERE EXISTS (SELECT COUNT(*) FROM availability); }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc404);
    assert!(d.message.contains("tautological"), "{d}");
}

#[test]
fn xvc405_is_null_on_key_column() {
    // hotelid is the table's PRIMARY KEY (retained from the DDL), so
    // `IS NULL` can never bind — and the node is dead.
    let view = "node hotel $h { query: SELECT hotelid FROM hotel WHERE hotelid IS NULL; }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="hotel"/></r></xsl:template>
      <xsl:template match="hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc405);
    assert!(d.message.contains("NOT NULL"), "{d}");
    let dead = the(&r, Code::Xvc401);
    assert!(
        dead.help.as_deref().unwrap().contains("PRIMARY KEY"),
        "{dead:?}"
    );
}

#[test]
fn xvc406_key_implied_duplicate_join() {
    let view = "node h $h { query: SELECT a.hotelid, a.hotelname FROM hotel AS a, hotel AS b \
                WHERE a.hotelid = b.hotelid; }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="h"/></r></xsl:template>
      <xsl:template match="h"><x/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc406);
    assert!(d.message.contains("primary key"), "{d}");
    assert!(d.message.contains("hotelid"), "{d}");
}

// --------------------------------------------------- cardinality (120, 5xx)

#[test]
fn xvc120_unusable_index() {
    // starrating is only ever compared with `>`; the index can never be an
    // access path. The metro_id index is used and stays silent.
    let ddl = "CREATE TABLE hotel (\n\
                   hotelid INT PRIMARY KEY,\n\
                   metro_id INT,\n\
                   starrating INT\n\
               );\n\
               CREATE INDEX hotel_star ON hotel (starrating) USING HASH;\n\
               CREATE INDEX hotel_metro ON hotel (metro_id) USING HASH;";
    let cat = xvc::rel::parse_ddl(ddl).unwrap();
    let view = "node hotel $h { query: SELECT hotelid, starrating FROM hotel \
                WHERE metro_id = 7 AND starrating > 4; }";
    let r = check_sources(Some(view), None, Some(&cat), &CheckOptions::default());
    assert_eq!(r.codes(), vec![Code::Xvc120]);
    let d = the(&r, Code::Xvc120);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("hotel.starrating"), "{d}");
    assert!(d.help.as_deref().unwrap().contains("equality"), "{d:?}");
}

#[test]
fn xvc501_zero_bound_accompanies_dead_subtree() {
    // Same fixture as XVC401: the cardinality pass restates the dead
    // subtree as a 0-row bound, with the same fact chain as justification.
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel[@starrating &lt; 3]"/></m></xsl:template>
      <xsl:template match="hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(STAR_VIEW), Some(xslt));
    let d = the(&r, Code::Xvc501);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::Composed);
    assert!(d.message.contains("0 rows"), "{d}");
    assert!(
        d.justification.iter().any(|j| j.contains("starrating")),
        "{d:?}"
    );
    // The dataflow pass reports the same region.
    the(&r, Code::Xvc401);
}

#[test]
fn xvc502_cross_product_fan_out() {
    let view = "node pair $p { query: SELECT a.metroid, b.hotelid \
                FROM metroarea AS a, hotel AS b; }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="pair"/></r></xsl:template>
      <xsl:template match="pair"><p/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc502);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("cross product"), "{d}");
    assert!(d.message.contains("`b`"), "{d}");
    assert!(!d.justification.is_empty(), "{d:?}");
}

#[test]
fn xvc503_unbounded_recursive_growth() {
    // The XVC203 recursion fixture: metro's tag query is unbounded, so the
    // cyclic expansion has no finite growth bound either.
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>
      <xsl:template match="hotel"><h><xsl:apply-templates select=".."/></h></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(TWO_LEVEL_VIEW), Some(src));
    the(&r, Code::Xvc203);
    // Both metro and hotel lie on the cycle, and neither tag query is
    // provably single-row — one finding per distinct view node.
    let hits: Vec<&Diagnostic> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::Xvc503)
        .collect();
    assert_eq!(hits.len(), 2, "{:?}", r.diagnostics);
    let d = hits[0];
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::View);
    assert!(d.span.is_some(), "{d}");
    assert!(d.message.contains("CTG cycle"), "{d}");
    assert!(
        d.help.as_deref().unwrap().contains("compose_recursive"),
        "{d:?}"
    );
}

#[test]
fn xvc504_rebind_guard_probe_not_single_row() {
    // `.[hotel]` composes to a rebind whose guard probes hotel existence;
    // the probe pins no primary key, so it is not provably single-row.
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select=".[hotel]" mode="g"/></m></xsl:template>
      <xsl:template match="metro" mode="g"><gm/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(TWO_LEVEL_VIEW), Some(xslt));
    let d = the(&r, Code::Xvc504);
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("EXISTS probe"), "{d}");
    assert!(d.help.as_deref().unwrap().contains("point lookup"), "{d:?}");
}

#[test]
fn xvc505_finite_document_bound_report() {
    // The root tag query pins metroarea's full primary key to a literal:
    // the whole document is statically bounded, and the report says so.
    let view = "node metro $m { query: SELECT metroid, metroname FROM metroarea \
                WHERE metroid = 1; }";
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(view), Some(xslt));
    let d = the(&r, Code::Xvc505);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::General);
    assert!(d.message.contains("at most"), "{d}");
    assert!(
        d.justification.iter().any(|j| j.contains("fan-out")),
        "{d:?}"
    );
    assert!(!r.has_errors());
}

// ------------------------------------------------- dependency lineage (6xx)

/// Five sibling nodes all joining on the same parent key: `metroarea.metroid`
/// feeds the parent's projection plus four join keys — write amplification.
const FANOUT_VIEW: &str = "\
node metro $m {
    query: SELECT metroid FROM metroarea;
    node h1 $a { query: SELECT hotelid FROM hotel WHERE metro_id = $m.metroid; }
    node h2 $b { query: SELECT hotelid FROM hotel WHERE metro_id = $m.metroid; }
    node h3 $c { query: SELECT hotelid FROM hotel WHERE metro_id = $m.metroid; }
    node h4 $d { query: SELECT hotelid FROM hotel WHERE metro_id = $m.metroid; }
}";

const FANOUT_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
  <xsl:template match="metro"><m>
    <xsl:apply-templates select="h1"/><xsl:apply-templates select="h2"/>
    <xsl:apply-templates select="h3"/><xsl:apply-templates select="h4"/>
  </m></xsl:template>
  <xsl:template match="h1"><x1/></xsl:template>
  <xsl:template match="h2"><x2/></xsl:template>
  <xsl:template match="h3"><x3/></xsl:template>
  <xsl:template match="h4"><x4/></xsl:template>
</xsl:stylesheet>"#;

#[test]
fn xvc601_write_amplifying_column() {
    let r = check(Some(FANOUT_VIEW), Some(FANOUT_XSLT));
    let hits: Vec<&Diagnostic> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::Xvc601)
        .collect();
    assert!(!hits.is_empty(), "{:?}", r.diagnostics);
    let d = hits
        .iter()
        .find(|d| d.message.contains("metroarea.metroid"))
        .unwrap_or_else(|| panic!("no metroid amplification: {hits:?}"));
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::General);
    assert!(d.span.is_none(), "{d}");
    assert!(d.message.contains("write amplification"), "{d}");
    // Each justifying fact names a TVQ node the column feeds.
    assert!(d.justification.len() > 3, "{:?}", d.justification);
    assert!(d.help.as_deref().unwrap().contains("fact chain"), "{d:?}");
    assert!(!r.has_errors());
}

#[test]
fn xvc602_recursive_dependency_recomputes() {
    // The XVC203/XVC503 recursion fixture: the cyclic branch walks the raw
    // view, and the hotel join key surfaces as a forced-recompute edge.
    let src = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>
      <xsl:template match="hotel"><h><xsl:apply-templates select=".."/></h></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(TWO_LEVEL_VIEW), Some(src));
    the(&r, Code::Xvc203);
    let hits: Vec<&Diagnostic> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::Xvc602)
        .collect();
    assert!(!hits.is_empty(), "{:?}", r.diagnostics);
    let d = hits
        .iter()
        .find(|d| d.message.contains("metroarea.metroid"))
        .unwrap_or_else(|| panic!("no metroid recursion edge: {hits:?}"));
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("recursion cycle"), "{d}");
    assert!(d.message.contains("join-key"), "{d}");
    assert!(
        d.justification
            .iter()
            .any(|j| j.contains("recursion cycle")),
        "{:?}",
        d.justification
    );
    assert!(!r.has_errors());
}

#[test]
fn xvc603_dead_base_table() {
    // STAR_VIEW reads metroarea and hotel only; the other four Figure 2
    // tables are dead weight for this workload.
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>
      <xsl:template match="hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(STAR_VIEW), Some(xslt));
    let hits: Vec<&Diagnostic> = r
        .diagnostics
        .iter()
        .filter(|d| d.code == Code::Xvc603)
        .collect();
    assert_eq!(hits.len(), 4, "{:?}", r.diagnostics);
    let d = hits
        .iter()
        .find(|d| d.message.contains("hotelchain"))
        .unwrap_or_else(|| panic!("hotelchain not reported dead: {hits:?}"));
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::General);
    assert!(
        d.help.as_deref().unwrap().contains("skip republishing"),
        "{d:?}"
    );
    assert!(!r.has_errors());
}

#[test]
fn xvc604_impact_report() {
    // Same workload: hotel's join key on metroarea.metroid is structural,
    // so the impact report fires exactly once, with per-table fact lines.
    let xslt = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>
      <xsl:template match="hotel"><h/></xsl:template>
    </xsl:stylesheet>"#;
    let r = check(Some(STAR_VIEW), Some(xslt));
    let d = the(&r, Code::Xvc604);
    assert_eq!(d.severity, Severity::Warning);
    assert_eq!(d.stage, Stage::General);
    assert!(d.message.contains("dependency impact"), "{d}");
    assert!(d.message.contains("xvc deps"), "{d}");
    assert!(
        d.justification
            .iter()
            .any(|j| j.contains("recompute-required")),
        "{:?}",
        d.justification
    );
    assert!(!r.has_errors());
}

// ------------------------------------------------------------------- catalog

/// Every code in the catalogue has a fixture in this file (or is the clean
/// case); keep `Code::all()` and this list in sync with `DIAGNOSTICS.md`.
#[test]
fn every_code_is_exercised() {
    assert_eq!(Code::all().len(), 41);
}
