//! Soundness of the static cardinality analysis: on randomized workloads
//! the publisher's measured counters never exceed the statically
//! predicted bounds (the analysis may overestimate, never undercount),
//! and the bound-driven execution path produces documents byte-identical
//! to the heuristic (unbounded) path — across the in-memory, paged, and
//! indexed storage backends.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xvc::core::paper_fixtures::figure1_view;
use xvc::prelude::*;
use xvc::rel::{Backend, IndexKind};
use xvc_bench::random_stylesheet::{random_stylesheet, StylesheetConfig};
use xvc_bench::workload::{generate, WorkloadConfig};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..3, // metros
        1usize..5, // hotels per metro
        0u8..=10,  // luxury tenths
        0usize..4, // rooms
        0usize..3, // conference rooms
        1usize..3, // dates
        0usize..3, // availability per room
        any::<u64>(),
    )
        .prop_map(
            |(metros, hotels, lux, rooms, confs, dates, avail, seed)| WorkloadConfig {
                metros,
                hotels_per_metro: hotels,
                luxury_fraction: lux as f64 / 10.0,
                rooms_per_hotel: rooms,
                conf_rooms_per_hotel: confs,
                dates,
                avail_per_room: avail,
                seed,
            },
        )
}

/// The three generator presets every case is run under: the default mix,
/// the recursion-heavy deep-chain preset, and the wide-fanout batching
/// preset.
fn presets() -> [StylesheetConfig; 3] {
    [
        StylesheetConfig::default(),
        StylesheetConfig::recursion_heavy(),
        StylesheetConfig::wide_fanout(),
    ]
}

/// Publishes `composed` against `db` and checks every measured counter
/// against the static prediction, plus bounded-vs-heuristic identity.
fn assert_bounds_sound(
    composed: &SchemaTree,
    db: &Database,
    bounds: &ViewBounds,
    context: &str,
) -> Result<(), TestCaseError> {
    let bounded = Engine::new(composed)
        .session()
        .publish(db)
        .expect("publish bounded");
    // Soundness: measured per-wave batch sizes and the total element
    // count never exceed the static bounds (when those are finite).
    if let Some(limit) = bounds.max_batch.as_limit() {
        prop_assert!(
            bounded.stats.bindings_per_batch_max as u64 <= limit,
            "{context}: measured batch {} exceeds static bound {limit}",
            bounded.stats.bindings_per_batch_max
        );
    }
    if let Some(limit) = bounds.document.as_limit() {
        prop_assert!(
            bounded.stats.elements as u64 <= limit,
            "{context}: {} elements exceed static document bound {limit}",
            bounded.stats.elements
        );
    }
    // Exactness: steering plans by the bounds must not change the
    // document, byte for byte.
    let heuristic = Engine::new(composed)
        .bounded(false)
        .session()
        .publish(db)
        .expect("publish unbounded");
    prop_assert_eq!(
        bounded.document.to_xml(),
        heuristic.document.to_xml(),
        "{}: bound-driven plans diverged from the heuristic path",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(cases(64))]

    /// ≥192 random workloads per run (64 cases × 3 generator presets):
    /// measured batch sizes and element counts never exceed the static
    /// cardinality bounds, and bound-driven plans are byte-identical to
    /// the heuristic path — on the in-memory backend, the paged
    /// (buffer-pool) backend, and an indexed copy of the instance.
    #[test]
    fn cardinality_bounds_sound_across_backends(
        cfg in config_strategy(),
        sheet_seed in 0u64..10_000,
    ) {
        let mem = generate(&cfg);
        let view = figure1_view();
        let catalog = mem.catalog();
        let paged = mem.to_backend(Backend::paged()).expect("paged backend");
        // An indexed copy: hash the hot foreign keys the Figure 1 view
        // joins through, so the index access path actually fires.
        let mut indexed = mem.clone();
        indexed.create_index("hotel", "metro_id", IndexKind::Hash).expect("index");
        indexed.create_index("confroom", "chotel_id", IndexKind::Hash).expect("index");
        let indexed_catalog = indexed.catalog();

        for (p, preset) in presets().iter().enumerate() {
            let stylesheet = random_stylesheet(&view, &catalog, sheet_seed, *preset);
            let composed = Composer::new(&view, &stylesheet, &catalog)
                .run()
                .expect("generated stylesheets compose")
                .view;
            let bounds = analyze_view_bounds(&composed, &catalog);
            let ctx = |backend: &str| {
                format!("preset {p} seed {sheet_seed} cfg {cfg:?} backend {backend}")
            };
            assert_bounds_sound(&composed, &mem, &bounds, &ctx("memory"))?;
            assert_bounds_sound(&composed, &paged, &bounds, &ctx("paged"))?;
            // The indexed catalog declares extra access paths but the
            // same keys, so the bounds carry over unchanged — re-derive
            // them anyway to check analysis stability under IndexDefs.
            let indexed_bounds = analyze_view_bounds(&composed, &indexed_catalog);
            prop_assert_eq!(
                indexed_bounds.max_batch, bounds.max_batch,
                "secondary indexes changed the batch bound"
            );
            assert_bounds_sound(&composed, &indexed, &indexed_bounds, &ctx("indexed"))?;
        }
    }

    /// The static document bound, when finite, is genuinely attained on a
    /// workload built to pin every level: a single-metro instance where
    /// the analysis proves per-level uniqueness must never undercount.
    #[test]
    fn finite_document_bounds_never_undercount(seed in any::<u64>()) {
        let cfg = WorkloadConfig {
            metros: 1,
            hotels_per_metro: 3,
            luxury_fraction: 1.0,
            rooms_per_hotel: 2,
            conf_rooms_per_hotel: 1,
            dates: 1,
            avail_per_room: 1,
            seed,
        };
        let db = generate(&cfg);
        let view = figure1_view();
        let catalog = db.catalog();
        let bounds = analyze_view_bounds(&view, &catalog);
        let published = Engine::new(&view).session().publish(&db).expect("publish");
        if let Some(limit) = bounds.document.as_limit() {
            prop_assert!(published.stats.elements as u64 <= limit);
        }
        if let Some(limit) = bounds.max_batch.as_limit() {
            prop_assert!(published.stats.bindings_per_batch_max as u64 <= limit);
        }
    }
}
