//! Delta-publish property tests: `Session::republish_delta` absorbs a
//! write through the `xvc_rel` DML path and must be indistinguishable —
//! byte-for-byte — from republishing the whole document, on both the
//! in-memory and paged storage backends. A soundness property pins the
//! delta path to the static analysis: every view node the delta run
//! re-executed must lie inside (the subtree closure of) the
//! [`xvc::core::DependencyMap`]'s affected set for the changed tables.
//!
//! The acceptance test at the bottom pins the incremental *win*: on the
//! deep chain workload a single-row insert re-executes under 20% of the
//! full publish's batch count.

use proptest::prelude::*;
use xvc::core::paper_fixtures::figure1_view;
use xvc::core::DependencyMap;
use xvc::prelude::*;
use xvc_bench::experiments::incr_bench;
use xvc_bench::random_stylesheet::{random_stylesheet, StylesheetConfig};
use xvc_bench::workload::{generate, WorkloadConfig};
use xvc_rel::ColumnType;

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

/// Rotates through the generator presets so every run covers the plain,
/// recursion-heavy, and wide-fanout shapes.
fn preset(seed: u64) -> StylesheetConfig {
    match seed % 3 {
        0 => StylesheetConfig::default(),
        1 => StylesheetConfig::recursion_heavy(),
        _ => StylesheetConfig::wide_fanout(),
    }
}

/// A fresh, type-correct row for `table`, keyed far away from the
/// generator's id ranges so inserts never collide.
fn insert_sql(schema: &TableSchema, seed: u64) -> String {
    let vals: Vec<String> = schema
        .columns
        .iter()
        .enumerate()
        .map(|(i, c)| match c.ty {
            ColumnType::Int => format!("{}", 900_000 + seed as i64 * 100 + i as i64),
            ColumnType::Float => format!("{}.5", 900_000 + seed as i64 * 100 + i as i64),
            ColumnType::Str => format!("'delta_{seed}_{i}'"),
        })
        .collect();
    format!("INSERT INTO {} VALUES ({})", schema.name, vals.join(", "))
}

/// The DML statement for this seed: usually an insert into a
/// seed-selected table, every fourth seed a delete that hits real rows.
fn delta_sql(catalog: &Catalog, seed: u64) -> String {
    let tables: Vec<&TableSchema> = catalog.iter().collect();
    let schema = tables[(seed as usize / 4) % tables.len()];
    if seed % 4 == 3 {
        // The generators key every table by an integer first column, so a
        // broad range predicate deletes a real slice of the instance.
        format!(
            "DELETE FROM {} WHERE {} > {}",
            schema.name,
            schema.columns[0].name,
            seed % 7
        )
    } else {
        insert_sql(schema, seed)
    }
}

/// Composes the workload for `seed`, publishes it incrementally, applies
/// the seed's delta, and returns `(full, incr, changed tables, composed)`
/// for the properties to inspect. `db` is mutated to the post-delta state.
fn run_delta(db: &mut Database, seed: u64) -> (Published, Published, Vec<String>, SchemaTree) {
    let view = figure1_view();
    let catalog = db.catalog();
    let stylesheet = random_stylesheet(&view, &catalog, seed, preset(seed));
    let composed = Composer::new(&view, &stylesheet, &catalog)
        .run()
        .expect("generated stylesheets compose")
        .view;

    let mut publisher = Engine::new(&composed).incremental(true).session();
    let prev = publisher.publish(db).expect("initial publish");
    let delta = db
        .execute_dml(&delta_sql(&db.catalog(), seed))
        .expect("delta DML");
    let changed: Vec<String> = delta
        .tables_changed()
        .iter()
        .map(|t| (*t).to_owned())
        .collect();
    let full = publisher.publish(db).expect("full republish");
    let incr = publisher
        .republish_delta(db, &prev, &delta)
        .expect("delta republish");
    (full, incr, changed, composed)
}

proptest! {
    #![proptest_config(cases(128))]

    /// Delta publish ≡ full republish, byte-for-byte, in-memory backend.
    #[test]
    fn delta_equals_full_republish_memory(seed in 0u64..10_000) {
        let mut db = generate(&WorkloadConfig::scale(1));
        let (full, incr, _, _) = run_delta(&mut db, seed);
        prop_assert_eq!(
            incr.document.to_xml(),
            full.document.to_xml(),
            "seed {}: delta republish diverged from full republish",
            seed
        );
        // Deltas chain: the returned splice index absorbs the next write.
        prop_assert!(incr.splice.is_some(), "seed {}: no splice index", seed);
    }

    /// The same equivalence against the paged (buffer-pool) backend.
    #[test]
    fn delta_equals_full_republish_paged(seed in 0u64..10_000) {
        let base = generate(&WorkloadConfig::scale(1));
        let mut db = base
            .to_backend(xvc_rel::Backend::paged())
            .expect("paged backend");
        let (full, incr, _, _) = run_delta(&mut db, seed);
        prop_assert_eq!(
            incr.document.to_xml(),
            full.document.to_xml(),
            "seed {}: delta republish diverged on the paged backend",
            seed
        );
    }

    /// Soundness against the static analysis: every view node the delta
    /// run re-executed is in the `DependencyMap`'s affected set for some
    /// changed table — or a descendant of one (re-executing a node
    /// re-executes its whole subtree).
    #[test]
    fn reexecuted_nodes_lie_inside_the_dependency_map(seed in 0u64..10_000) {
        let mut db = generate(&WorkloadConfig::scale(1));
        let (_, incr, changed, composed) = run_delta(&mut db, seed);
        let catalog = db.catalog();
        let map = DependencyMap::of_view(&composed, &catalog, false);
        let mut affected = std::collections::BTreeSet::new();
        for t in &changed {
            affected.extend(map.affected_views(t));
        }
        for vid in &incr.reexecuted {
            let mut cur = Some(*vid);
            let mut covered = false;
            while let Some(v) = cur {
                if composed.is_root(v) {
                    break;
                }
                if affected.contains(&v) {
                    covered = true;
                    break;
                }
                cur = composed.parent(v);
            }
            prop_assert!(
                covered,
                "seed {}: node {:?} re-executed but the dependency map ties \
                 none of its ancestors to the changed tables {:?}",
                seed,
                vid,
                changed
            );
        }
    }
}

/// The acceptance bar for the incremental path: on the deep chain
/// workload, one inserted row republishes byte-identically (asserted
/// inside `incr_bench`) while re-executing strictly less than 20% of the
/// full publish's batches. The depth-5 chain is also absorbed
/// byte-identically (`incr_bench` panics otherwise).
#[test]
fn chain_single_row_insert_reexecutes_under_a_fifth_of_batches() {
    let shallow = incr_bench(5, 3, 1);
    assert_eq!(shallow.delta_rows_in, 1, "{shallow:?}");
    assert!(shallow.batches_delta < shallow.batches_full, "{shallow:?}");
    let deep = incr_bench(6, 3, 1);
    assert!(
        deep.reexecution_fraction() < 0.2,
        "delta path re-ran {:.0}% of the full batch count: {deep:?}",
        deep.reexecution_fraction() * 100.0
    );
}
