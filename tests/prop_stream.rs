//! Byte-equality of streamed emission: on randomized workloads,
//! `Session::publish_to` must write exactly the bytes of
//! `Document::to_xml()` (and `publish_pretty_to` those of
//! `to_pretty_xml()`) — across generator presets and across the in-memory
//! and paged storage backends. The streaming path shares the batched
//! frontier walk but swaps the arena document for a per-task skeleton, so
//! any drift between the two element stores shows up here as a byte diff.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use xvc::core::paper_fixtures::figure1_view;
use xvc::prelude::*;
use xvc::rel::Backend;
use xvc_bench::random_stylesheet::{random_stylesheet, StylesheetConfig};
use xvc_bench::workload::{generate, WorkloadConfig};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..3, // metros
        1usize..5, // hotels per metro
        0u8..=10,  // luxury tenths
        0usize..4, // rooms
        0usize..3, // conference rooms
        1usize..3, // dates
        0usize..3, // availability per room
        any::<u64>(),
    )
        .prop_map(
            |(metros, hotels, lux, rooms, confs, dates, avail, seed)| WorkloadConfig {
                metros,
                hotels_per_metro: hotels,
                luxury_fraction: lux as f64 / 10.0,
                rooms_per_hotel: rooms,
                conf_rooms_per_hotel: confs,
                dates,
                avail_per_room: avail,
                seed,
            },
        )
}

/// The three generator presets every case is run under: the default mix,
/// the recursion-heavy deep-chain preset, and the wide-fanout batching
/// preset.
fn presets() -> [StylesheetConfig; 3] {
    [
        StylesheetConfig::default(),
        StylesheetConfig::recursion_heavy(),
        StylesheetConfig::wide_fanout(),
    ]
}

/// Publishes `composed` against `db` both ways and compares bytes — the
/// compact and pretty layouts, plus the materialization counters (the
/// streaming walk must be the *same* walk, not merely an equivalent one).
fn assert_stream_identical(
    composed: &SchemaTree,
    db: &Database,
    context: &str,
) -> Result<(), TestCaseError> {
    let published = Engine::new(composed)
        .session()
        .publish(db)
        .expect("publish materialized");

    let mut session = Engine::new(composed).session();
    let mut compact = Vec::new();
    let streamed = session
        .publish_to(db, &mut compact)
        .expect("publish streamed");
    prop_assert_eq!(
        String::from_utf8(compact).expect("utf-8 stream"),
        published.document.to_xml(),
        "{}: streamed bytes diverged from Document::to_xml()",
        context
    );
    prop_assert_eq!(
        streamed.stats.elements,
        published.stats.elements,
        "{}: streamed walk materialized a different element count",
        context
    );
    prop_assert_eq!(
        streamed.stats.batches_executed,
        published.stats.batches_executed,
        "{}: streamed walk ran a different batch decomposition",
        context
    );
    prop_assert_eq!(
        &streamed.eval,
        &published.eval,
        "{}: streamed walk did different relational work",
        context
    );

    let mut pretty = Vec::new();
    session
        .publish_pretty_to(db, &mut pretty)
        .expect("publish streamed pretty");
    prop_assert_eq!(
        String::from_utf8(pretty).expect("utf-8 stream"),
        published.document.to_pretty_xml(),
        "{}: streamed pretty bytes diverged from to_pretty_xml()",
        context
    );
    Ok(())
}

proptest! {
    #![proptest_config(cases(64))]

    /// ≥192 random workloads per run (64 cases × 3 generator presets):
    /// streamed emission is byte-identical to the materializing
    /// serializers in both layouts, with identical publish/eval counters,
    /// on the in-memory and the paged (buffer-pool) backends.
    #[test]
    fn streamed_emission_is_byte_identical_across_backends(
        cfg in config_strategy(),
        sheet_seed in 0u64..10_000,
    ) {
        let mem = generate(&cfg);
        let view = figure1_view();
        let catalog = mem.catalog();
        let paged = mem.to_backend(Backend::paged()).expect("paged backend");

        for (p, preset) in presets().iter().enumerate() {
            let stylesheet = random_stylesheet(&view, &catalog, sheet_seed, *preset);
            let composed = Composer::new(&view, &stylesheet, &catalog)
                .run()
                .expect("generated stylesheets compose")
                .view;
            let ctx = |backend: &str| {
                format!("preset {p} seed {sheet_seed} cfg {cfg:?} backend {backend}")
            };
            assert_stream_identical(&composed, &mem, &ctx("memory"))?;
            assert_stream_identical(&composed, &paged, &ctx("paged"))?;
        }
    }
}
