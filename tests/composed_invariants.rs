//! Structural invariants of composed stylesheet views, checked across the
//! whole stylesheet library:
//!
//! * every generated tag query round-trips through the SQL printer/parser;
//! * the composed view passes Definition 1 validation;
//! * generated binding variables are fresh (`*_new*` style) and unique;
//! * composed queries reference only binding variables bound by ancestors.

use xvc::core::paper_fixtures::{figure1_view, figure2_catalog, FIGURE15_XSLT, FIGURE17_XSLT};
use xvc::prelude::*;
use xvc::xslt::parse::FIGURE4_XSLT;

// Local shim over the builder API: the deprecated free function is
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

fn composed_views() -> Vec<(&'static str, SchemaTree)> {
    let v = figure1_view();
    let catalog = figure2_catalog();
    [
        ("figure4", FIGURE4_XSLT),
        ("figure15", FIGURE15_XSLT),
        ("figure17", FIGURE17_XSLT),
    ]
    .iter()
    .map(|(name, xslt)| {
        let x = parse_stylesheet(xslt).unwrap();
        (*name, compose(&v, &x, &catalog).unwrap())
    })
    .collect()
}

#[test]
fn composed_views_validate() {
    for (name, view) in composed_views() {
        view.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn composed_queries_roundtrip_through_sql_text() {
    for (name, view) in composed_views() {
        for vid in view.node_ids() {
            let node = view.node(vid).unwrap();
            let Some(q) = &node.query else { continue };
            let sql = q.to_sql();
            let reparsed = parse_query(&sql)
                .unwrap_or_else(|e| panic!("{name}/{}: reparse failed: {e}\n{sql}", node.tag));
            assert_eq!(
                q, &reparsed,
                "{name}/{}: printer/parser disagree on:\n{sql}",
                node.tag
            );
        }
    }
}

#[test]
fn composed_binding_variables_are_unique() {
    for (name, view) in composed_views() {
        let mut seen = std::collections::HashSet::new();
        for vid in view.node_ids() {
            let node = view.node(vid).unwrap();
            if node.query.is_some() {
                assert!(
                    seen.insert(node.bv.clone()),
                    "{name}: duplicate binding variable {}",
                    node.bv
                );
            }
        }
    }
}

#[test]
fn composed_parameters_bind_to_ancestors() {
    for (name, view) in composed_views() {
        for vid in view.node_ids() {
            let node = view.node(vid).unwrap();
            let Some(q) = &node.query else { continue };
            let ancestors: std::collections::HashSet<String> = view
                .path_from_root(vid)
                .iter()
                .filter(|&&a| a != vid)
                .filter_map(|&a| view.bv(a).map(str::to_owned))
                .collect();
            for p in q.parameters() {
                assert!(
                    ancestors.contains(&p),
                    "{name}/{}: parameter ${p} has no ancestor binding",
                    node.tag
                );
            }
        }
    }
}

#[test]
fn composed_literal_nodes_carry_no_queries_or_data() {
    // The HTML skeleton of Figure 7(c): literal nodes publish nothing.
    let (_, view) = composed_views().remove(0);
    let mut literals = 0;
    for vid in view.node_ids() {
        let node = view.node(vid).unwrap();
        if node.query.is_none() && node.context_tuple_of.is_none() {
            literals += 1;
            assert_eq!(node.attrs, AttrProjection::None, "{}", node.tag);
        }
    }
    assert!(
        literals >= 5,
        "HTML/HEAD/BODY/A/B literals expected, got {literals}"
    );
}

#[test]
fn composed_views_have_sequential_paper_ids() {
    for (name, view) in composed_views() {
        let mut ids: Vec<u32> = view
            .node_ids()
            .iter()
            .map(|&v| view.node(v).unwrap().id)
            .collect();
        let n = ids.len() as u32;
        ids.sort_unstable();
        assert_eq!(
            ids,
            (1..=n).collect::<Vec<_>>(),
            "{name}: ids not sequential"
        );
    }
}
