//! Golden tests pinning the regenerated paper figures (via
//! `xvc_bench::figures`). Each test asserts the load-bearing content the
//! paper's artwork shows; the `figures` binary prints the full artifacts.

use xvc_bench::figures as f;

#[test]
fn figure1_view_artifact() {
    let a = f::f1_schema_tree_view();
    for needle in [
        "(1) <metro> $m",
        "(2) <confstat> $cs",
        "(3) <hotel> $h",
        "(4) <confstat> $s",
        "(5) <confroom> $c",
        "(6) <hotel_available> $a",
        "(7) <metro_available> $v",
        "starrating > 4",
        "GROUP BY startdate",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
}

#[test]
fn figure2_schema_artifact() {
    let a = f::f2_hotel_schema();
    assert_eq!(
        a,
        "availability(a_id, a_r_id, startdate, enddate, price)\n\
         confroom(c_id, chotel_id, croomnumber, capacity, rackrate)\n\
         guestroom(r_id, rhotel_id, roomnumber, type, rackrate)\n\
         hotel(hotelid, hotelname, starrating, chain_id, metro_id, state_id, city, pool, gym)\n\
         hotelchain(chainid, companyname, hqstate)\n\
         metroarea(metroid, metroname)\n"
    );
}

#[test]
fn figure6_ctg_artifact() {
    let a = f::f6_ctg();
    // The four nodes of Figure 6 ...
    for needle in [
        "((0, root), R1)",
        "((1, metro), R2)",
        "((4, confstat), R3)",
        "((5, confroom), R4)",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
    // ... and the three edges with their select expressions.
    assert!(a.contains("e1:"), "{a}");
    assert!(a.contains("e3:"), "{a}");
    assert!(!a.contains("e4:"), "{a}");
    assert!(a.contains("[select metro]"), "{a}");
    assert!(a.contains("[select hotel/confstat]"), "{a}");
    assert!(a.contains("[select ../hotel_available/../confroom]"), "{a}");
}

#[test]
fn figure7a_tvq_artifact() {
    let a = f::f7a_tvq();
    for needle in [
        "((0, root), R1)",
        "((1, metro), R2)  $m_new",
        "((4, confstat), R3)  $s_new",
        "((5, confroom), R4)  $c_new",
        "SELECT SUM(capacity), TEMP.*",
        "metro_id = $m_new.metroid",
        "GROUP BY TEMP.hotelid",
        "chotel_id = $s_new.hotelid",
        "rhotel_id = $s_new.hotelid",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
}

#[test]
fn figure7c_stylesheet_view_artifact() {
    let a = f::f7c_stylesheet_view();
    for needle in [
        "<HTML>  [literal]",
        "<HEAD>  [literal]",
        "<BODY>  [literal]",
        "<result_metro> $m_new",
        "<A>  [literal]",
        "<result_confstat> $s_new",
        "<B>  [literal]",
        "<confroom> $c_new",
        "EXISTS (",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
}

#[test]
fn figure8_combine_artifact() {
    let a = f::f8_combine();
    assert!(a.contains("query context node"), "{a}");
    assert!(a.contains("new query context node"), "{a}");
    assert!(a.contains("hotel_available"), "{a}");
    // The Figure 8 result has five nodes: metro, hotel, and the three
    // siblings.
    assert!(a.contains("metro"), "{a}");
}

#[test]
fn figure16_forced_unbinding_artifact() {
    let a = f::f16_stylesheet_view();
    // result_metro is gone; result_confstat's query swallowed the
    // metroarea query as a nested derived table.
    assert!(!a.contains("result_metro"), "{a}");
    assert!(a.contains("<result_confstat>"), "{a}");
    assert!(a.contains("FROM metroarea"), "{a}");
}

#[test]
fn figure18_smt_artifact() {
    let a = f::f18_smt_with_predicates();
    // Two confstat pattern nodes, one with each predicate.
    assert_eq!(a.matches("confstat").count(), 2, "{a}");
    assert!(a.contains("@sum < 200"), "{a}");
    assert!(a.contains("@sum > 100"), "{a}");
    assert!(a.contains("@capacity > 250"), "{a}");
    assert!(a.contains("@metroname = 'chicago'"), "{a}");
}

#[test]
fn figure20_unbound_query_artifact() {
    let a = f::f20_unbound_query();
    for needle in [
        "SELECT *",
        "FROM confroom",
        "chotel_id = $s_new.hotelid",
        "capacity > 250",
        "$s_new.sum < 200",
        "$m_new.metroname = 'chicago'",
        "HAVING SUM(capacity) > 100",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
    assert_eq!(a.matches("EXISTS (").count(), 2, "{a}");
}

#[test]
fn figures21_23_rewrite_artifacts() {
    let a = f::f21_23_rewrites();
    // Each rewrite replaces flow control with a guarded apply-templates in
    // a fresh mode.
    assert!(a.contains("Figure 21"), "{a}");
    assert!(a.contains(".[@pool = 'yes']"), "{a}");
    assert!(a.contains("not(@starrating = 5)"), "{a}");
    // xsl:if appears once — in the Figure 21 "before" section only.
    assert_eq!(a.matches("<xsl:if test").count(), 1, "{a}");
    // No flow control in any "after" section.
    for after in a.split("after:\n").skip(1) {
        let section = after.split("--- ").next().unwrap();
        assert!(!section.contains("<xsl:if"), "{section}");
        assert!(!section.contains("<xsl:choose"), "{section}");
    }
}

#[test]
fn figure24_conflict_artifact() {
    let a = f::f24_conflict_rewrite();
    // The high-priority rule moves to a fresh mode; the low-priority rule
    // gains a reversed-pattern dispatch.
    assert!(a.contains("__cr_"), "{a}");
    assert!(a.contains("parent::hotel"), "{a}");
}

#[test]
fn figure26_artifact() {
    let a = f::f26_recursive_view();
    for needle in [
        "<metro> $m",
        "<metro_available_down> $d",
        "<metro_available_up> $u",
        "HAVING COUNT(a_id) > 10",
        "HAVING COUNT(a_id) > 50",
        "starrating > 4",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
    assert!(
        !a.contains("idx"),
        "variable predicates must not compose: {a}"
    );
}

#[test]
fn figure27_artifact() {
    let a = f::f27_residual_stylesheet();
    for needle in [
        "match=\"/metro\"",
        "select=\"metro_available_down[@count &lt; $idx]\"",
        "match=\"metro_available_down\"",
        "select=\"../metro_available_up\"",
        "match=\"metro_available_up\"",
        "select=\"../metro_available_down[@count &lt; $idx]\"",
        "<xsl:param name=\"idx\"/>",
    ] {
        assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
    }
}

#[test]
fn all_artifacts_are_stable() {
    // Regenerating twice yields identical text (determinism of the whole
    // pipeline).
    let a: Vec<_> = f::all_figures();
    let b: Vec<_> = f::all_figures();
    assert_eq!(a, b);
}
