//! End-to-end tests for `xvc::serve`: an in-process server on an ephemeral
//! port, exercised over real sockets with the guide workload
//! (`examples/files/`). The invariant under test is the server one: every
//! served document is byte-identical to what a single-process publish of
//! the same (composed) view produces, before and after writes.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use xvc::prelude::*;
use xvc::serve::Server;

fn guide_database() -> Database {
    let ddl = std::fs::read_to_string("examples/files/schema.sql").expect("schema.sql");
    let mut db = xvc::rel::database_from_ddl(&ddl).expect("catalog");
    for table in ["city", "sight"] {
        let csv = std::fs::read_to_string(format!("examples/files/data/{table}.csv"))
            .expect("csv fixture");
        xvc::rel::load_csv(&mut db, table, &csv).expect("csv load");
    }
    db
}

fn guide_composed(db: &Database) -> SchemaTree {
    let view = xvc::view::parse_view(
        &std::fs::read_to_string("examples/files/guide.view").expect("guide.view"),
    )
    .expect("view parses");
    let xslt =
        parse_stylesheet(&std::fs::read_to_string("examples/files/guide.xsl").expect("guide.xsl"))
            .expect("stylesheet parses");
    Composer::new(&view, &xslt, &db.catalog())
        .run()
        .expect("composes")
        .view
}

/// Minimal blocking HTTP/1.1 client over one keep-alive connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Whether the last response arrived with `Transfer-Encoding: chunked`.
    last_chunked: bool,
    /// `Content-Type` of the last response.
    last_content_type: String,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
            last_chunked: false,
            last_content_type: String::new(),
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes()).expect("send head");
        self.writer.write_all(body.as_bytes()).expect("send body");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("status line");
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        let mut chunked = false;
        self.last_content_type.clear();
        loop {
            let mut header = String::new();
            assert_ne!(
                self.reader.read_line(&mut header).expect("header"),
                0,
                "connection closed mid-response"
            );
            if header.trim().is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length");
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    chunked = value.trim().eq_ignore_ascii_case("chunked");
                } else if name.eq_ignore_ascii_case("content-type") {
                    self.last_content_type = value.trim().to_owned();
                }
            }
        }
        self.last_chunked = chunked;
        let buf = if chunked {
            self.read_chunked_body()
        } else {
            let mut buf = vec![0u8; content_length];
            self.reader.read_exact(&mut buf).expect("body");
            buf
        };
        (status, String::from_utf8(buf).expect("utf-8 body"))
    }

    /// Decodes a `Transfer-Encoding: chunked` body: `len\r\n…\r\n` frames
    /// down to the terminal zero-length chunk. Panics on a truncated body
    /// (connection closed without the terminal chunk).
    fn read_chunked_body(&mut self) -> Vec<u8> {
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            assert_ne!(
                self.reader.read_line(&mut size_line).expect("chunk size"),
                0,
                "connection closed mid-chunked-body (truncated response)"
            );
            let size = usize::from_str_radix(size_line.trim(), 16).expect("hex chunk size");
            let mut chunk = vec![0u8; size + 2]; // chunk data + trailing CRLF
            self.reader.read_exact(&mut chunk).expect("chunk data");
            assert_eq!(&chunk[size..], b"\r\n", "chunk not CRLF-terminated");
            chunk.truncate(size);
            if size == 0 {
                return body;
            }
            body.extend_from_slice(&chunk);
        }
    }
}

fn counter(stats: &str, key: &str) -> u64 {
    let start = stats.find(&format!("\"{key}\":")).expect("counter present") + key.len() + 3;
    let rest = &stats[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().expect("numeric counter")
}

#[test]
fn concurrent_clients_get_byte_identical_documents() {
    let db = guide_database();
    let composed = guide_composed(&db);
    let expected = Engine::new(&composed)
        .session()
        .publish(&db)
        .expect("reference publish")
        .document
        .to_xml();

    let server = Server::start(Engine::new(&composed).parallel(2), db, "127.0.0.1:0", 4)
        .expect("server starts");
    let addr = server.addr();

    std::thread::scope(|scope| {
        for _ in 0..8 {
            let expected = expected.as_str();
            scope.spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..5 {
                    let (status, body) = client.request("GET", "/publish", "");
                    assert_eq!(status, 200);
                    assert_eq!(body, expected, "served /publish diverged");
                    let (status, body) = client.request("GET", "/doc", "");
                    assert_eq!(status, 200);
                    assert_eq!(body, expected, "served /doc diverged");
                }
            });
        }
    });

    let mut client = Client::connect(addr);
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    // Startup publish + 8 clients x 5 /publish requests.
    assert_eq!(counter(&stats, "publishes"), 41);
    // One session (the startup publish) compiled every plan; all 40
    // concurrent publishes were pure cache hits.
    let prepared = counter(&stats, "plans_prepared");
    let hits = counter(&stats, "plan_cache_hits");
    assert!(prepared > 0, "startup publish should compile plans");
    assert_eq!(hits % prepared, 0, "hits must be whole warm publishes");
    assert_eq!(hits / prepared, 40, "every request should hit the cache");
    assert_eq!(counter(&stats, "errors"), 0);

    let (status, _) = client.request("POST", "/shutdown", "");
    assert_eq!(status, 200);
    server.join();
}

#[test]
fn dml_and_ddl_keep_the_served_document_current() {
    let db = guide_database();
    let composed = guide_composed(&db);

    // Reference: the same mutations applied to a private database copy.
    let mut post_db = guide_database();
    post_db
        .execute_dml("INSERT INTO sight VALUES (99, 1, 'Navy Pier', 0)")
        .expect("reference dml");
    let expected_after = Engine::new(&composed)
        .session()
        .publish(&post_db)
        .expect("reference publish")
        .document
        .to_xml();

    let server =
        Server::start(Engine::new(&composed), db, "127.0.0.1:0", 2).expect("server starts");
    let mut client = Client::connect(server.addr());

    let (status, body) = client.request(
        "POST",
        "/dml",
        "INSERT INTO sight VALUES (99, 1, 'Navy Pier', 0)",
    );
    assert_eq!(status, 200, "dml failed: {body}");
    assert!(
        body.contains("\"delta_rows\":1"),
        "unexpected dml reply: {body}"
    );

    let (status, doc) = client.request("GET", "/doc", "");
    assert_eq!(status, 200);
    assert_eq!(doc, expected_after, "/doc trails the DML");
    assert!(!client.last_chunked, "/doc is a Content-Length snapshot");
    assert_eq!(client.last_content_type, "application/xml; charset=utf-8");
    let (status, fresh) = client.request("GET", "/publish", "");
    assert_eq!(status, 200);
    assert_eq!(fresh, expected_after, "/publish trails the DML");
    assert!(client.last_chunked, "/publish should stream chunked");
    assert_eq!(client.last_content_type, "application/xml; charset=utf-8");

    // DDL: changes the catalog fingerprint (plan cache recompiles), but
    // never the document.
    let (status, body) = client.request(
        "POST",
        "/ddl",
        "CREATE INDEX city_pop ON city (population) USING BTREE",
    );
    assert_eq!(status, 200, "ddl failed: {body}");
    let (status, doc) = client.request("GET", "/doc", "");
    assert_eq!(status, 200);
    assert_eq!(doc, expected_after, "an index changed the document");

    // Error paths stay on the connection: bad SQL is a 400, unknown
    // endpoints 404, and the connection keeps serving afterwards.
    let (status, _) = client.request("POST", "/dml", "UPDATE sight SET fee = 1");
    assert_eq!(status, 400);
    let (status, _) = client.request("GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _) = client.request("DELETE", "/doc", "");
    assert_eq!(status, 405);
    let (status, stats) = client.request("GET", "/stats", "");
    assert_eq!(status, 200);
    assert_eq!(counter(&stats, "errors"), 3);
    assert_eq!(counter(&stats, "delta_publishes"), 1);

    server.shutdown();
    server.join();
}

#[test]
fn streamed_publish_pretty_matches_reference_serializer() {
    let db = guide_database();
    let composed = guide_composed(&db);
    let reference = Engine::new(&composed)
        .session()
        .publish(&db)
        .expect("reference publish");
    let expected_compact = reference.document.to_xml();
    let expected_pretty = reference.document.to_pretty_xml();

    let server =
        Server::start(Engine::new(&composed), db, "127.0.0.1:0", 2).expect("server starts");
    let mut client = Client::connect(server.addr());

    // Both layouts stream chunked and decode to exactly what the arena
    // serializers would have produced.
    let (status, body) = client.request("GET", "/publish", "");
    assert_eq!(status, 200);
    assert!(client.last_chunked);
    assert_eq!(body, expected_compact);

    let (status, body) = client.request("GET", "/publish?pretty=1", "");
    assert_eq!(status, 200);
    assert!(client.last_chunked);
    assert_eq!(body, expected_pretty);

    server.shutdown();
    server.join();
}
