//! Failure injection across the stack: malformed inputs and out-of-scope
//! constructs must produce typed, actionable errors — never panics or
//! silently wrong output.

use xvc::core::paper_fixtures::{figure1_view, figure2_catalog, sample_database};
use xvc::prelude::*;

// Local shims over the builder API: the deprecated free functions are
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

fn publish(v: &SchemaTree, db: &Database) -> xvc::view::Result<(Document, PublishStats)> {
    Engine::new(v)
        .session()
        .publish(db)
        .map(|p| (p.document, p.stats))
}

fn compose_err(xslt: &str) -> xvc::core::Error {
    let v = figure1_view();
    let x = parse_stylesheet(xslt).unwrap();
    compose(&v, &x, &figure2_catalog()).unwrap_err()
}

#[test]
fn recursion_is_detected_and_redirected() {
    let err = compose_err(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
             <xsl:template match="hotel"><h><xsl:apply-templates select="confstat"/></h></xsl:template>
             <xsl:template match="confstat"><c><xsl:apply-templates select=".."/></c></xsl:template>
           </xsl:stylesheet>"#,
    );
    assert!(matches!(err, xvc::core::Error::RecursiveStylesheet { .. }));
    assert!(err.to_string().contains("compose_recursive"));
}

#[test]
fn missing_root_rule_is_reported() {
    let err = compose_err(
        "<xsl:stylesheet><xsl:template match=\"metro\"><m/></xsl:template></xsl:stylesheet>",
    );
    assert!(err.to_string().contains("document root"));
}

#[test]
fn flow_control_without_rewrites_is_rejected_with_guidance() {
    let err = compose_err(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
             <xsl:template match="metro"><xsl:if test="@metroname"><m/></xsl:if></xsl:template>
           </xsl:stylesheet>"#,
    );
    assert!(err.to_string().contains("Composer::rewrites"), "{err}");
}

#[test]
fn attribute_axis_select_is_rejected() {
    // Selects must yield nodes (Definition 3). (The descendant axis, which
    // XSLT_basic also excludes, is *supported* by this implementation —
    // see `descendant_selects_compose` in stress_composition.)
    let err = compose_err(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro/@metroname"/></r></xsl:template>
             <xsl:template match="metro"><m/></xsl:template>
           </xsl:stylesheet>"#,
    );
    assert!(err.to_string().contains("attribute axis"), "{err}");
}

#[test]
fn variables_in_predicates_are_rejected_for_plain_compose() {
    let err = compose_err(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro[@metroname=$city]"/></r></xsl:template>
             <xsl:template match="metro"><m/></xsl:template>
           </xsl:stylesheet>"#,
    );
    assert!(
        err.to_string().contains("§5.3") || err.to_string().contains("variable"),
        "{err}"
    );
}

#[test]
fn malformed_inputs_error_cleanly_everywhere() {
    // XML
    assert!(xvc::xml::parse("<unclosed>").is_err());
    assert!(xvc::xml::parse("").is_err());
    // XPath
    assert!(parse_path("a[").is_err());
    assert!(parse_expr("@a <").is_err());
    assert!(parse_pattern("../up").is_err());
    // SQL
    assert!(parse_query("SELEKT x FROM t").is_err());
    assert!(parse_query("SELECT FROM").is_err());
    // XSLT
    assert!(parse_stylesheet("<div/>").is_err());
    assert!(parse_stylesheet("<xsl:stylesheet><xsl:template/></xsl:stylesheet>").is_err());
}

#[test]
fn view_validation_failures_surface_through_publish() {
    let mut v = SchemaTree::new();
    v.add_root_node(ViewNode::new(
        1,
        "a",
        "x",
        parse_query("SELECT * FROM hotel WHERE metro_id = $ghost.id").unwrap(),
    ))
    .unwrap();
    let db = sample_database();
    let err = publish(&v, &db).unwrap_err();
    assert!(err.to_string().contains("$ghost"), "{err}");
}

#[test]
fn unknown_table_surfaces_at_publish_time() {
    let mut v = SchemaTree::new();
    v.add_root_node(ViewNode::new(
        1,
        "a",
        "x",
        parse_query("SELECT * FROM not_a_table").unwrap(),
    ))
    .unwrap();
    let err = publish(&v, &sample_database()).unwrap_err();
    assert!(err.to_string().contains("not_a_table"), "{err}");
}

#[test]
fn engine_recursion_limit_is_typed() {
    let doc = xvc::xml::parse("<a/>").unwrap();
    let x = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><xsl:apply-templates select="a"/></xsl:template>
             <xsl:template match="a"><xsl:apply-templates select="."/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let err = xvc::xslt::process_with_limit(&x, &doc, 10).unwrap_err();
    assert!(matches!(
        err,
        xvc::xslt::Error::RecursionLimit { limit: 10 }
    ));
}

#[test]
fn tvq_budget_is_enforced() {
    use xvc_bench::synthetic::{chain_catalog, chain_view, fan_stylesheet};
    let v = chain_view(10);
    let x = fan_stylesheet(10, 2);
    let err = Composer::new(&v, &x, &chain_catalog(10))
        .tvq_limit(100)
        .run()
        .unwrap_err();
    assert!(matches!(err, xvc::core::Error::TvqTooLarge { limit: 100 }));
}

#[test]
fn recursive_composer_rejects_non_recursive_shapes() {
    let v = figure1_view();
    let x = parse_stylesheet(xvc::xslt::parse::FIGURE4_XSLT).unwrap();
    let err = compose_recursive(&v, &x, &figure2_catalog()).unwrap_err();
    assert!(err.to_string().contains("§5.3"), "{err}");
}

#[test]
fn ambiguous_sql_columns_are_rejected_not_misscoped() {
    // `capacity` exists in `confroom` only, but `rackrate` is in both
    // confroom and guestroom — an unqualified reference must error.
    let db = sample_database();
    let q = parse_query("SELECT rackrate FROM confroom, guestroom WHERE c_id = r_id").unwrap();
    let err = xvc::rel::eval_query(&db, &q, &Default::default()).unwrap_err();
    assert!(
        matches!(err, xvc::rel::Error::AmbiguousColumn { .. }),
        "{err}"
    );
}
