//! The analyzer as a gate: if `xvc check` reports no errors for a
//! workload, composition and the dynamic `v'(I) = x(v(I))` verification
//! must run panic- and error-free. Randomized stylesheets probe the gate
//! from the stylesheet side; the converse (errors ⇒ compose fails) is
//! deliberately NOT claimed — warnings may degrade, never block.

use proptest::prelude::*;
use xvc::analyze::{check_workload, CheckOptions};
use xvc::core::paper_fixtures::figure1_view;
use xvc::prelude::*;
use xvc_bench::random_stylesheet::{random_stylesheet, StylesheetConfig};
use xvc_bench::workload::{generate, WorkloadConfig};

// Local shim over the builder API: the deprecated free functions are
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

proptest! {
    #![proptest_config(cases(24))]

    /// check-clean ⇒ compose + check_composition succeed.
    #[test]
    fn error_free_report_implies_composable(sheet_seed in 0u64..10_000) {
        let db = generate(&WorkloadConfig::scale(1));
        let view = figure1_view();
        let catalog = db.catalog();
        let stylesheet =
            random_stylesheet(&view, &catalog, sheet_seed, StylesheetConfig::default());

        let report = check_workload(
            Some(&view),
            Some(&stylesheet),
            Some(&catalog),
            &CheckOptions::default(),
        );
        prop_assert!(
            !report.has_errors(),
            "seed {sheet_seed}: generated stylesheets must check clean\n{:?}",
            report.diagnostics
        );

        // The gate's promise: no errors ⇒ the whole pipeline goes through.
        let composed = compose(&view, &stylesheet, &catalog);
        prop_assert!(composed.is_ok(), "seed {sheet_seed}: {:?}", composed.err());
        let composed = composed.unwrap();
        match check_composition(&view, &stylesheet, &composed, &db) {
            Ok(None) => {}
            Ok(Some(div)) => prop_assert!(false, "seed {sheet_seed}: divergence\n{div}"),
            Err(e) => prop_assert!(false, "seed {sheet_seed}: verification error {e}"),
        }
    }

    /// The §4.5 prediction agrees with the measured TVQ size on every
    /// generated workload, not just the hand-written fixtures.
    #[test]
    fn prediction_matches_measured_stats(sheet_seed in 0u64..10_000) {
        let view = figure1_view();
        let db = generate(&WorkloadConfig::scale(1));
        let catalog = db.catalog();
        let stylesheet =
            random_stylesheet(&view, &catalog, sheet_seed, StylesheetConfig::default());
        let report = check_workload(
            Some(&view),
            Some(&stylesheet),
            Some(&catalog),
            &CheckOptions::default(),
        );
        let p = report.prediction.as_ref().expect("acyclic workload");
        let stats = Composer::new(&view, &stylesheet, &catalog)
            .run()
            .expect("composable")
            .stats;
        prop_assert_eq!(p.predicted_tvq_nodes, stats.tvq_nodes, "seed {}", sheet_seed);
    }
}
