//! End-to-end tests of the `xvc` CLI binary: file-based view definitions,
//! DDL, CSV data, composition and execution.

use std::path::PathBuf;
use std::process::Command;

const DDL: &str = "\
CREATE TABLE city (id INT, name TEXT, population INT);
CREATE TABLE sight (sid INT, city_id INT, sname TEXT, fee INT);
";

const VIEW: &str = "\
# cities with their sights
node city $c {
    query: SELECT id, name, population FROM city;
    node sight $s {
        query: SELECT sid, sname, fee FROM sight WHERE city_id = $c.id;
    }
}
";

const XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <guide><xsl:apply-templates select="city[@population&gt;1000000]"/></guide>
  </xsl:template>
  <xsl:template match="city">
    <entry>
      <xsl:value-of select="@name"/>
      <xsl:apply-templates select="sight[@fee=0]"/>
    </entry>
  </xsl:template>
  <xsl:template match="sight">
    <free><xsl:value-of select="@sname"/></free>
  </xsl:template>
</xsl:stylesheet>"#;

const CITY_CSV: &str = "\
id,name,population
1,chicago,2700000
2,galena,3200
3,nyc,8300000
";

const SIGHT_CSV: &str = "\
sid,city_id,sname,fee
10,1,\"The Bean\",0
11,1,Art Institute,25
12,3,Central Park,0
13,3,\"MoMA, Manhattan\",30
";

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("xvc_cli_{name}_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("data")).unwrap();
        std::fs::write(dir.join("schema.sql"), DDL).unwrap();
        std::fs::write(dir.join("guide.view"), VIEW).unwrap();
        std::fs::write(dir.join("guide.xsl"), XSLT).unwrap();
        std::fs::write(dir.join("data/city.csv"), CITY_CSV).unwrap();
        std::fs::write(dir.join("data/sight.csv"), SIGHT_CSV).unwrap();
        Fixture { dir }
    }

    fn run(&self, args: &[&str]) -> (bool, String, String) {
        let (code, stdout, stderr) = self.run_code(args);
        (code == Some(0), stdout, stderr)
    }

    /// Like [`Fixture::run`] but returns the raw exit code, for tests that
    /// distinguish failure (1) from usage errors (2).
    fn run_code(&self, args: &[&str]) -> (Option<i32>, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_xvc"))
            .current_dir(&self.dir)
            .args(args)
            .output()
            .expect("spawn xvc");
        (
            out.status.code(),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn compose_prints_the_stylesheet_view() {
    let f = Fixture::new("compose");
    let (ok, stdout, stderr) = f.run(&[
        "compose",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("<guide>  [literal]"), "{stdout}");
    assert!(stdout.contains("<entry>"), "{stdout}");
    assert!(stdout.contains("population > 1000000"), "{stdout}");
    assert!(stdout.contains("fee = 0"), "{stdout}");
}

#[test]
fn run_produces_verified_output() {
    let f = Fixture::new("run");
    let (ok, stdout, stderr) = f.run(&[
        "run",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
        "--data",
        "data",
    ]);
    assert!(ok, "{stderr}");
    // chicago and nyc pass the population filter; their free sights appear.
    assert!(stdout.contains("name=\"chicago\""), "{stdout}");
    assert!(stdout.contains("name=\"nyc\""), "{stdout}");
    assert!(!stdout.contains("galena"), "{stdout}");
    assert!(stdout.contains("sname=\"The Bean\""), "{stdout}");
    assert!(stdout.contains("sname=\"Central Park\""), "{stdout}");
    assert!(!stdout.contains("MoMA"), "{stdout}");
    assert!(stderr.contains("composed execution"), "{stderr}");

    // The naive path prints the same document.
    let (ok, naive_stdout, _) = f.run(&[
        "run",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
        "--data",
        "data",
        "--naive",
    ]);
    assert!(ok);
    let canon = |s: &str| {
        let d = xvc::xml::parse(s.trim()).unwrap();
        xvc::xml::canonical_string(&d, d.root())
    };
    assert_eq!(canon(&stdout), canon(&naive_stdout));
}

#[test]
fn publish_materializes_the_view() {
    let f = Fixture::new("publish");
    let (ok, stdout, stderr) = f.run(&[
        "publish",
        "--view",
        "guide.view",
        "--ddl",
        "schema.sql",
        "--data",
        "data",
    ]);
    assert!(ok, "{stderr}");
    assert!(
        stdout.contains("<city id=\"2\" name=\"galena\""),
        "{stdout}"
    );
    assert!(stdout.contains("fee=\"25\""), "{stdout}");
    assert!(stderr.contains("loaded 3 rows into city"), "{stderr}");
    assert!(stderr.contains("loaded 4 rows into sight"), "{stderr}");
}

#[test]
fn check_reports_diagnostics_with_codes() {
    let f = Fixture::new("check");
    std::fs::write(
        f.dir.join("flow.xsl"),
        r#"<xsl:stylesheet>
             <xsl:template match="city">
               <xsl:if test="@population &gt; 1"><big/></xsl:if>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    // Flow control is a lowerable warning (XVC002) but the missing root
    // rule is fatal (XVC008): exit 1.
    let (code, stdout, _) = f.run_code(&["check", "--xslt", "flow.xsl"]);
    assert_eq!(code, Some(1), "{stdout}");
    assert!(stdout.contains("warning[XVC002]"), "{stdout}");
    assert!(stdout.contains("error[XVC008]"), "{stdout}");
    assert!(stdout.contains("error"), "{stdout}");

    // guide.xsl only uses predicates (XVC001, composes directly): exit 0.
    let (ok, stdout, _) = f.run(&["check", "--xslt", "guide.xsl"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("warning[XVC001]"), "{stdout}");
    assert!(stdout.contains("--> guide.xsl"), "{stdout}");
    assert!(!stdout.contains("error["), "{stdout}");
}

#[test]
fn check_json_emits_one_object_per_line() {
    let f = Fixture::new("check_json");
    // A view restricting population > 1000000 composed with a stylesheet
    // demanding population < 5: the branch is provably dead (XVC401).
    std::fs::write(
        f.dir.join("dead.view"),
        "\
node city $c {
    query: SELECT id, name, population FROM city WHERE population > 1000000;
}
",
    )
    .unwrap();
    std::fs::write(
        f.dir.join("dead.xsl"),
        r#"<xsl:stylesheet>
  <xsl:template match="/">
    <out><xsl:apply-templates select="city[@population &lt; 5]"/></out>
  </xsl:template>
  <xsl:template match="city"><hit/></xsl:template>
</xsl:stylesheet>"#,
    )
    .unwrap();
    let (ok, stdout, stderr) = f.run(&["check", "--json", "dead.view", "dead.xsl", "schema.sql"]);
    assert!(ok, "{stdout}{stderr}");
    // One JSON object per line, nothing else on stdout.
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(!lines.is_empty(), "{stdout}");
    for line in &lines {
        assert!(
            line.starts_with("{\"code\":\"XVC") && line.ends_with('}'),
            "not a diagnostic object: {line}"
        );
        for key in [
            "\"code\":",
            "\"severity\":",
            "\"stage\":",
            "\"file\":",
            "\"span\":",
            "\"message\":",
            "\"help\":",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    // The dead branch surfaces as XVC401 (warning) plus the prune report.
    let dead = lines
        .iter()
        .find(|l| l.contains("\"code\":\"XVC401\""))
        .unwrap_or_else(|| panic!("no XVC401 line in {stdout}"));
    assert!(dead.contains("\"severity\":\"warning\""), "{dead}");
    assert!(dead.contains("\"stage\":\"composed\""), "{dead}");
    assert!(dead.contains("population"), "{dead}");
    assert!(
        lines.iter().any(|l| l.contains("\"code\":\"XVC407\"")),
        "{stdout}"
    );
    // Spanned stylesheet findings carry the file and a numeric span.
    let spanned = lines
        .iter()
        .find(|l| l.contains("\"file\":\"dead.xsl\""))
        .unwrap_or_else(|| panic!("no stylesheet-file line in {stdout}"));
    assert!(spanned.contains("\"span\":{\"start\":"), "{spanned}");
    // The human summary and prediction stay off stdout in JSON mode.
    assert!(!stdout.contains("check:"), "{stdout}");
}

#[test]
fn check_json_carries_justification_fact_chains() {
    let f = Fixture::new("check_json_just");
    // Same provably-dead workload as above: XVC401 (dead branch) and
    // XVC501 (zero cardinality bound) both fire, each justified by the
    // fact chain that proved the contradiction.
    std::fs::write(
        f.dir.join("dead.view"),
        "\
node city $c {
    query: SELECT id, name, population FROM city WHERE population > 1000000;
}
",
    )
    .unwrap();
    std::fs::write(
        f.dir.join("dead.xsl"),
        r#"<xsl:stylesheet>
  <xsl:template match="/">
    <out><xsl:apply-templates select="city[@population &lt; 5]"/></out>
  </xsl:template>
  <xsl:template match="city"><hit/></xsl:template>
</xsl:stylesheet>"#,
    )
    .unwrap();
    let (ok, stdout, stderr) = f.run(&["check", "--json", "dead.view", "dead.xsl", "schema.sql"]);
    assert!(ok, "{stdout}{stderr}");
    // Every diagnostic object carries a justification array (possibly
    // empty), always the last key.
    for line in stdout.lines() {
        assert!(
            line.contains("\"justification\":[") && line.ends_with("]}"),
            "no justification array in {line}"
        );
    }
    // The XVC401 dead-branch finding and the XVC501 zero-bound finding
    // both justify themselves with the contradicting predicates.
    for code in ["XVC401", "XVC501"] {
        let line = stdout
            .lines()
            .find(|l| l.contains(&format!("\"code\":\"{code}\"")))
            .unwrap_or_else(|| panic!("no {code} line in {stdout}"));
        let just = line
            .split("\"justification\":")
            .nth(1)
            .unwrap_or_else(|| panic!("no justification in {line}"));
        assert!(!just.starts_with("[]"), "empty justification: {line}");
        assert!(just.contains("population"), "{line}");
    }
}

#[test]
fn check_classifies_positional_files() {
    let f = Fixture::new("check_positional");
    // Full workload via positional args: view + stylesheet + catalog.
    let (ok, stdout, stderr) = f.run(&["check", "guide.view", "guide.xsl", "schema.sql"]);
    assert!(ok, "{stdout}{stderr}");
    assert!(stdout.contains("warning[XVC001]"), "{stdout}");
    assert!(!stdout.contains("error["), "{stdout}");
    assert!(stdout.contains("warning"), "{stdout}");
    assert!(stderr.contains("prediction"), "{stderr}");

    // Unclassifiable extension is a usage error: exit 2.
    let (code, _, stderr) = f.run_code(&["check", "guide.txt"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("cannot classify"), "{stderr}");
}

#[test]
fn helpful_errors() {
    let f = Fixture::new("errors");
    let (code, _, stderr) = f.run_code(&["compose", "--view", "guide.view"]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("missing --xslt"), "{stderr}");

    // Misuse (unknown command/flag) exits 2, distinct from failures.
    let (code, _, stderr) = f.run_code(&["frobnicate"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown command"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");

    let (code, _, stderr) = f.run_code(&["compose", "--frobnicate"]);
    assert_eq!(code, Some(2), "{stderr}");
    assert!(stderr.contains("unknown flag"), "{stderr}");

    let (ok, _, stderr) = f.run(&[
        "compose",
        "--view",
        "no_such_file.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(!ok);
    assert!(stderr.contains("no_such_file.view"), "{stderr}");

    let (ok, stdout, _) = f.run(&["--help"]);
    assert!(ok);
    assert!(stdout.contains("usage:"), "{stdout}");
}

#[test]
fn explain_sql_prints_a_plan() {
    let f = Fixture::new("explain_sql");
    let (ok, stdout, stderr) = f.run(&[
        "explain",
        "--sql",
        "SELECT name, sname FROM city, sight WHERE city_id = id",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("scan city"), "{stdout}");
    assert!(
        stdout.contains("hash join sight ON id = city_id"),
        "{stdout}"
    );
    assert!(stdout.contains("project [name, sname]"), "{stdout}");
}

#[test]
fn explain_composed_prints_tag_query_plans() {
    let f = Fixture::new("explain_composed");
    let (ok, stdout, stderr) = f.run(&[
        "explain",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    // One plan per composed tag query, parameterized predicates pushed down.
    assert!(stdout.contains("<entry> tag query:"), "{stdout}");
    assert!(stdout.contains("scan city"), "{stdout}");
    assert!(stdout.contains("pushdown:"), "{stdout}");
}

#[test]
fn explain_sql_justifies_join_strategy_by_cardinality_bound() {
    let f = Fixture::new("explain_bound");
    // With a declared key, pinning it by equality bounds the join prefix
    // to one row and the planner skips the hash build for a filter probe.
    std::fs::write(
        f.dir.join("keyed.sql"),
        "\
CREATE TABLE city (id INT PRIMARY KEY, name TEXT, population INT);
CREATE TABLE sight (sid INT PRIMARY KEY, city_id INT, sname TEXT, fee INT);
",
    )
    .unwrap();
    let (ok, stdout, stderr) = f.run(&[
        "explain",
        "--sql",
        "SELECT s.sname FROM city c, sight s WHERE c.id = 1 AND s.city_id = c.id",
        "--ddl",
        "keyed.sql",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("filter-probe join"), "{stdout}");
    assert!(
        stdout.contains("joined prefix bounded to <= 1 row, hash build skipped"),
        "{stdout}"
    );

    // Without the key declaration the same query keeps the hash join.
    let (ok, stdout, stderr) = f.run(&[
        "explain",
        "--sql",
        "SELECT s.sname FROM city c, sight s WHERE c.id = 1 AND s.city_id = c.id",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("hash join"), "{stdout}");
    assert!(!stdout.contains("filter-probe join"), "{stdout}");
}

#[test]
fn explain_composed_reports_cardinality_bounds() {
    let f = Fixture::new("explain_bounds_workload");
    let (ok, stdout, stderr) = f.run(&[
        "explain",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    // Every composed node reports its statically derived bounds, and
    // root-level nodes carry the single-binding batch bound that lets
    // the publisher skip the shared set-oriented pipeline.
    assert!(stdout.contains("bounds: fan-out"), "{stdout}");
    assert!(stdout.contains("per-document"), "{stdout}");
    assert!(
        stdout.contains("binding bound: <= 1 row per batch"),
        "{stdout}"
    );
}

#[test]
fn stats_reports_pipeline_and_engine_counters() {
    let f = Fixture::new("stats");
    let (ok, stdout, stderr) = f.run(&[
        "stats",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
        "--data",
        "data",
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("composition:"), "{stdout}");
    assert!(stdout.contains("CTG:"), "{stdout}");
    assert!(stdout.contains("duplication factor"), "{stdout}");
    assert!(stdout.contains("publish (composed v'(I)):"), "{stdout}");
    assert!(stdout.contains("tag-query executions"), "{stdout}");
    assert!(stdout.contains("rows scanned"), "{stdout}");

    // Without --data only the composition counters appear.
    let (ok, stdout, _) = f.run(&[
        "stats",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok);
    assert!(stdout.contains("composition:"), "{stdout}");
    assert!(!stdout.contains("engine:"), "{stdout}");
}

#[test]
fn deps_prints_the_dependency_map() {
    let f = Fixture::new("deps");
    let (ok, stdout, stderr) = f.run(&[
        "deps",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    // Inverted map, keyed by (table, column), with roles and safety.
    assert!(stdout.contains("city.*"), "{stdout}");
    assert!(stdout.contains("[insert-monotone]"), "{stdout}");
    // The join key $c.id resolves through the binding ancestor to city.id
    // and is recompute-required.
    assert!(stdout.contains("city.id"), "{stdout}");
    assert!(stdout.contains("join-key"), "{stdout}");
    assert!(stdout.contains("[recompute-required]"), "{stdout}");
    // Every edge is justified.
    assert!(stdout.contains("fact chain:"), "{stdout}");
}

#[test]
fn deps_json_is_one_object_with_edges() {
    let f = Fixture::new("deps_json");
    let (ok, stdout, stderr) = f.run(&[
        "deps",
        "--json",
        "--view",
        "guide.view",
        "--xslt",
        "guide.xsl",
        "--ddl",
        "schema.sql",
    ]);
    assert!(ok, "{stderr}");
    let line = stdout.trim();
    assert!(line.starts_with('{') && line.ends_with('}'), "{stdout}");
    assert!(line.contains("\"recursive\":false"), "{stdout}");
    assert!(line.contains("\"role\":\"join-key\""), "{stdout}");
    assert!(
        line.contains("\"safety\":\"recompute-required\""),
        "{stdout}"
    );
    assert!(line.contains("\"justification\":\"fact chain:"), "{stdout}");
}
