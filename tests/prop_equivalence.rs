//! Property-based checks of the headline theorem: for *randomized*
//! database instances (sizes, selectivities, seeds), the composed view and
//! the naive pipeline agree on every stylesheet in the probe set.

use proptest::prelude::*;
use xvc::core::paper_fixtures::figure1_view;
use xvc::prelude::*;
use xvc::xslt::parse::FIGURE4_XSLT;
use xvc_bench::random_stylesheet::{random_stylesheet, StylesheetConfig};
use xvc_bench::synthetic::{chain_database, chain_stylesheet, chain_view};
use xvc_bench::workload::{generate, WorkloadConfig};

// Local shims over the builder API: the deprecated free functions are
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

fn publish(v: &SchemaTree, db: &Database) -> xvc::view::Result<(Document, PublishStats)> {
    Engine::new(v)
        .session()
        .publish(db)
        .map(|p| (p.document, p.stats))
}

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

fn config_strategy() -> impl Strategy<Value = WorkloadConfig> {
    (
        1usize..3, // metros
        1usize..5, // hotels per metro
        0u8..=10,  // luxury tenths
        0usize..4, // rooms
        0usize..3, // conference rooms
        1usize..3, // dates
        0usize..3, // availability per room
        any::<u64>(),
    )
        .prop_map(
            |(metros, hotels, lux, rooms, confs, dates, avail, seed)| WorkloadConfig {
                metros,
                hotels_per_metro: hotels,
                luxury_fraction: lux as f64 / 10.0,
                rooms_per_hotel: rooms,
                conf_rooms_per_hotel: confs,
                dates,
                avail_per_room: avail,
                seed,
            },
        )
}

fn probe_stylesheets() -> Vec<Stylesheet> {
    [
        FIGURE4_XSLT,
        // Parent-axis zigzag with an existence requirement.
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel/confstat"/></r></xsl:template>
             <xsl:template match="confstat">
               <s><xsl:apply-templates select="../hotel_available/../confroom"/></s>
             </xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
        // Value predicates at two levels.
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel[@pool='yes']"/></r></xsl:template>
             <xsl:template match="hotel">
               <h><xsl:apply-templates select="confroom[@capacity&gt;300]"/></h>
             </xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
    ]
    .iter()
    .map(|s| parse_stylesheet(s).expect("static stylesheet"))
    .collect()
}

proptest! {
    #![proptest_config(cases(24))]

    /// v'(I) = x(v(I)) over randomized hotel instances.
    #[test]
    fn composed_equals_naive_on_random_instances(cfg in config_strategy()) {
        let db = generate(&cfg);
        let view = figure1_view();
        for stylesheet in probe_stylesheets() {
            let composed = compose(&view, &stylesheet, &db.catalog())
                .expect("probe stylesheets are composable");
            let (full, _) = publish(&view, &db).expect("publish v");
            let expected = process(&stylesheet, &full).expect("engine");
            let (actual, _) = publish(&composed, &db).expect("publish v'");
            prop_assert!(
                documents_equal_unordered(&expected, &actual),
                "cfg {:?}\nexpected:\n{}\nactual:\n{}",
                cfg,
                expected.to_pretty_xml(),
                actual.to_pretty_xml()
            );
        }
    }

    /// The same property over randomized chain views (structure sweep
    /// instead of data sweep).
    #[test]
    fn composed_equals_naive_on_random_chains(
        depth in 1usize..5,
        fanout in 0usize..4,
    ) {
        let v = chain_view(depth);
        let x = chain_stylesheet(depth);
        let db = chain_database(depth, fanout);
        let composed = compose(&v, &x, &db.catalog()).expect("chains compose");
        let (full, _) = publish(&v, &db).expect("publish v");
        let expected = process(&x, &full).expect("engine");
        let (actual, _) = publish(&composed, &db).expect("publish v'");
        prop_assert!(
            documents_equal_unordered(&expected, &actual),
            "depth {depth} fanout {fanout}\nexpected:\n{}\nactual:\n{}",
            expected.to_pretty_xml(),
            actual.to_pretty_xml()
        );
    }

    /// Randomized stylesheets × randomized databases: the strongest form
    /// of the headline property this suite checks.
    #[test]
    fn random_stylesheet_on_random_instance(
        cfg in config_strategy(),
        sheet_seed in 0u64..10_000,
    ) {
        let db = generate(&cfg);
        let view = figure1_view();
        let catalog = db.catalog();
        let stylesheet =
            random_stylesheet(&view, &catalog, sheet_seed, StylesheetConfig::default());
        let composed = compose(&view, &stylesheet, &catalog)
            .expect("generated stylesheets are composable");
        let (full, _) = publish(&view, &db).expect("publish v");
        let expected = process(&stylesheet, &full).expect("engine");
        let (actual, _) = publish(&composed, &db).expect("publish v'");
        prop_assert!(
            documents_equal_unordered(&expected, &actual),
            "sheet seed {sheet_seed}, cfg {:?}\n{}\nexpected:\n{}\nactual:\n{}",
            cfg,
            stylesheet.to_xslt(),
            expected.to_pretty_xml(),
            actual.to_pretty_xml()
        );
    }

    /// The composed view always materializes at most as many elements as
    /// the naive strategy (the paper's "no unnecessary nodes" claim, in
    /// inequality form — equality holds when the stylesheet touches
    /// everything).
    #[test]
    fn composed_never_materializes_more(cfg in config_strategy()) {
        let db = generate(&cfg);
        let view = figure1_view();
        let stylesheet = parse_stylesheet(FIGURE4_XSLT).expect("fixture");
        let composed = compose(&view, &stylesheet, &db.catalog()).expect("composable");
        let (full, naive) = publish(&view, &db).expect("publish v");
        let out = process(&stylesheet, &full).expect("engine");
        let (_, comp) = publish(&composed, &db).expect("publish v'");
        // Composed materializes exactly the result document's elements.
        prop_assert_eq!(comp.elements, out.element_count());
        prop_assert!(comp.elements <= naive.elements + out.element_count());
    }
}

/// A stylesheet whose `hotel` branch contradicts the view's
/// `starrating > 4` restriction: the subtree is provably dead, so the
/// §4.2.1 prune pass must remove it without changing the result.
const DEAD_BRANCH_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <out>
      <xsl:apply-templates select="metro"/>
    </out>
  </xsl:template>
  <xsl:template match="metro">
    <m>
      <xsl:apply-templates select="hotel[@starrating &lt; 3]"/>
      <xsl:apply-templates select="confstat"/>
    </m>
  </xsl:template>
  <xsl:template match="hotel">
    <h><xsl:apply-templates select="confroom"/></h>
  </xsl:template>
  <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
  <xsl:template match="confstat"><s/></xsl:template>
</xsl:stylesheet>"#;

proptest! {
    #![proptest_config(cases(200))]

    /// §4.2.1 prune soundness: composing with dead-branch pruning (and the
    /// Kim-style optimizer) on still satisfies v'(I) = x(v(I)), checked by
    /// the divergence reporter over randomized instances and stylesheets.
    #[test]
    fn prune_and_optimize_preserve_equivalence(
        cfg in config_strategy(),
        sheet_seed in 0u64..10_000,
    ) {
        let db = generate(&cfg);
        let view = figure1_view();
        let catalog = db.catalog();
        let options = ComposeOptions {
            optimize: true,
            prune: true,
            ..ComposeOptions::default()
        };
        let stylesheet =
            random_stylesheet(&view, &catalog, sheet_seed, StylesheetConfig::default());
        let composed = Composer::new(&view, &stylesheet, &catalog)
            .with_options(options)
            .run()
            .expect("generated stylesheets compose with prune+optimize")
            .view;
        let divergence = check_composition(&view, &stylesheet, &composed, &db)
            .expect("both pipelines evaluate");
        prop_assert!(
            divergence.is_none(),
            "sheet seed {sheet_seed}, cfg {:?}\n{}\n{}",
            cfg,
            stylesheet.to_xslt(),
            divergence.unwrap()
        );
    }

    /// Pruning a provably-dead branch removes TVQ nodes (strictly fewer
    /// than the unpruned composition) while the result stays equivalent.
    #[test]
    fn prune_removes_dead_branch_and_preserves_result(cfg in config_strategy()) {
        let db = generate(&cfg);
        let view = figure1_view();
        let catalog = db.catalog();
        let stylesheet = parse_stylesheet(DEAD_BRANCH_XSLT).expect("fixture");
        let plain = ComposeOptions::default();
        let pruning = ComposeOptions { prune: true, ..plain };
        let before = Composer::new(&view, &stylesheet, &catalog)
            .with_options(plain)
            .run()
            .expect("composable")
            .stats;
        let pruned = Composer::new(&view, &stylesheet, &catalog)
            .with_options(pruning)
            .run()
            .expect("composable");
        let (composed, after) = (pruned.view, pruned.stats);
        prop_assert!(after.tvq_nodes_pruned > 0, "{after:?}");
        prop_assert!(
            after.tvq_nodes < before.tvq_nodes,
            "pruned {:?} vs unpruned {:?}",
            after,
            before
        );
        prop_assert!(after.composed_queries <= before.composed_queries);
        let divergence = check_composition(&view, &stylesheet, &composed, &db)
            .expect("both pipelines evaluate");
        prop_assert!(divergence.is_none(), "cfg {cfg:?}\n{}", divergence.unwrap());
    }

    /// The Kim-style optimizer is idempotent: re-running it over every tag
    /// query of an already-optimized composed view changes nothing.
    #[test]
    fn optimize_is_idempotent(
        cfg in config_strategy(),
        sheet_seed in 0u64..10_000,
    ) {
        let db = generate(&cfg);
        let view = figure1_view();
        let catalog = db.catalog();
        let options = ComposeOptions {
            optimize: true,
            ..ComposeOptions::default()
        };
        let stylesheet =
            random_stylesheet(&view, &catalog, sheet_seed, StylesheetConfig::default());
        let composed = Composer::new(&view, &stylesheet, &catalog)
            .with_options(options)
            .run()
            .expect("generated stylesheets compose with optimize")
            .view;
        for vid in composed.node_ids() {
            let Some(q) = composed.node(vid).and_then(|n| n.query.as_ref()) else {
                continue;
            };
            let mut again = q.clone();
            xvc::rel::optimize(&mut again, &catalog).expect("optimize re-run");
            prop_assert_eq!(
                again.to_sql_inline(),
                q.to_sql_inline(),
                "optimize not idempotent (sheet seed {})",
                sheet_seed
            );
        }
    }
}

/// Opt-in deep fuzz: 2000 generated stylesheets against a mid-size
/// instance, with both the default and a deeper/wider generator config.
/// Run with `cargo test --release -- --ignored deep_fuzz`.
#[test]
#[ignore = "slow; run explicitly for heavy offline validation"]
fn deep_fuzz_2000_stylesheets() {
    let db = generate(&WorkloadConfig::scale(2));
    let view = figure1_view();
    let catalog = db.catalog();
    let (full, _) = publish(&view, &db).expect("publish v");
    let configs = [
        StylesheetConfig::default(),
        StylesheetConfig {
            max_depth: 5,
            max_fanout: 3,
            zigzag_prob: 0.4,
            descendant_prob: 0.35,
            predicate_prob: 0.5,
            ..StylesheetConfig::default()
        },
    ];
    for (ci, cfg) in configs.iter().enumerate() {
        for seed in 0..1000u64 {
            let stylesheet = random_stylesheet(&view, &catalog, seed, *cfg);
            let composed = compose(&view, &stylesheet, &catalog)
                .unwrap_or_else(|e| panic!("cfg {ci} seed {seed}: compose: {e}"));
            let expected = process(&stylesheet, &full).expect("engine");
            let (actual, _) = publish(&composed, &db).expect("publish v'");
            assert!(
                documents_equal_unordered(&expected, &actual),
                "cfg {ci} seed {seed}:\n{}",
                stylesheet.to_xslt()
            );
        }
    }
}
