//! Composition closure: the output of `compose` is itself a schema-tree
//! query, so a *second* stylesheet can be composed with it. Verifies
//!
//! ```text
//! compose(compose(v, x1), x2)(I)  =  x2(x1(v(I)))
//! ```
//!
//! This exercises re-composition through literal skeleton nodes (the first
//! composition's `<HTML>/<BODY>`-style output), which the paper never
//! considers but which falls out of the algorithm once literal nodes are
//! transparent to chains.

use xvc::core::paper_fixtures::{figure1_view, sample_database};
use xvc::prelude::*;
use xvc::xslt::parse::FIGURE4_XSLT;

// Local shims over the builder API: the deprecated free functions are
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

fn publish(v: &SchemaTree, db: &Database) -> xvc::view::Result<(Document, PublishStats)> {
    Engine::new(v)
        .session()
        .publish(db)
        .map(|p| (p.document, p.stats))
}

fn chain_check(x1_src: &str, x2_src: &str) {
    let v = figure1_view();
    let db = sample_database();
    let x1 = parse_stylesheet(x1_src).unwrap();
    let x2 = parse_stylesheet(x2_src).unwrap();

    let v1 = compose(&v, &x1, &db.catalog()).expect("first composition");
    let v2 = compose(&v1, &x2, &db.catalog()).expect("second composition");

    // Reference: run both stylesheets through the engine.
    let (full, _) = publish(&v, &db).unwrap();
    let step1 = process(&x1, &full).unwrap();
    let expected = process(&x2, &step1).unwrap();

    let (actual, _) = publish(&v2, &db).unwrap();
    assert!(
        documents_equal_unordered(&expected, &actual),
        "expected:\n{}\nactual:\n{}\nv2:\n{}",
        expected.to_pretty_xml(),
        actual.to_pretty_xml(),
        v2.render()
    );
}

#[test]
fn figure4_then_extraction() {
    // Second stylesheet digs the confroom copies back out of the HTML
    // skeleton the first composition produced.
    chain_check(
        FIGURE4_XSLT,
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <rooms><xsl:apply-templates select="HTML/BODY/result_metro/result_confstat/confroom"/></rooms>
             </xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
    );
}

#[test]
fn figure4_then_predicate_filter() {
    chain_check(
        FIGURE4_XSLT,
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <big><xsl:apply-templates select="HTML/BODY/result_metro/result_confstat/confroom[@capacity&gt;200]"/></big>
             </xsl:template>
             <xsl:template match="confroom"><hall><xsl:value-of select="@capacity"/></hall></xsl:template>
           </xsl:stylesheet>"#,
    );
}

#[test]
fn skeleton_only_second_pass() {
    // x2 only touches literal skeleton nodes of v1.
    chain_check(
        FIGURE4_XSLT,
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <shell><xsl:apply-templates select="HTML/BODY"/></shell>
             </xsl:template>
             <xsl:template match="BODY"><body_seen/></xsl:template>
           </xsl:stylesheet>"#,
    );
}

#[test]
fn optimized_first_pass_still_chains() {
    // The Kim-style optimizer rewrites v1's queries; the second
    // composition must still work and agree with the engine.
    let v = figure1_view();
    let db = sample_database();
    let x1 = parse_stylesheet(FIGURE4_XSLT).unwrap();
    let x2 = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <rooms><xsl:apply-templates select="HTML/BODY/result_metro/result_confstat/confroom"/></rooms>
             </xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let v1 = Composer::new(&v, &x1, &db.catalog())
        .optimize(true)
        .run()
        .unwrap()
        .view;
    let v2 = compose(&v1, &x2, &db.catalog()).unwrap();
    let (full, _) = publish(&v, &db).unwrap();
    let expected = process(&x2, &process(&x1, &full).unwrap()).unwrap();
    let (actual, _) = publish(&v2, &db).unwrap();
    assert!(
        documents_equal_unordered(&expected, &actual),
        "expected:\n{}\nactual:\n{}",
        expected.to_pretty_xml(),
        actual.to_pretty_xml()
    );
}

#[test]
fn triple_composition() {
    let v = figure1_view();
    let db = sample_database();
    let x1 = parse_stylesheet(FIGURE4_XSLT).unwrap();
    let x2 = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <pass2><xsl:apply-templates select="HTML/BODY/result_metro"/></pass2>
             </xsl:template>
             <xsl:template match="result_metro">
               <m2><xsl:apply-templates select="result_confstat/confroom"/></m2>
             </xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let x3 = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/">
               <pass3><xsl:apply-templates select="pass2/m2/confroom"/></pass3>
             </xsl:template>
             <xsl:template match="confroom"><final_room/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();

    let v1 = compose(&v, &x1, &db.catalog()).unwrap();
    let v2 = compose(&v1, &x2, &db.catalog()).unwrap();
    let v3 = compose(&v2, &x3, &db.catalog()).unwrap();

    let (full, _) = publish(&v, &db).unwrap();
    let expected = process(&x3, &process(&x2, &process(&x1, &full).unwrap()).unwrap()).unwrap();
    let (actual, _) = publish(&v3, &db).unwrap();
    assert!(
        documents_equal_unordered(&expected, &actual),
        "expected:\n{}\nactual:\n{}",
        expected.to_pretty_xml(),
        actual.to_pretty_xml()
    );
}
