//! The headline theorem, end to end across crates:
//! for every database instance `I`, `v'(I) = x(v(I))` (unordered).
//!
//! These integration tests exercise the full pipeline — SQL parsing,
//! schema-tree publishing, the XSLT engine, the composition algorithm and
//! the composed-query evaluation — over a library of stylesheets and both
//! hand-written and generated database instances.

use xvc::core::paper_fixtures::{figure1_view, sample_database, FIGURE15_XSLT, FIGURE17_XSLT};
use xvc::prelude::*;
use xvc::xslt::parse::FIGURE4_XSLT;
use xvc_bench::workload::{generate, WorkloadConfig};

// Local shims over the builder API: the deprecated free functions are
// exercised only by the dedicated compat tests.
fn compose(v: &SchemaTree, x: &Stylesheet, c: &Catalog) -> xvc::core::Result<SchemaTree> {
    Composer::new(v, x, c).run().map(|c| c.view)
}

fn publish(v: &SchemaTree, db: &Database) -> xvc::view::Result<(Document, PublishStats)> {
    Engine::new(v)
        .session()
        .publish(db)
        .map(|p| (p.document, p.stats))
}

/// A library of composable stylesheets over the Figure 1 view. Each entry
/// is (name, xslt, needs_rewrites).
fn stylesheet_library() -> Vec<(&'static str, String, bool)> {
    let mut lib: Vec<(&'static str, String, bool)> = vec![
        ("figure4", FIGURE4_XSLT.to_owned(), false),
        ("figure15", FIGURE15_XSLT.to_owned(), false),
        ("figure17", FIGURE17_XSLT.to_owned(), false),
        (
            "single_level",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
                 <xsl:template match="metro"><m><xsl:value-of select="@metroname"/></m></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "deep_chain",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
                 <xsl:template match="metro"><m><xsl:apply-templates select="hotel"/></m></xsl:template>
                 <xsl:template match="hotel"><h><xsl:apply-templates select="hotel_available"/></h></xsl:template>
                 <xsl:template match="hotel_available"><a><xsl:apply-templates select="metro_available"/></a></xsl:template>
                 <xsl:template match="metro_available"><xsl:value-of select="."/></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "sibling_branches",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
                 <xsl:template match="metro">
                   <m>
                     <xsl:apply-templates select="confstat" mode="top"/>
                     <xsl:apply-templates select="hotel/confstat" mode="inner"/>
                   </m>
                 </xsl:template>
                 <xsl:template match="confstat" mode="top"><metro_stat><xsl:value-of select="@sum"/></metro_stat></xsl:template>
                 <xsl:template match="confstat" mode="inner"><hotel_stat><xsl:value-of select="@sum"/></hotel_stat></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "parent_axis_zigzag",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel/confroom"/></r></xsl:template>
                 <xsl:template match="confroom">
                   <pair>
                     <xsl:apply-templates select="../confstat" mode="stat"/>
                   </pair>
                 </xsl:template>
                 <xsl:template match="confstat" mode="stat"><xsl:value-of select="."/></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "predicates_on_values",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel[@pool='yes']"/></r></xsl:template>
                 <xsl:template match="hotel">
                   <h><xsl:apply-templates select="confroom[@capacity&gt;200]"/></h>
                 </xsl:template>
                 <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "existence_predicates",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel[hotel_available]"/></r></xsl:template>
                 <xsl:template match="hotel"><has_avail><xsl:value-of select="@hotelname"/></has_avail></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "flow_control_mix",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel"/></r></xsl:template>
                 <xsl:template match="hotel">
                   <h>
                     <xsl:if test="@gym='yes'"><gym/></xsl:if>
                     <xsl:choose>
                       <xsl:when test="@pool='yes'"><pool/></xsl:when>
                       <xsl:otherwise><dry/></xsl:otherwise>
                     </xsl:choose>
                   </h>
                 </xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            true,
        ),
        (
            "copy_of_subtree",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
                 <xsl:template match="metro"><xsl:copy-of select="."/></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
        (
            "wildcard_match",
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro/hotel/confstat"/></r></xsl:template>
                 <xsl:template match="*"><any/></xsl:template>
               </xsl:stylesheet>"#
                .to_owned(),
            false,
        ),
    ];
    lib.push((
        "general_value_of",
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
             <xsl:template match="metro"><m><xsl:value-of select="hotel/confstat"/></m></xsl:template>
           </xsl:stylesheet>"#
            .to_owned(),
        true,
    ));
    lib
}

fn check(name: &str, xslt: &str, needs_rewrites: bool, db: &Database) {
    let view = figure1_view();
    let stylesheet = parse_stylesheet(xslt).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
    let composed = Composer::new(&view, &stylesheet, &db.catalog())
        .rewrites(needs_rewrites)
        .run()
        .unwrap_or_else(|e| panic!("{name}: compose: {e}"))
        .view;
    let (full, _) = publish(&view, db).unwrap_or_else(|e| panic!("{name}: publish v: {e}"));
    let expected = process(&stylesheet, &full).unwrap_or_else(|e| panic!("{name}: engine: {e}"));
    // The composed side runs the PR's headline path: prepared plans plus
    // four worker threads for the root-level siblings.
    let actual = Engine::new(&composed)
        .parallel(4)
        .session()
        .publish(db)
        .unwrap_or_else(|e| panic!("{name}: publish v': {e}"))
        .document;
    assert!(
        documents_equal_unordered(&expected, &actual),
        "{name}: v'(I) != x(v(I))\nexpected:\n{}\nactual:\n{}",
        expected.to_pretty_xml(),
        actual.to_pretty_xml()
    );
}

#[test]
fn library_equivalence_on_sample_database() {
    let db = sample_database();
    for (name, xslt, rewrites) in stylesheet_library() {
        check(name, &xslt, rewrites, &db);
    }
}

#[test]
fn library_equivalence_on_generated_scale_1() {
    let db = generate(&WorkloadConfig::scale(1));
    for (name, xslt, rewrites) in stylesheet_library() {
        check(name, &xslt, rewrites, &db);
    }
}

#[test]
fn library_equivalence_on_generated_scale_3_low_selectivity() {
    let db = generate(&WorkloadConfig::scale(3).with_luxury_fraction(0.2));
    for (name, xslt, rewrites) in stylesheet_library() {
        check(name, &xslt, rewrites, &db);
    }
}

#[test]
fn equivalence_on_empty_database() {
    // Every query returns nothing; both sides must produce the same
    // skeleton-only documents.
    let db = xvc::core::paper_fixtures::figure2_database();
    for (name, xslt, rewrites) in stylesheet_library() {
        check(name, &xslt, rewrites, &db);
    }
}

#[test]
fn optimized_composition_is_equivalent() {
    // The Kim-style simplification pass (ComposeOptions::optimize) is
    // semantics-preserving over the whole stylesheet library.
    let db = sample_database();
    let view = figure1_view();
    for (name, xslt, rewrites) in stylesheet_library() {
        let stylesheet = parse_stylesheet(&xslt).unwrap();
        let lowered;
        let stylesheet = if rewrites {
            lowered = xvc::xslt::rewrite::lower_to_basic(&stylesheet).unwrap();
            &lowered
        } else {
            &stylesheet
        };
        let composed = Composer::new(&view, stylesheet, &db.catalog())
            .optimize(true)
            .run()
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .view;
        let (full, _) = publish(&view, &db).unwrap();
        let expected = process(stylesheet, &full).unwrap();
        let (actual, _) = publish(&composed, &db).unwrap();
        assert!(
            documents_equal_unordered(&expected, &actual),
            "{name} (optimized):\nexpected:\n{}\nactual:\n{}\n{}",
            expected.to_pretty_xml(),
            actual.to_pretty_xml(),
            composed.render()
        );
    }
}

#[test]
fn optimizer_keeps_semantic_structures_and_merges_trivial_ones() {
    let db = sample_database();
    let view = figure1_view();
    let stylesheet = parse_stylesheet(FIGURE4_XSLT).unwrap();
    let composed = Composer::new(&view, &stylesheet, &db.catalog())
        .optimize(true)
        .run()
        .unwrap()
        .view;
    let r = composed.render();
    // The preserved OUTER derived table in Qs_new must stay — it carries
    // the empty-group semantics; Qc_new's EXISTS must stay too. (For the
    // paper's composition nothing is trivially mergeable.)
    assert!(r.contains("OUTER ("), "{r}");
    assert!(r.contains("EXISTS ("), "{r}");

    // A level-skipping select over SELECT*-shaped queries produces a
    // mergeable derived table, and the optimizer folds it into a scan.
    let mut skip_view = SchemaTree::new();
    let hotel = skip_view
        .add_root_node(ViewNode::new(
            1,
            "hotel",
            "h",
            parse_query("SELECT * FROM hotel WHERE starrating > 2").unwrap(),
        ))
        .unwrap();
    skip_view
        .add_child(
            hotel,
            ViewNode::new(
                2,
                "confroom",
                "c",
                parse_query("SELECT * FROM confroom WHERE chotel_id = $h.hotelid").unwrap(),
            ),
        )
        .unwrap();
    let x = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="hotel/confroom"/></r></xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let plain = compose(&skip_view, &x, &db.catalog()).unwrap();
    let optimized = Composer::new(&skip_view, &x, &db.catalog())
        .optimize(true)
        .run()
        .unwrap()
        .view;
    assert!(plain.render().contains(") AS TEMP"), "{}", plain.render());
    assert!(
        optimized.render().contains("hotel AS TEMP"),
        "{}",
        optimized.render()
    );
    // And both agree with the engine.
    let (full, _) = publish(&skip_view, &db).unwrap();
    let expected = process(&x, &full).unwrap();
    for v in [&plain, &optimized] {
        let (actual, _) = publish(v, &db).unwrap();
        assert!(documents_equal_unordered(&expected, &actual));
    }
}

#[test]
fn composition_is_idempotent_per_input() {
    // Composing twice yields the same stylesheet view (determinism).
    let view = figure1_view();
    let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
    let db = sample_database();
    let a = compose(&view, &x, &db.catalog()).unwrap();
    let b = compose(&view, &x, &db.catalog()).unwrap();
    assert_eq!(a.render(), b.render());
}
