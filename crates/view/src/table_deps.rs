//! Conservative table → view-node dependency map over a [`SchemaTree`].
//!
//! `Session::republish_delta` needs to know, given a set of mutated base
//! tables, which view nodes could possibly publish differently. This map
//! answers that *conservatively*: a node depends on every table its tag
//! query or emission guard mentions anywhere (FROM items, derived tables,
//! `EXISTS` subqueries). Nodes that only consume an ancestor's binding are
//! covered structurally — the delta path always re-executes whole subtrees
//! below an affected node, so transitive binding flow needs no edges here.
//!
//! The *fine-grained* analysis — per-column roles, update-safety classes,
//! fact chains — lives in `xvc_core::deps`, which can see the composed TVQ;
//! this module is deliberately the small, dependency-free core the
//! publisher itself can trust (`xvc_core` depends on this crate, not the
//! other way around).

use std::collections::{BTreeMap, BTreeSet};

use xvc_rel::{ScalarExpr, SelectQuery, TableRef};

use crate::schema_tree::{SchemaTree, ViewNodeId};

/// Which base tables each view node reads (conservatively).
#[derive(Debug, Clone, Default)]
pub struct TableDeps {
    /// node arena index → tables its tag query / guard mentions.
    per_node: BTreeMap<usize, BTreeSet<String>>,
}

impl TableDeps {
    /// Walks every node's tag query and guard, collecting mentioned tables.
    pub fn analyze(tree: &SchemaTree) -> TableDeps {
        let mut per_node = BTreeMap::new();
        for vid in tree.node_ids() {
            let node = tree.node(vid).expect("non-root id");
            let mut tables = BTreeSet::new();
            if let Some(q) = &node.query {
                collect_query_tables(q, &mut tables);
            }
            if let Some(g) = &node.guard {
                collect_expr_tables(g, &mut tables);
            }
            per_node.insert(vid.index(), tables);
        }
        TableDeps { per_node }
    }

    /// The tables a node reads.
    pub fn tables_of(&self, vid: ViewNodeId) -> Option<&BTreeSet<String>> {
        self.per_node.get(&vid.index())
    }

    /// Node indexes (ascending) whose queries or guards mention any of
    /// `tables`.
    pub fn affected_by(&self, tables: &[&str]) -> BTreeSet<usize> {
        self.per_node
            .iter()
            .filter(|(_, deps)| tables.iter().any(|t| deps.contains(*t)))
            .map(|(&idx, _)| idx)
            .collect()
    }

    /// Every table read by at least one node.
    pub fn tables_read(&self) -> BTreeSet<&str> {
        self.per_node
            .values()
            .flat_map(|s| s.iter().map(String::as_str))
            .collect()
    }
}

/// Collects every table name a query mentions: named FROM items, derived
/// tables, and `EXISTS` subqueries in any clause.
pub(crate) fn collect_query_tables(q: &SelectQuery, out: &mut BTreeSet<String>) {
    for item in &q.from {
        match item {
            TableRef::Named { name, .. } => {
                out.insert(name.clone());
            }
            TableRef::Derived { query, .. } => collect_query_tables(query, out),
        }
    }
    for item in &q.select {
        if let xvc_rel::SelectItem::Expr { expr, .. } = item {
            collect_expr_tables(expr, out);
        }
    }
    if let Some(w) = &q.where_clause {
        collect_expr_tables(w, out);
    }
    for e in &q.group_by {
        collect_expr_tables(e, out);
    }
    if let Some(h) = &q.having {
        collect_expr_tables(h, out);
    }
}

/// Collects table names from `EXISTS` subqueries nested in a scalar
/// expression (guards and predicates).
pub(crate) fn collect_expr_tables(e: &ScalarExpr, out: &mut BTreeSet<String>) {
    match e {
        ScalarExpr::Binary { lhs, rhs, .. } => {
            collect_expr_tables(lhs, out);
            collect_expr_tables(rhs, out);
        }
        ScalarExpr::Not(inner) | ScalarExpr::IsNull(inner) => collect_expr_tables(inner, out),
        ScalarExpr::Exists(q) => collect_query_tables(q, out),
        ScalarExpr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_expr_tables(a, out);
            }
        }
        ScalarExpr::Column { .. } | ScalarExpr::Param { .. } | ScalarExpr::Literal(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_tree::ViewNode;
    use xvc_rel::parse_query;

    fn tree() -> SchemaTree {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM metroarea").unwrap(),
            ))
            .unwrap();
        t.add_child(
            metro,
            ViewNode::new(
                2,
                "hotel",
                "h",
                parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap(),
            ),
        )
        .unwrap();
        t.add_child(metro, ViewNode::literal(3, "badge")).unwrap();
        t
    }

    #[test]
    fn maps_tables_to_nodes() {
        let t = tree();
        let deps = TableDeps::analyze(&t);
        let metro = t.find_by_paper_id(1).unwrap();
        let hotel = t.find_by_paper_id(2).unwrap();
        let badge = t.find_by_paper_id(3).unwrap();
        assert!(deps.tables_of(metro).unwrap().contains("metroarea"));
        assert!(deps.tables_of(hotel).unwrap().contains("hotel"));
        assert!(deps.tables_of(badge).unwrap().is_empty());
        assert_eq!(
            deps.affected_by(&["hotel"]),
            BTreeSet::from([hotel.index()])
        );
        assert!(deps.affected_by(&["nothing"]).is_empty());
        assert_eq!(deps.tables_read(), BTreeSet::from(["metroarea", "hotel"]));
    }

    #[test]
    fn sees_through_exists_guards_and_derived_tables() {
        use xvc_rel::{BinOp, ScalarExpr};
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM (SELECT metroid FROM metroarea) AS d").unwrap(),
            ))
            .unwrap();
        let mut guarded = ViewNode::literal(2, "has_hotel");
        guarded.guard = Some(ScalarExpr::binary(
            BinOp::And,
            ScalarExpr::Exists(Box::new(
                parse_query("SELECT 1 FROM hotel WHERE metro_id=$m.metroid").unwrap(),
            )),
            ScalarExpr::int(1),
        ));
        t.add_child(metro, guarded).unwrap();
        let deps = TableDeps::analyze(&t);
        let m = t.find_by_paper_id(1).unwrap();
        let g = t.find_by_paper_id(2).unwrap();
        assert!(deps.tables_of(m).unwrap().contains("metroarea"));
        assert!(deps.tables_of(g).unwrap().contains("hotel"));
    }
}
