//! # `xvc-view` — XML-publishing middleware (schema-tree view queries)
//!
//! Implements Definition 1 of the paper: a *schema-tree query* `v` is a tree
//! of nodes, each carrying a unique id, an XML tag, a binding variable, and
//! a parameterized SQL *tag query*. Evaluating `v` against a relational
//! database instance `I` produces an XML document `v(I)`: each tuple
//! returned by a node's tag query becomes an element bearing the node's
//! tag, with the tuple's columns as XML attributes; the node's binding
//! variable ranges over those tuples and parameterizes the tag queries of
//! descendant nodes. A unique document root is implied (§2.1).
//!
//! The format is adapted from ROLEX \[2, 3\], itself adapted from the
//! intermediate query representation of `SilkRoute` — the paper's composition
//! algorithm "does not rely on any particular features of ROLEX".
//!
//! Publishing tracks [`PublishStats`] (elements materialized, tuples
//! fetched, queries executed) — the currency of the paper's efficiency
//! argument: the composed stylesheet view "does not generate the
//! unnecessary nodes".

#![warn(missing_docs)]
// Curated clippy::pedantic subset shared with `xvc-rel` / `xvc-analyze`
// (kept clean under `-D warnings` in ci.sh).
#![warn(
    clippy::doc_markdown,
    clippy::explicit_iter_loop,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::match_same_arms,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

pub mod bounds;
pub mod display;
pub mod engine;
pub mod error;
pub mod parse;
pub mod publish;
pub mod schema_tree;
pub mod table_deps;

pub use bounds::{analyze_view_bounds, NodeBounds, ViewBounds};
pub use engine::{Engine, EngineTotals, Session, Streamed};
pub use error::{Error, Result};
pub use parse::parse_view;
pub use publish::{PublishStats, PublishTrace, Published, SpliceEntry, SpliceIndex, TraceEntry};
pub use schema_tree::{AttrProjection, SchemaTree, ViewNode, ViewNodeId};
pub use table_deps::TableDeps;
