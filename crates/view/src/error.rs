//! Error type for schema-tree construction, validation and publishing.

use std::fmt;

use xvc_xml::Span;

/// Result alias used throughout `xvc-view`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by schema-tree validation and publishing.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Two view nodes share the same paper-level id.
    DuplicateId {
        /// The repeated id.
        id: u32,
        /// Span of the second occurrence's tag query, when parsed from text.
        span: Option<Span>,
    },
    /// Two view nodes share the same binding variable.
    DuplicateBindingVariable {
        /// The repeated binding-variable name.
        bv: String,
        /// Span of the second occurrence's tag query, when parsed from text.
        span: Option<Span>,
    },
    /// A tag query references a binding variable that no strict ancestor
    /// defines (Definition 1: parameters must be binding variables of
    /// ancestor nodes).
    UnboundViewParameter {
        /// Id of the offending node.
        node_id: u32,
        /// The unbound binding-variable name.
        var: String,
        /// Span of the offending node's tag query, when parsed from text.
        span: Option<Span>,
    },
    /// A node tag is not a valid XML name.
    InvalidTag {
        /// The offending tag.
        tag: String,
    },
    /// Syntax error in a textual view definition.
    ViewSyntax {
        /// Human-readable explanation.
        reason: String,
        /// Byte-offset span of the offending region of the source text.
        span: Option<Span>,
    },
    /// Error from the relational engine while running a tag query.
    Rel(
        /// The underlying error.
        xvc_rel::Error,
    ),
    /// The output sink of a streaming publish
    /// ([`crate::Session::publish_to`]) failed mid-write. The document is
    /// truncated; engine-side state (plan cache, totals) is unaffected.
    ///
    /// Stores the [`std::io::ErrorKind`] and rendered message instead of
    /// the [`std::io::Error`] itself so `Error` stays `Clone + PartialEq`.
    Io {
        /// Kind of the underlying I/O error.
        kind: std::io::ErrorKind,
        /// Rendered message of the underlying I/O error.
        message: String,
    },
}

impl Error {
    /// Byte-offset span into the view-definition source, for errors
    /// produced while parsing or validating a textual view definition.
    pub fn span(&self) -> Option<Span> {
        match self {
            Error::DuplicateId { span, .. }
            | Error::DuplicateBindingVariable { span, .. }
            | Error::UnboundViewParameter { span, .. }
            | Error::ViewSyntax { span, .. } => *span,
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DuplicateId { id, .. } => write!(f, "duplicate view-node id {id}"),
            Error::DuplicateBindingVariable { bv, .. } => {
                write!(f, "duplicate binding variable ${bv}")
            }
            Error::UnboundViewParameter { node_id, var, .. } => write!(
                f,
                "tag query of node {node_id} references ${var}, which no ancestor binds"
            ),
            Error::InvalidTag { tag } => write!(f, "invalid XML tag {tag:?}"),
            Error::ViewSyntax { reason, .. } => write!(f, "view definition: {reason}"),
            Error::Rel(e) => write!(f, "relational error: {e}"),
            Error::Io { message, .. } => write!(f, "streaming publish output: {message}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Rel(e) => Some(e),
            _ => None,
        }
    }
}

impl From<xvc_rel::Error> for Error {
    fn from(e: xvc_rel::Error) -> Self {
        Error::Rel(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}
