//! Static cardinality bounds over a schema tree.
//!
//! [`analyze_view_bounds`] runs the relational engine's cardinality
//! analysis ([`xvc_rel::query_cardinality`]) over every tag query of a
//! [`SchemaTree`], flowing parameter facts parent-to-child exactly like
//! predicate-dataflow pruning does. The result bounds, per view node:
//!
//! * **fan-out** — element instances per parent instance (the tag query's
//!   row bound; exactly one for literal and context-copy nodes, at most
//!   one when an emission guard gates them);
//! * **per-task instances** — instances inside one root-level subtree
//!   task (the publisher cuts the document into one task per root
//!   element, so the task root itself counts as one);
//! * **global instances** — instances across the whole document.
//!
//! From these fall out the two whole-run bounds the publisher's batched
//! path can be checked (and steered) against: the largest batch any
//! (view node, frontier wave) can carry, and the total element count.
//! [`Engine`](crate::Engine) bakes the per-node batch bound into
//! each cached plan via [`xvc_rel::PreparedPlan::with_binding_bound`],
//! which is what lets the engine demote a provably-single-binding batch
//! to scalar execution instead of paying for the shared pipeline.

use xvc_rel::facts::{analyze_query, param_key, query_cardinality, FactSet};
use xvc_rel::{Card, CardBound, Catalog, ScalarExpr, SelectItem, SelectQuery};

use crate::schema_tree::{SchemaTree, ViewNodeId};

/// Cardinality bounds for one view node (see module docs).
#[derive(Debug, Clone)]
pub struct NodeBounds {
    /// Element instances per parent instance, with its justifying chain.
    pub fan_out: CardBound,
    /// Instances within one root-level subtree task.
    pub per_task: Card,
    /// Instances across the whole document.
    pub global: Card,
}

/// Whole-tree cardinality analysis: per-node bounds plus the derived
/// document-growth and batch-size bounds.
#[derive(Debug, Clone)]
pub struct ViewBounds {
    /// Indexed by arena id; `None` for the implied root.
    per_node: Vec<Option<NodeBounds>>,
    /// Arena parent of each node (`None` for the root), so batch bounds
    /// can be answered without re-walking the tree.
    parents: Vec<Option<ViewNodeId>>,
    /// Bound on total elements published (sum of global instances).
    pub document: Card,
    /// Bound on the largest binding batch any (view node, wave) carries.
    pub max_batch: Card,
}

impl ViewBounds {
    /// The bounds of one view node (`None` for the root).
    pub fn node(&self, vid: ViewNodeId) -> Option<&NodeBounds> {
        self.per_node.get(vid.index()).and_then(Option::as_ref)
    }

    /// Bound on the number of bindings a batched execution of `vid`'s tag
    /// query (or guard probe) can carry: the per-task instance bound of
    /// its parent. Root-level nodes run in the sequential root pass, one
    /// binding at a time.
    pub fn batch_bound(&self, vid: ViewNodeId) -> Card {
        match self.parent_of(vid) {
            Some(p) => self.node(p).map_or(Card::AtMostOne, |b| b.per_task),
            None => Card::AtMostOne,
        }
    }

    fn parent_of(&self, vid: ViewNodeId) -> Option<ViewNodeId> {
        self.parents.get(vid.index()).copied().flatten()
    }
}

/// The larger of two bounds (join of the `Card` lattice).
fn card_max(a: Card, b: Card) -> Card {
    match (a.as_limit(), b.as_limit()) {
        (Some(x), Some(y)) => {
            if x >= y {
                a
            } else {
                b
            }
        }
        _ => Card::Unbounded,
    }
}

/// The guard probe `SELECT 1 WHERE guard`, identical to the shape the
/// publisher executes, so the fact engine analyzes the same conjuncts.
fn guard_probe(guard: &ScalarExpr) -> SelectQuery {
    let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
    probe.where_clause = Some(guard.clone());
    probe
}

/// Analyzes every node of `tree` against `catalog`, flowing parameter
/// facts down binding paths (a parent tag query's narrowed facts and
/// `$bv.column` output facts constrain every descendant's bound).
pub fn analyze_view_bounds(tree: &SchemaTree, catalog: &Catalog) -> ViewBounds {
    let ids = tree.ids();
    let n = ids.len();
    let mut bounds = ViewBounds {
        per_node: (0..n).map(|_| None).collect(),
        parents: (0..n).map(|_| None).collect(),
        document: Card::Zero,
        max_batch: Card::Zero,
    };
    let env = FactSet::new();
    for &child in tree.children(tree.root()) {
        // One task per root element instance: inside a task the root-level
        // node has exactly one instance, globally its tag query bounds it.
        visit(
            tree,
            catalog,
            child,
            &env,
            true,
            Card::AtMostOne,
            &mut bounds,
        );
    }
    for b in bounds.per_node.iter().flatten() {
        bounds.document = bounds.document.plus(b.global);
    }
    for vid in tree.node_ids() {
        // Root-level nodes never batch (sequential root pass).
        if tree.parent(vid) != Some(tree.root()) {
            bounds.max_batch = card_max(bounds.max_batch, bounds.batch_bound(vid));
        }
    }
    bounds
}

fn visit(
    tree: &SchemaTree,
    catalog: &Catalog,
    vid: ViewNodeId,
    env: &FactSet,
    is_task_root: bool,
    parent_global: Card,
    bounds: &mut ViewBounds,
) {
    let node = tree.node(vid).expect("non-root id");
    bounds.parents[vid.index()] = tree.parent(vid);
    let mut child_env: Option<FactSet> = None;

    // The node's own fan-out, and the facts its children run under.
    let mut fan_out = if let Some(q) = node
        .query
        .as_ref()
        .filter(|_| node.context_tuple_of.is_none())
    {
        let card = query_cardinality(q, catalog, env);
        let a = analyze_query(q, catalog, env);
        // Conjuncts of a non-aggregating query constrain every tuple bound
        // below; an *implicitly* aggregating query yields its single row
        // even when its WHERE holds for no tuple, so only the row-count
        // bound (exactly one) survives, not the narrowed facts.
        let implicit_agg = q.is_aggregating() && q.group_by.is_empty();
        if !implicit_agg && a.contradiction.is_none() {
            let mut next = a.param_facts.clone();
            if !node.bv.is_empty() {
                for (col, entry) in &a.out_facts {
                    next.insert(param_key(&node.bv, col), entry.clone());
                }
            }
            child_env = Some(next);
        }
        card.total
    } else {
        // Literal and context-copy nodes emit exactly once per parent
        // instance; a context copy re-binds the reused tuple under bv.
        CardBound::new(
            Card::AtMostOne,
            vec!["literal/context node: one instance per parent".to_owned()],
        )
    };

    // An emission guard can only suppress the node, never multiply it —
    // but it may narrow the facts for everything below.
    if let Some(g) = &node.guard {
        let a = analyze_query(&guard_probe(g), catalog, env);
        if a.empty {
            fan_out = CardBound::new(Card::Zero, a.empty_chain.clone());
        } else if a.contradiction.is_none() && child_env.is_none() {
            child_env = Some(a.param_facts.clone());
        }
    }

    let per_task = if is_task_root {
        // The task is cut per root element instance.
        Card::AtMostOne
    } else {
        let parent_per_task = tree
            .parent(vid)
            .and_then(|p| bounds.per_node[p.index()].as_ref())
            .map_or(Card::AtMostOne, |b| b.per_task);
        parent_per_task.times(fan_out.card)
    };
    let global = parent_global.times(fan_out.card);

    bounds.per_node[vid.index()] = Some(NodeBounds {
        fan_out,
        per_task,
        global,
    });

    let env_ref = child_env.as_ref().unwrap_or(env);
    for &c in tree.children(vid) {
        visit(tree, catalog, c, env_ref, false, global, bounds);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_tree::ViewNode;
    use xvc_rel::{parse_query, ColumnDef, ColumnType, Database, TableSchema};

    fn catalog() -> Catalog {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int).primary_key(),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int).primary_key(),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        db.catalog()
    }

    fn node(id: u32, tag: &str, bv: &str, sql: &str) -> ViewNode {
        ViewNode::new(id, tag, bv, parse_query(sql).unwrap())
    }

    #[test]
    fn fan_out_flows_parent_to_child() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(node(1, "metro", "m", "SELECT metroid FROM metroarea"))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                node(
                    2,
                    "hotel",
                    "h",
                    "SELECT * FROM hotel WHERE metro_id=$m.metroid",
                ),
            )
            .unwrap();
        // Pinned on the full metroarea key through the $h binding.
        let home = t
            .add_child(
                hotel,
                node(
                    3,
                    "home",
                    "x",
                    "SELECT metroname FROM metroarea WHERE metroid=$h.metro_id",
                ),
            )
            .unwrap();
        let b = analyze_view_bounds(&t, &catalog());
        assert_eq!(b.node(metro).unwrap().fan_out.card, Card::Unbounded);
        assert_eq!(b.node(hotel).unwrap().fan_out.card, Card::Unbounded);
        assert_eq!(b.node(home).unwrap().fan_out.card, Card::AtMostOne);
        // Hotel batches over the task root's single instance; home batches
        // over the task's (unbounded) hotel instances.
        assert_eq!(b.batch_bound(hotel), Card::AtMostOne);
        assert_eq!(b.batch_bound(home), Card::Unbounded);
        assert_eq!(b.max_batch, Card::Unbounded);
        assert_eq!(b.document, Card::Unbounded);
    }

    #[test]
    fn implicit_aggregate_bounds_to_one() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(node(1, "metro", "m", "SELECT metroid FROM metroarea"))
            .unwrap();
        let stat = t
            .add_child(
                metro,
                node(
                    2,
                    "stat",
                    "s",
                    "SELECT COUNT(*) FROM hotel WHERE metro_id=$m.metroid",
                ),
            )
            .unwrap();
        let b = analyze_view_bounds(&t, &catalog());
        let nb = b.node(stat).unwrap();
        assert_eq!(nb.fan_out.card, Card::AtMostOne);
        assert!(
            nb.fan_out.chain.iter().any(|c| c.contains("aggregat")),
            "{:?}",
            nb.fan_out.chain
        );
        // One stat per task (the task root has one instance), but the
        // root fans out freely across the document.
        assert_eq!(nb.per_task, Card::AtMostOne);
        assert_eq!(nb.global, Card::Unbounded);
    }

    #[test]
    fn literal_nodes_and_dead_guards() {
        use xvc_rel::BinOp;
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(node(1, "metro", "m", "SELECT metroid FROM metroarea"))
            .unwrap();
        let badge = t.add_child(metro, ViewNode::literal(2, "badge")).unwrap();
        let mut dead = ViewNode::literal(3, "never");
        dead.guard = Some(ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::int(1),
            ScalarExpr::int(2),
        ));
        let dead = t.add_child(metro, dead).unwrap();
        let b = analyze_view_bounds(&t, &catalog());
        assert_eq!(b.node(badge).unwrap().fan_out.card, Card::AtMostOne);
        assert_eq!(b.node(dead).unwrap().fan_out.card, Card::Zero);
        assert_eq!(b.node(dead).unwrap().global, Card::Zero);
    }

    #[test]
    fn single_root_key_pin_bounds_whole_document() {
        // Root pinned to one metroarea row by its primary key; the child
        // is pinned on hotel's key through a literal. Every level <= 1.
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(node(
                1,
                "metro",
                "m",
                "SELECT metroid FROM metroarea WHERE metroid = 7",
            ))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                node(2, "hotel", "h", "SELECT * FROM hotel WHERE hotelid = 3"),
            )
            .unwrap();
        let b = analyze_view_bounds(&t, &catalog());
        assert!(b.node(metro).unwrap().fan_out.card.at_most_one());
        assert!(b.node(hotel).unwrap().fan_out.card.at_most_one());
        assert_eq!(b.document, Card::Bounded(2));
        assert_eq!(b.max_batch, Card::AtMostOne);
    }
}
