//! Textual rendering of schema-tree queries, in the style of the paper's
//! Figure 1 / Figure 7 artwork: one node per line with tag, binding
//! variable, parameters and the tag query indented beneath.

use crate::schema_tree::{SchemaTree, ViewNodeId};

impl SchemaTree {
    /// Renders the whole tree (used by the `figures` binary and golden
    /// tests).
    pub fn render(&self) -> String {
        let mut out = String::from("/\n");
        for &c in self.children(self.root()) {
            self.render_node(c, 1, &mut out);
        }
        out
    }

    fn render_node(&self, vid: ViewNodeId, depth: usize, out: &mut String) {
        let n = self.node(vid).expect("non-root");
        let indent = "  ".repeat(depth);
        let Some(query) = &n.query else {
            let marker = match &n.context_tuple_of {
                Some(var) => format!("[copy of ${var}]"),
                None => "[literal]".to_owned(),
            };
            let guard = match &n.guard {
                Some(g) => {
                    let mut probe = xvc_rel::SelectQuery::new(
                        vec![xvc_rel::SelectItem::expr(xvc_rel::ScalarExpr::int(1))],
                        vec![],
                    );
                    probe.where_clause = Some(g.clone());
                    let sql = probe.to_sql_inline();
                    format!(
                        "  [guard: {}]",
                        sql.trim_start_matches("SELECT 1 FROM WHERE ")
                            .trim_start_matches("SELECT 1")
                            .trim_start_matches(" FROM")
                            .trim_start_matches(" WHERE ")
                    )
                }
                None => String::new(),
            };
            out.push_str(&format!(
                "{indent}({id}) <{tag}>  {marker}{guard}\n",
                id = n.id,
                tag = n.tag,
            ));
            for &c in self.children(vid) {
                self.render_node(c, depth + 1, out);
            }
            return;
        };
        let params = query.parameters();
        let params_str = if params.is_empty() {
            String::new()
        } else {
            format!(
                "  [params: {}]",
                params
                    .iter()
                    .map(|p| format!("${p}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        out.push_str(&format!(
            "{indent}({id}) <{tag}> ${bv}{params_str}\n",
            id = n.id,
            tag = n.tag,
            bv = n.bv,
        ));
        let q_indent = format!("{indent}    ");
        out.push_str(&format!("{q_indent}Q_{} =\n", n.bv));
        for line in query.to_sql().lines() {
            out.push_str(&q_indent);
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        for &c in self.children(vid) {
            self.render_node(c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::schema_tree::{SchemaTree, ViewNode};
    use xvc_rel::parse_query;

    #[test]
    fn renders_tree_with_queries_and_params() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        t.add_child(
            metro,
            ViewNode::new(
                3,
                "hotel",
                "h",
                parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap(),
            ),
        )
        .unwrap();
        let r = t.render();
        assert!(r.starts_with("/\n  (1) <metro> $m\n"));
        assert!(r.contains("(3) <hotel> $h  [params: $m]"));
        assert!(r.contains("SELECT metroid, metroname"));
        assert!(r.contains("WHERE metro_id = $m.metroid"));
    }
}
