//! A textual format for schema-tree view definitions, so views can live in
//! files next to stylesheets (used by the `xvc` CLI).
//!
//! ```text
//! # conference planning view (Figure 1)
//! node metro $m {
//!     query: SELECT metroid, metroname FROM metroarea;
//!     node confstat $cs {
//!         query: SELECT SUM(capacity) FROM confroom, hotel
//!                WHERE chotel_id = hotelid AND metro_id = $m.metroid;
//!     }
//!     node hotel $h {
//!         query: SELECT * FROM hotel WHERE metro_id = $m.metroid;
//!     }
//! }
//! ```
//!
//! Grammar: `node TAG $BV { query: SQL ; child-nodes... }`, `#` line
//! comments. Paper-level ids are assigned in definition order (1-based).

use xvc_rel::parse_query;

use crate::error::{Error, Result};
use crate::schema_tree::{SchemaTree, ViewNode, ViewNodeId};

/// Parses a view definition (see module docs).
pub fn parse_view(input: &str) -> Result<SchemaTree> {
    // Strip # comments.
    let cleaned: String = input
        .lines()
        .map(|l| l.split('#').next().unwrap_or(""))
        .collect::<Vec<_>>()
        .join("\n");
    let mut p = Parser {
        src: &cleaned,
        pos: 0,
        tree: SchemaTree::new(),
        next_id: 1,
    };
    p.skip_ws();
    while !p.at_end() {
        let root = p.tree.root();
        p.node(root)?;
        p.skip_ws();
    }
    if p.tree.is_empty() {
        return Err(Error::ViewSyntax {
            reason: "the view definition declares no nodes".into(),
        });
    }
    p.tree.validate()?;
    Ok(p.tree)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    tree: SchemaTree,
    next_id: u32,
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        self.skip_ws();
        if self.rest().starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::ViewSyntax {
                reason: format!(
                    "expected `{word}` near `{}`",
                    self.rest().chars().take(30).collect::<String>()
                ),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        self.skip_ws();
        let ident: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() {
            return Err(Error::ViewSyntax {
                reason: format!(
                    "expected {what} near `{}`",
                    self.rest().chars().take(30).collect::<String>()
                ),
            });
        }
        self.pos += ident.len();
        Ok(ident)
    }

    fn node(&mut self, parent: ViewNodeId) -> Result<()> {
        self.expect_word("node")?;
        let tag = self.ident("a tag name")?;
        self.expect_word("$")?;
        let bv = self.ident("a binding variable")?;
        self.expect_word("{")?;
        self.expect_word("query")?;
        self.expect_word(":")?;
        // SQL runs until the terminating `;`.
        let sql_end = self.rest().find(';').ok_or_else(|| Error::ViewSyntax {
            reason: format!("missing `;` after the query of <{tag}>"),
        })?;
        let sql = self.rest()[..sql_end].trim().to_owned();
        self.pos += sql_end + 1;
        let query = parse_query(&sql).map_err(|e| Error::ViewSyntax {
            reason: format!("tag query of <{tag}>: {e}"),
        })?;
        let id = self.next_id;
        self.next_id += 1;
        let vid = self
            .tree
            .add_child(parent, ViewNode::new(id, tag, bv, query))?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                return Ok(());
            }
            if self.rest().starts_with("node") {
                self.node(vid)?;
            } else {
                return Err(Error::ViewSyntax {
                    reason: format!(
                        "expected `node` or `}}` near `{}`",
                        self.rest().chars().take(30).collect::<String>()
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1_SUBSET: &str = r#"
        # two levels of the Figure 1 view
        node metro $m {
            query: SELECT metroid, metroname FROM metroarea;
            node hotel $h {
                query: SELECT * FROM hotel
                       WHERE metro_id = $m.metroid AND starrating > 4;
                node confstat $s {
                    query: SELECT SUM(capacity) FROM confroom
                           WHERE chotel_id = $h.hotelid;
                }
            }
        }
    "#;

    #[test]
    fn parses_nested_view() {
        let v = parse_view(FIG1_SUBSET).unwrap();
        assert_eq!(v.len(), 3);
        let metro = v.find_by_paper_id(1).unwrap();
        assert_eq!(v.tag(metro), Some("metro"));
        let hotel = v.find_by_paper_id(2).unwrap();
        assert_eq!(v.parent(hotel), Some(metro));
        assert_eq!(v.bv(hotel), Some("h"));
        let stat = v.find_by_paper_id(3).unwrap();
        assert_eq!(v.parent(stat), Some(hotel));
    }

    #[test]
    fn roundtrips_through_render_semantics() {
        // Not a textual round-trip (render is a display format), but the
        // parsed tree publishes exactly like a hand-built one.
        let parsed = parse_view(FIG1_SUBSET).unwrap();
        let mut built = SchemaTree::new();
        let m = built
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let h = built
            .add_child(
                m,
                ViewNode::new(
                    2,
                    "hotel",
                    "h",
                    parse_query(
                        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4",
                    )
                    .unwrap(),
                ),
            )
            .unwrap();
        built
            .add_child(
                h,
                ViewNode::new(
                    3,
                    "confstat",
                    "s",
                    parse_query("SELECT SUM(capacity) FROM confroom WHERE chotel_id = $h.hotelid")
                        .unwrap(),
                ),
            )
            .unwrap();
        assert_eq!(parsed, built);
    }

    #[test]
    fn multiple_roots() {
        let v = parse_view(
            "node a $x { query: SELECT metroid FROM metroarea; }\n\
             node b $y { query: SELECT metroid FROM metroarea; }",
        )
        .unwrap();
        assert_eq!(v.children(v.root()).len(), 2);
    }

    #[test]
    fn syntax_errors_are_descriptive() {
        let e = parse_view("node metro { query: SELECT 1 FROM t; }").unwrap_err();
        assert!(e.to_string().contains("expected `$`"), "{e}");
        let e = parse_view("node metro $m { query: SELECT metroid FROM metroarea }").unwrap_err();
        assert!(e.to_string().contains("missing `;`"), "{e}");
        let e = parse_view("").unwrap_err();
        assert!(e.to_string().contains("no nodes"), "{e}");
        let e = parse_view("node m $m { query: NOT SQL; }").unwrap_err();
        assert!(e.to_string().contains("tag query"), "{e}");
    }

    #[test]
    fn validation_errors_propagate() {
        // $ghost is bound by no ancestor.
        let e =
            parse_view("node a $x { query: SELECT * FROM t WHERE c = $ghost.id; }").unwrap_err();
        assert!(matches!(e, Error::UnboundViewParameter { .. }));
    }
}
