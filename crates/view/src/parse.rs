//! A textual format for schema-tree view definitions, so views can live in
//! files next to stylesheets (used by the `xvc` CLI).
//!
//! ```text
//! # conference planning view (Figure 1)
//! node metro $m {
//!     query: SELECT metroid, metroname FROM metroarea;
//!     node confstat $cs {
//!         query: SELECT SUM(capacity) FROM confroom, hotel
//!                WHERE chotel_id = hotelid AND metro_id = $m.metroid;
//!     }
//!     node hotel $h {
//!         query: SELECT * FROM hotel WHERE metro_id = $m.metroid;
//!     }
//! }
//! ```
//!
//! Grammar: `node TAG $BV { query: SQL ; child-nodes... }`, `#` line
//! comments. Paper-level ids are assigned in definition order (1-based).

use xvc_rel::parse_query;
use xvc_xml::{Span, SpanInfo};

use crate::error::{Error, Result};
use crate::schema_tree::{SchemaTree, ViewNode, ViewNodeId};

/// Replaces `#` comments with spaces, byte for byte, so parser positions
/// remain valid byte offsets into the original source text.
fn blank_comments(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for line in input.split_inclusive('\n') {
        match line.find('#') {
            Some(hash) => {
                let (keep, comment) = line.split_at(hash);
                out.push_str(keep);
                for c in comment.chars() {
                    out.push(if c == '\n' { '\n' } else { ' ' });
                }
            }
            None => out.push_str(line),
        }
    }
    out
}

/// Parses a view definition (see module docs).
pub fn parse_view(input: &str) -> Result<SchemaTree> {
    let cleaned = blank_comments(input);
    let mut p = Parser {
        src: &cleaned,
        pos: 0,
        tree: SchemaTree::new(),
        next_id: 1,
    };
    p.skip_ws();
    while !p.at_end() {
        let root = p.tree.root();
        p.node(root)?;
        p.skip_ws();
    }
    if p.tree.is_empty() {
        return Err(Error::ViewSyntax {
            reason: "the view definition declares no nodes".into(),
            span: None,
        });
    }
    p.tree.validate()?;
    Ok(p.tree)
}

struct Parser<'a> {
    src: &'a str,
    pos: usize,
    tree: SchemaTree,
    next_id: u32,
}

impl Parser<'_> {
    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn rest(&self) -> &str {
        &self.src[self.pos..]
    }

    fn skip_ws(&mut self) {
        let trimmed = self.rest().trim_start();
        self.pos = self.src.len() - trimmed.len();
    }

    /// Span covering the next `n` characters (for error reporting).
    fn span_here(&self, n: usize) -> Option<Span> {
        let len: usize = self.rest().chars().take(n.max(1)).map(char::len_utf8).sum();
        let end = (self.pos + len.max(1)).min(self.src.len());
        Some(Span::new(self.pos, end.max(self.pos)))
    }

    fn expect_word(&mut self, word: &str) -> Result<()> {
        self.skip_ws();
        if self.rest().starts_with(word) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(Error::ViewSyntax {
                reason: format!(
                    "expected `{word}` near `{}`",
                    self.rest().chars().take(30).collect::<String>()
                ),
                span: self.span_here(1),
            })
        }
    }

    fn ident(&mut self, what: &str) -> Result<String> {
        self.skip_ws();
        let ident: String = self
            .rest()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() {
            return Err(Error::ViewSyntax {
                reason: format!(
                    "expected {what} near `{}`",
                    self.rest().chars().take(30).collect::<String>()
                ),
                span: self.span_here(1),
            });
        }
        self.pos += ident.len();
        Ok(ident)
    }

    fn node(&mut self, parent: ViewNodeId) -> Result<()> {
        self.expect_word("node")?;
        let tag = self.ident("a tag name")?;
        self.expect_word("$")?;
        let bv = self.ident("a binding variable")?;
        self.expect_word("{")?;
        self.expect_word("query")?;
        self.expect_word(":")?;
        // SQL runs until the terminating `;`.
        self.skip_ws();
        let sql_start = self.pos;
        let sql_end = self.rest().find(';').ok_or_else(|| Error::ViewSyntax {
            reason: format!("missing `;` after the query of <{tag}>"),
            span: Some(Span::new(sql_start, self.src.len())),
        })?;
        let raw = &self.rest()[..sql_end];
        let trimmed_start = sql_start + (raw.len() - raw.trim_start().len());
        let trimmed_end = sql_start + raw.trim_end().len();
        let query_span = Span::new(trimmed_start, trimmed_end.max(trimmed_start));
        let sql = raw.trim().to_owned();
        self.pos += sql_end + 1;
        let query = parse_query(&sql).map_err(|e| Error::ViewSyntax {
            reason: format!("tag query of <{tag}>: {e}"),
            span: Some(query_span),
        })?;
        let id = self.next_id;
        self.next_id += 1;
        let mut vn = ViewNode::new(id, tag, bv, query);
        vn.query_span = SpanInfo::new(query_span);
        let vid = self.tree.add_child(parent, vn)?;
        loop {
            self.skip_ws();
            if self.rest().starts_with('}') {
                self.pos += 1;
                return Ok(());
            }
            if self.rest().starts_with("node") {
                self.node(vid)?;
            } else {
                return Err(Error::ViewSyntax {
                    reason: format!(
                        "expected `node` or `}}` near `{}`",
                        self.rest().chars().take(30).collect::<String>()
                    ),
                    span: self.span_here(1),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1_SUBSET: &str = r#"
        # two levels of the Figure 1 view
        node metro $m {
            query: SELECT metroid, metroname FROM metroarea;
            node hotel $h {
                query: SELECT * FROM hotel
                       WHERE metro_id = $m.metroid AND starrating > 4;
                node confstat $s {
                    query: SELECT SUM(capacity) FROM confroom
                           WHERE chotel_id = $h.hotelid;
                }
            }
        }
    "#;

    #[test]
    fn parses_nested_view() {
        let v = parse_view(FIG1_SUBSET).unwrap();
        assert_eq!(v.len(), 3);
        let metro = v.find_by_paper_id(1).unwrap();
        assert_eq!(v.tag(metro), Some("metro"));
        let hotel = v.find_by_paper_id(2).unwrap();
        assert_eq!(v.parent(hotel), Some(metro));
        assert_eq!(v.bv(hotel), Some("h"));
        let stat = v.find_by_paper_id(3).unwrap();
        assert_eq!(v.parent(stat), Some(hotel));
    }

    #[test]
    fn roundtrips_through_render_semantics() {
        // Not a textual round-trip (render is a display format), but the
        // parsed tree publishes exactly like a hand-built one.
        let parsed = parse_view(FIG1_SUBSET).unwrap();
        let mut built = SchemaTree::new();
        let m = built
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let h = built
            .add_child(
                m,
                ViewNode::new(
                    2,
                    "hotel",
                    "h",
                    parse_query(
                        "SELECT * FROM hotel WHERE metro_id = $m.metroid AND starrating > 4",
                    )
                    .unwrap(),
                ),
            )
            .unwrap();
        built
            .add_child(
                h,
                ViewNode::new(
                    3,
                    "confstat",
                    "s",
                    parse_query("SELECT SUM(capacity) FROM confroom WHERE chotel_id = $h.hotelid")
                        .unwrap(),
                ),
            )
            .unwrap();
        assert_eq!(parsed, built);
    }

    #[test]
    fn multiple_roots() {
        let v = parse_view(
            "node a $x { query: SELECT metroid FROM metroarea; }\n\
             node b $y { query: SELECT metroid FROM metroarea; }",
        )
        .unwrap();
        assert_eq!(v.children(v.root()).len(), 2);
    }

    #[test]
    fn syntax_errors_are_descriptive() {
        let e = parse_view("node metro { query: SELECT 1 FROM t; }").unwrap_err();
        assert!(e.to_string().contains("expected `$`"), "{e}");
        let e = parse_view("node metro $m { query: SELECT metroid FROM metroarea }").unwrap_err();
        assert!(e.to_string().contains("missing `;`"), "{e}");
        let e = parse_view("").unwrap_err();
        assert!(e.to_string().contains("no nodes"), "{e}");
        let e = parse_view("node m $m { query: NOT SQL; }").unwrap_err();
        assert!(e.to_string().contains("tag query"), "{e}");
    }

    #[test]
    fn records_query_spans_and_error_spans() {
        let src =
            "# leading comment\nnode metro $m {\n    query: SELECT metroid FROM metroarea;\n}";
        let v = parse_view(src).unwrap();
        let metro = v.find_by_paper_id(1).unwrap();
        let span = v.node(metro).unwrap().query_span.get().unwrap();
        assert_eq!(&src[span.start..span.end], "SELECT metroid FROM metroarea");

        let bad = "node metro { query: SELECT 1 FROM t; }";
        let e = parse_view(bad).unwrap_err();
        let span = e.span().expect("syntax errors carry spans");
        assert_eq!(&bad[span.start..span.start + 1], "{");
    }

    #[test]
    fn validation_errors_propagate() {
        // $ghost is bound by no ancestor.
        let e =
            parse_view("node a $x { query: SELECT * FROM t WHERE c = $ghost.id; }").unwrap_err();
        assert!(matches!(e, Error::UnboundViewParameter { .. }));
    }
}
