//! Schema-tree queries (Definition 1).

use xvc_rel::SelectQuery;
use xvc_xml::SpanInfo;

use crate::error::{Error, Result};

/// Which result columns of a tag query surface as XML attributes.
///
/// Plain publishing views (Definition 1) expose every column
/// ([`AttrProjection::All`]). Composed stylesheet views need finer control:
/// a literal result element like `<result_confstat>` is generated once per
/// tuple but carries no data ([`AttrProjection::None`]), and an
/// `<xsl:value-of select="@a"/>` projects a single column
/// ([`AttrProjection::Columns`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum AttrProjection {
    /// Every non-NULL column becomes an attribute (Definition 1 default).
    #[default]
    All,
    /// No tuple data on this element.
    None,
    /// Only the named columns become attributes.
    Columns(
        /// Column names to project.
        Vec<String>,
    ),
}

/// Identifier of a node inside a [`SchemaTree`] arena (not the paper-level
/// `id(ni)`, which is [`ViewNode::id`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ViewNodeId(pub(crate) u32);

impl ViewNodeId {
    /// Raw arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a non-root schema-tree node: the 6-tuple of Definition 1
/// (`children` live in the arena; `parameters(ni)` is derived from the tag
/// query via [`SelectQuery::parameters`]), generalized for stylesheet
/// views with literal elements and attribute projections.
#[derive(Debug, Clone, PartialEq)]
pub struct ViewNode {
    /// Unique paper-level id, `id(ni)`.
    pub id: u32,
    /// XML tag, `tag(ni)`.
    pub tag: String,
    /// Binding variable, `bv(ni)` (without the `$`). Meaningful only when
    /// `query` is present.
    pub bv: String,
    /// The tag query, `Q_{bv(ni)}`. `None` for literal elements of a
    /// stylesheet view (emitted exactly once per parent instance, binding
    /// nothing).
    pub query: Option<SelectQuery>,
    /// Which tuple columns surface as attributes.
    pub attrs: AttrProjection,
    /// Static attributes written verbatim (from literal result elements of
    /// the stylesheet, e.g. `<A href="x">`).
    pub static_attrs: Vec<(String, String)>,
    /// Context-copy marker: when `Some(var)`, this element is emitted once
    /// per parent instance with its attributes taken from the tuple bound
    /// to `$var` in the publishing environment (no query execution). Used
    /// by composed `<xsl:value-of select="."/>` nodes nested inside literal
    /// output. The node's own `bv` is re-bound to the same tuple so
    /// grafted child queries can still reference it.
    pub context_tuple_of: Option<String>,
    /// Emission guard: when present, the element (and its subtree) is
    /// produced only if this condition holds. Parameters reference binding
    /// variables in scope; the publisher evaluates it as
    /// `SELECT 1 WHERE guard`. Produced by composed `.[predicate]`
    /// transitions (the §5.2 flow-control rewrites).
    pub guard: Option<xvc_rel::ScalarExpr>,
    /// Source span of the tag-query SQL text, when the view was parsed
    /// from a textual definition. Not part of equality.
    pub query_span: SpanInfo,
}

impl ViewNode {
    /// A Definition-1 node: tag query present, all columns published.
    pub fn new(id: u32, tag: impl Into<String>, bv: impl Into<String>, query: SelectQuery) -> Self {
        ViewNode {
            id,
            tag: tag.into(),
            bv: bv.into(),
            query: Some(query),
            attrs: AttrProjection::All,
            static_attrs: Vec::new(),
            context_tuple_of: None,
            guard: None,
            query_span: SpanInfo::default(),
        }
    }

    /// A literal element of a stylesheet view: no query, no tuple data.
    pub fn literal(id: u32, tag: impl Into<String>) -> Self {
        ViewNode {
            id,
            tag: tag.into(),
            bv: String::new(),
            query: None,
            attrs: AttrProjection::None,
            static_attrs: Vec::new(),
            context_tuple_of: None,
            guard: None,
            query_span: SpanInfo::default(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct NodeData {
    parent: Option<ViewNodeId>,
    children: Vec<ViewNodeId>,
    /// `None` only for the synthetic root.
    node: Option<ViewNode>,
}

/// A schema-tree query: view nodes under an implied document root.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaTree {
    nodes: Vec<NodeData>,
}

impl Default for SchemaTree {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemaTree {
    /// Creates an empty schema tree (just the implied document root).
    pub fn new() -> Self {
        SchemaTree {
            nodes: vec![NodeData {
                parent: None,
                children: Vec::new(),
                node: None,
            }],
        }
    }

    /// The implied document root.
    pub fn root(&self) -> ViewNodeId {
        ViewNodeId(0)
    }

    /// Adds a top-level view node (child of the implied root).
    pub fn add_root_node(&mut self, node: ViewNode) -> Result<ViewNodeId> {
        self.add_child(self.root(), node)
    }

    /// Adds a view node as a child of `parent`.
    pub fn add_child(&mut self, parent: ViewNodeId, node: ViewNode) -> Result<ViewNodeId> {
        if !xvc_xml::escape::is_valid_name(&node.tag) {
            return Err(Error::InvalidTag {
                tag: node.tag.clone(),
            });
        }
        let id = ViewNodeId(self.nodes.len() as u32);
        self.nodes.push(NodeData {
            parent: Some(parent),
            children: Vec::new(),
            node: Some(node),
        });
        self.nodes[parent.index()].children.push(id);
        Ok(id)
    }

    /// The payload of a node; `None` for the root.
    pub fn node(&self, id: ViewNodeId) -> Option<&ViewNode> {
        self.nodes[id.index()].node.as_ref()
    }

    /// Mutable payload of a node; `None` for the root.
    pub fn node_mut(&mut self, id: ViewNodeId) -> Option<&mut ViewNode> {
        self.nodes[id.index()].node.as_mut()
    }

    /// Parent arena id (`None` for the root).
    pub fn parent(&self, id: ViewNodeId) -> Option<ViewNodeId> {
        self.nodes[id.index()].parent
    }

    /// Children in insertion order.
    pub fn children(&self, id: ViewNodeId) -> &[ViewNodeId] {
        &self.nodes[id.index()].children
    }

    /// True if this is the implied root.
    pub fn is_root(&self, id: ViewNodeId) -> bool {
        id.index() == 0
    }

    /// Tag of a node (`None` for the root).
    pub fn tag(&self, id: ViewNodeId) -> Option<&str> {
        self.node(id).map(|n| n.tag.as_str())
    }

    /// All arena ids in pre-order, root first.
    pub fn ids(&self) -> Vec<ViewNodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![self.root()];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.children(id).iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// All non-root arena ids in pre-order.
    pub fn node_ids(&self) -> Vec<ViewNodeId> {
        self.ids()
            .into_iter()
            .filter(|&i| !self.is_root(i))
            .collect()
    }

    /// Number of view nodes, excluding the implied root (the paper's |v|).
    pub fn len(&self) -> usize {
        self.nodes.len() - 1
    }

    /// True if the tree has no view nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finds a node by paper-level id.
    pub fn find_by_paper_id(&self, paper_id: u32) -> Option<ViewNodeId> {
        self.node_ids()
            .into_iter()
            .find(|&i| self.node(i).map(|n| n.id) == Some(paper_id))
    }

    /// Path of arena ids from the root (inclusive) down to `id` (inclusive).
    pub fn path_from_root(&self, id: ViewNodeId) -> Vec<ViewNodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Depth of a node (root is 0).
    pub fn depth(&self, id: ViewNodeId) -> usize {
        self.path_from_root(id).len() - 1
    }

    /// Lowest common ancestor of two nodes (possibly the root or one of the
    /// nodes themselves).
    pub fn lowest_common_ancestor(&self, a: ViewNodeId, b: ViewNodeId) -> ViewNodeId {
        let pa = self.path_from_root(a);
        let pb = self.path_from_root(b);
        let mut lca = self.root();
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        lca
    }

    /// The binding variable of a node, or `None` for the root and for
    /// literal (query-less) nodes.
    pub fn bv(&self, id: ViewNodeId) -> Option<&str> {
        self.node(id)
            .filter(|n| n.query.is_some())
            .map(|n| n.bv.as_str())
    }

    /// Finds the node whose binding variable is `bv`.
    pub fn find_by_bv(&self, bv: &str) -> Option<ViewNodeId> {
        self.node_ids()
            .into_iter()
            .find(|&i| self.bv(i) == Some(bv))
    }

    /// Validates Definition 1's well-formedness conditions:
    /// unique paper ids, unique binding variables, and every tag-query
    /// parameter bound by a strict ancestor's binding variable.
    pub fn validate(&self) -> Result<()> {
        let mut ids = std::collections::HashSet::new();
        let mut bvs = std::collections::HashSet::new();
        for vid in self.node_ids() {
            let n = self.node(vid).expect("non-root");
            if !ids.insert(n.id) {
                return Err(Error::DuplicateId {
                    id: n.id,
                    span: n.query_span.get(),
                });
            }
            if n.query.is_some() && !bvs.insert(n.bv.clone()) {
                return Err(Error::DuplicateBindingVariable {
                    bv: n.bv.clone(),
                    span: n.query_span.get(),
                });
            }
        }
        for vid in self.node_ids() {
            let n = self.node(vid).expect("non-root");
            let Some(query) = &n.query else { continue };
            let ancestors: std::collections::HashSet<&str> = self
                .path_from_root(vid)
                .iter()
                .filter(|&&a| a != vid)
                .filter_map(|&a| self.bv(a))
                .collect();
            for var in query.parameters() {
                if !ancestors.contains(var.as_str()) {
                    return Err(Error::UnboundViewParameter {
                        node_id: n.id,
                        var,
                        span: n.query_span.get(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_rel::parse_query;

    fn node(id: u32, tag: &str, bv: &str, sql: &str) -> ViewNode {
        ViewNode::new(id, tag, bv, parse_query(sql).unwrap())
    }

    fn small_tree() -> (SchemaTree, ViewNodeId, ViewNodeId, ViewNodeId) {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(node(1, "metro", "m", "SELECT metroid FROM metroarea"))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                node(
                    3,
                    "hotel",
                    "h",
                    "SELECT * FROM hotel WHERE metro_id=$m.metroid",
                ),
            )
            .unwrap();
        let stat = t
            .add_child(
                hotel,
                node(
                    4,
                    "confstat",
                    "s",
                    "SELECT SUM(capacity) FROM confroom WHERE chotel_id=$h.hotelid",
                ),
            )
            .unwrap();
        (t, metro, hotel, stat)
    }

    #[test]
    fn structure_navigation() {
        let (t, metro, hotel, stat) = small_tree();
        assert_eq!(t.len(), 3);
        assert_eq!(t.parent(hotel), Some(metro));
        assert_eq!(t.parent(metro), Some(t.root()));
        assert_eq!(t.children(metro), &[hotel]);
        assert_eq!(t.path_from_root(stat), vec![t.root(), metro, hotel, stat]);
        assert_eq!(t.depth(stat), 3);
        assert_eq!(t.tag(stat), Some("confstat"));
        assert_eq!(t.bv(hotel), Some("h"));
    }

    #[test]
    fn lca_computation() {
        let (mut t, metro, hotel, stat) = small_tree();
        let sibling = t
            .add_child(hotel, node(5, "confroom", "c", "SELECT * FROM confroom"))
            .unwrap();
        assert_eq!(t.lowest_common_ancestor(stat, sibling), hotel);
        assert_eq!(t.lowest_common_ancestor(stat, metro), metro);
        assert_eq!(t.lowest_common_ancestor(stat, stat), stat);
        assert_eq!(t.lowest_common_ancestor(t.root(), stat), t.root());
    }

    #[test]
    fn find_by_paper_id_and_bv() {
        let (t, _, hotel, _) = small_tree();
        assert_eq!(t.find_by_paper_id(3), Some(hotel));
        assert_eq!(t.find_by_paper_id(99), None);
        assert_eq!(t.find_by_bv("h"), Some(hotel));
        assert_eq!(t.find_by_bv("zzz"), None);
    }

    #[test]
    fn validate_accepts_well_formed() {
        let (t, ..) = small_tree();
        t.validate().unwrap();
    }

    #[test]
    fn validate_rejects_duplicate_ids() {
        let (mut t, metro, ..) = small_tree();
        t.add_child(metro, node(1, "dup", "d", "SELECT metroid FROM metroarea"))
            .unwrap();
        assert!(matches!(
            t.validate(),
            Err(Error::DuplicateId { id: 1, .. })
        ));
    }

    #[test]
    fn validate_rejects_duplicate_bvs() {
        let (mut t, metro, ..) = small_tree();
        t.add_child(metro, node(9, "dup", "m", "SELECT metroid FROM metroarea"))
            .unwrap();
        assert!(matches!(
            t.validate(),
            Err(Error::DuplicateBindingVariable { .. })
        ));
    }

    #[test]
    fn validate_rejects_unbound_parameter() {
        let (mut t, metro, ..) = small_tree();
        // References $h, but $h is bound by a sibling subtree, not an
        // ancestor.
        t.add_child(
            metro,
            node(
                9,
                "bad",
                "b",
                "SELECT * FROM confroom WHERE chotel_id=$h.hotelid",
            ),
        )
        .unwrap();
        assert!(matches!(
            t.validate(),
            Err(Error::UnboundViewParameter { node_id: 9, .. })
        ));
    }

    #[test]
    fn rejects_invalid_tag() {
        let mut t = SchemaTree::new();
        assert!(matches!(
            t.add_root_node(node(1, "not a tag", "x", "SELECT metroid FROM metroarea")),
            Err(Error::InvalidTag { .. })
        ));
    }

    #[test]
    fn preorder_ids() {
        let (mut t, metro, hotel, stat) = small_tree();
        let room = t
            .add_child(hotel, node(5, "confroom", "c", "SELECT * FROM confroom"))
            .unwrap();
        assert_eq!(t.node_ids(), vec![metro, hotel, stat, room]);
    }
}
