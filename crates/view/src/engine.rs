//! The publishing engine: an owned, `Send + Sync` handle over a schema
//! tree whose compiled state outlives any single publish.
//!
//! [`Engine`] is the long-lived half of the publishing API: it owns the
//! [`SchemaTree`], the prepared-plan cache (shared behind an `RwLock`,
//! invalidated by [`xvc_rel::Database::catalog_fingerprint`] changes), and
//! aggregate counters across every publish it has served. Cloning an
//! `Engine` is cheap (`Arc` internally) and every clone shares the same
//! cache and totals, so a server can hand one engine to N worker threads.
//!
//! [`Session`] is the short-lived half: a cheap per-request handle created
//! by [`Engine::session`] that carries per-publish memo/trace state and a
//! private statistics accumulator. Concurrent sessions publish through the
//! same warm plan cache without re-compiling — and without double-counting
//! `plans_prepared` vs `plan_cache_hits`: a plan is compiled (and counted
//! as prepared) by exactly one session; every other session observes a
//! complete cache and counts pure hits, so the aggregate
//! [`PublishStats::plan_cache_hit_rate`] of warm traffic is exactly 1.0
//! at any thread count.
//!
//! ```no_run
//! # use xvc_view::{Engine, SchemaTree};
//! # use xvc_rel::Database;
//! # fn demo(tree: &SchemaTree, db: &Database) -> xvc_view::Result<()> {
//! let engine = Engine::new(tree).parallel(4);
//! let mut session = engine.session();
//! let first = session.publish(db)?; // compiles and caches the plans
//! let again = engine.session().publish(db)?; // every plan cache-served
//! assert!(again.stats.plan_cache_hit_rate() > 0.99);
//! # Ok(()) }
//! ```

use std::io;
use std::sync::{Arc, Mutex, PoisonError, RwLock, RwLockReadGuard};

use xvc_rel::{prepare, Catalog, Database, Delta, EvalStats};
use xvc_xml::{PrettyXmlWriter, XmlSink, XmlWriter};

use crate::bounds::{analyze_view_bounds, ViewBounds};
use crate::error::Result;
use crate::publish::{
    guard_probe, run_delta_republish, run_full_publish, run_stream_publish, PlanCache, PlanEntry,
    PublishConfig, PublishStats, Published, Role,
};
use crate::schema_tree::{SchemaTree, ViewNodeId};

/// Aggregate counters across every publish an [`Engine`] has served, for
/// all sessions combined. The merge is the same deterministic
/// [`PublishStats::absorb`] the parallel publisher uses per subtree, so
/// the hit rate of the aggregate is the hit rate of the traffic — a
/// session that compiled nothing contributes only hits, the one session
/// that compiled contributes the preparations, and nothing is counted
/// twice.
#[derive(Debug, Clone, Default)]
pub struct EngineTotals {
    /// Full publishes served ([`Session::publish`], including delta
    /// fallbacks that republished from scratch).
    pub publishes: usize,
    /// Delta republishes served ([`Session::republish_delta`]).
    pub delta_publishes: usize,
    /// Summed materialization counters across all of the above.
    pub stats: PublishStats,
    /// Summed relational-engine work across all of the above.
    pub eval: EvalStats,
}

/// Engine configuration: the publish-path toggles plus bound-driven
/// planning. Fixed once sessions exist (reconfiguring builds a fresh
/// engine with an empty cache).
#[derive(Debug, Clone)]
struct Config {
    publish: PublishConfig,
    bounded: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            publish: PublishConfig {
                tracing: false,
                parallel: 1,
                prepared: true,
                batched: true,
                incremental: false,
            },
            bounded: true,
        }
    }
}

/// The shared core every clone of an [`Engine`] points at.
#[derive(Debug)]
struct EngineShared {
    tree: SchemaTree,
    cfg: Config,
    cache: RwLock<PlanCache>,
    totals: Mutex<EngineTotals>,
}

/// An owned, `Send + Sync` publishing engine: schema tree + shared
/// prepared-plan cache + aggregate statistics. See the module docs.
///
/// Configure with the builder methods immediately after [`Engine::new`]
/// (each returns `Self`); then create per-request [`Session`]s with
/// [`Engine::session`]. Clones share the cache and totals.
#[derive(Debug)]
pub struct Engine {
    shared: Arc<EngineShared>,
}

impl Clone for Engine {
    fn clone(&self) -> Self {
        Engine {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl Engine {
    /// An engine for `tree` (cloned into the engine so it owns its whole
    /// world): untraced, single-threaded, prepared-plan, set-oriented
    /// (batched) and bound-driven execution enabled — the same defaults
    /// the old borrow-bound publisher had.
    pub fn new(tree: &SchemaTree) -> Self {
        Self::from_parts(tree.clone(), Config::default())
    }

    fn from_parts(tree: SchemaTree, cfg: Config) -> Self {
        Engine {
            shared: Arc::new(EngineShared {
                tree,
                cfg,
                cache: RwLock::new(PlanCache::default()),
                totals: Mutex::new(EngineTotals::default()),
            }),
        }
    }

    /// Rebuilds the engine with `f` applied to its configuration. On an
    /// unshared engine (the builder chain right after [`Engine::new`])
    /// this is a move; on a shared one it starts from a fresh cache —
    /// cached plans may embed configuration (e.g. baked batch bounds), so
    /// a reconfigured engine never reuses them.
    fn reconfig(self, f: impl FnOnce(&mut Config)) -> Self {
        match Arc::try_unwrap(self.shared) {
            Ok(shared) => {
                let mut cfg = shared.cfg;
                f(&mut cfg);
                Self::from_parts(shared.tree, cfg)
            }
            Err(shared) => {
                let mut cfg = shared.cfg.clone();
                f(&mut cfg);
                Self::from_parts(shared.tree.clone(), cfg)
            }
        }
    }

    /// Record per-element provenance ([`Published::trace`]).
    pub fn traced(self, on: bool) -> Self {
        self.reconfig(|c| c.publish.tracing = on)
    }

    /// Evaluate up to `n` root-level sibling subtrees concurrently within
    /// one publish. `0` and `1` both mean sequential. Document order and
    /// all statistics are independent of `n`.
    pub fn parallel(self, n: usize) -> Self {
        self.reconfig(|c| c.publish.parallel = n.max(1))
    }

    /// Use compiled [`xvc_rel::PreparedPlan`]s and the result memo
    /// (`true`, the default), or force the tuple-at-a-time interpreter
    /// (`false`; used by benchmarks to measure the prepared path's win).
    pub fn prepared(self, on: bool) -> Self {
        self.reconfig(|c| c.publish.prepared = on)
    }

    /// Publish each subtree with the breadth-first frontier walk — one
    /// set-oriented batch per (view node, frontier) — (`true`, the
    /// default) or with the original per-parent recursion (`false`). Both
    /// paths produce bit-identical documents, traces and stats modulo the
    /// batch-only counters ([`PublishStats::without_batch_counters`]).
    pub fn batched(self, on: bool) -> Self {
        self.reconfig(|c| c.publish.batched = on)
    }

    /// Bake static cardinality bounds ([`crate::analyze_view_bounds`])
    /// into the cached plans (`true`, the default): a node whose batches
    /// provably carry at most one binding executes scalar, pushdowns and
    /// index paths intact, instead of paying for the shared binding-free
    /// pipeline. Documents, traces and [`PublishStats`] are identical
    /// either way.
    pub fn bounded(self, on: bool) -> Self {
        self.reconfig(|c| c.bounded = on)
    }

    /// Record the splice index ([`Published::splice`]) on batched
    /// publishes so results can seed [`Session::republish_delta`].
    pub fn incremental(self, on: bool) -> Self {
        self.reconfig(|c| c.publish.incremental = on)
    }

    /// The schema tree this engine publishes.
    pub fn tree(&self) -> &SchemaTree {
        &self.shared.tree
    }

    /// A new per-request session. Sessions are cheap: a clone of the
    /// engine handle plus empty statistics accumulators.
    pub fn session(&self) -> Session {
        Session {
            engine: self.clone(),
            stats: PublishStats::default(),
            eval: EvalStats::default(),
            publishes: 0,
        }
    }

    /// Snapshot of the aggregate counters across all sessions so far.
    pub fn totals(&self) -> EngineTotals {
        self.shared
            .totals
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Validates the shared cache against `db`'s catalog fingerprint,
    /// compiles anything missing, and returns a read guard the publish
    /// runs under (writers — i.e. invalidations — wait until in-flight
    /// publishes finish).
    ///
    /// Counting discipline: a session that finds the cache complete for
    /// this fingerprint counts one `plan_cache_hits` per needed plan and
    /// compiles nothing. A session that finds it incomplete takes the
    /// write lock and compiles what is missing (counting `plans_prepared`
    /// / `plan_prepare_failures`, or hits for entries another session got
    /// to first); losers of the write race re-observe a complete cache and
    /// count pure hits. No path counts the same lookup twice.
    fn ensure_plans(
        &self,
        db: &Database,
        stats: &mut PublishStats,
    ) -> RwLockReadGuard<'_, PlanCache> {
        let shared = &self.shared;
        if !shared.cfg.publish.prepared {
            return shared.cache.read().unwrap_or_else(PoisonError::into_inner);
        }
        let fingerprint = db.catalog_fingerprint();
        // One plan per tag query plus one per emission-guard probe.
        let needed: usize = shared
            .tree
            .node_ids()
            .iter()
            .filter_map(|&vid| shared.tree.node(vid))
            .map(|n| usize::from(n.query.is_some()) + usize::from(n.guard.is_some()))
            .sum();
        let mut counted = false;
        loop {
            {
                let cache = shared.cache.read().unwrap_or_else(PoisonError::into_inner);
                if cache.fingerprint == Some(fingerprint) && cache.complete {
                    if !counted {
                        stats.plan_cache_hits += needed;
                    }
                    return cache;
                }
            }
            let mut cache = shared.cache.write().unwrap_or_else(PoisonError::into_inner);
            if !(cache.fingerprint == Some(fingerprint) && cache.complete) {
                if cache.fingerprint != Some(fingerprint) {
                    cache.plans.clear();
                    cache.complete = false;
                    cache.fingerprint = Some(fingerprint);
                }
                // Built lazily, only if some node actually needs
                // compiling; on a cache filled by a racing session
                // neither the catalog nor the cardinality analysis is
                // materialized at all.
                let mut planner: Option<Planner> = None;
                for vid in shared.tree.node_ids() {
                    let node = shared.tree.node(vid).expect("non-root id");
                    if let Some(q) = &node.query {
                        ensure_plan(
                            &mut cache,
                            &shared.tree,
                            shared.cfg.bounded,
                            vid,
                            Role::Tag,
                            q,
                            db,
                            &mut planner,
                            stats,
                        );
                    }
                    if let Some(g) = &node.guard {
                        let probe = guard_probe(g);
                        ensure_plan(
                            &mut cache,
                            &shared.tree,
                            shared.cfg.bounded,
                            vid,
                            Role::Guard,
                            &probe,
                            db,
                            &mut planner,
                            stats,
                        );
                    }
                }
                cache.complete = true;
                counted = true;
            }
            // Downgrade: drop the write lock and re-enter through the read
            // path (re-counting is suppressed once this session has
            // accounted for its lookups).
            drop(cache);
        }
    }
}

/// What one streaming publish produced ([`Session::publish_to`]): the
/// statistics a materializing publish would report plus the write-side
/// counters — and no document. The serialized bytes went straight to the
/// caller's `io::Write`.
#[derive(Debug, Clone)]
pub struct Streamed {
    /// Materialization counters; equal to the batched materializing
    /// path's [`Published::stats`] for the same database (the walk is
    /// identical, only the element store differs).
    pub stats: PublishStats,
    /// Relational-engine work across every tag-query / guard evaluation.
    pub eval: EvalStats,
    /// Serialized bytes written to the sink.
    pub bytes_written: u64,
    /// High-water mark of the emission buffers (the streaming skeleton's
    /// retained heap; on the materializing fallback, the arena document's
    /// [`xvc_xml::Document::heap_estimate`]). This is the number the
    /// `figures -- stream` study shows staying flat in document size.
    pub peak_emit_bytes: usize,
}

/// Counts bytes flowing through to the wrapped writer.
struct CountingWriter<W> {
    inner: W,
    bytes: u64,
}

impl<W: io::Write> io::Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A per-request publishing handle: shares its [`Engine`]'s plan cache and
/// rolls every publish into both its own accumulator and the engine
/// totals. Create with [`Engine::session`].
#[derive(Debug)]
pub struct Session {
    engine: Engine,
    stats: PublishStats,
    eval: EvalStats,
    publishes: usize,
}

impl Session {
    /// The engine this session publishes through.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Summed [`PublishStats`] across this session's publishes.
    pub fn stats(&self) -> &PublishStats {
        &self.stats
    }

    /// Summed relational-engine work across this session's publishes.
    pub fn eval(&self) -> &EvalStats {
        &self.eval
    }

    /// Publishes this session has served (full + delta).
    pub fn publishes(&self) -> usize {
        self.publishes
    }

    /// Evaluates the engine's schema tree against `db`, producing `v(I)`
    /// plus statistics (and a trace when the engine is `traced`).
    ///
    /// Plans cached by any earlier publish through the same engine are
    /// reused when the database's catalog fingerprint is unchanged — an
    /// `O(1)` check instead of rebuilding and comparing the whole
    /// catalog. The result memo never outlives one call, so database
    /// mutations between calls are always observed.
    pub fn publish(&mut self, db: &Database) -> Result<Published> {
        let published = self.publish_inner(db)?;
        self.record(&published, false);
        Ok(published)
    }

    fn publish_inner(&mut self, db: &Database) -> Result<Published> {
        let shared = &self.engine.shared;
        shared.tree.validate()?;
        let mut stats = PublishStats::default();
        let cache = self.engine.ensure_plans(db, &mut stats);
        run_full_publish(&shared.tree, &cache.plans, &shared.cfg.publish, db, stats)
    }

    /// Streams `v(I)` as compact serialized XML straight into `out`,
    /// without materializing an output document: each root-level subtree
    /// is expanded by the same breadth-first batch walk as
    /// [`Session::publish`] into a small reusable skeleton and serialized
    /// out as soon as it completes, so peak emission memory is bounded by
    /// the largest root-level subtree instead of the document. The bytes
    /// are identical to `publish(db)?.document.to_xml()` (proptest-gated
    /// across backends and workload presets).
    ///
    /// On an unbatched (`batched(false)`) or traced engine the call falls
    /// back to materializing internally and serializing through the same
    /// writer — splicing provenance and traces need the arena document —
    /// so output bytes never depend on configuration.
    ///
    /// A sink failure surfaces as [`crate::Error::Io`] after a truncated
    /// write; engine state (plan cache, totals) is unaffected and the
    /// session remains usable.
    pub fn publish_to<W: io::Write>(&mut self, db: &Database, out: W) -> Result<Streamed> {
        self.stream_publish(db, out, false)
    }

    /// [`Session::publish_to`] with two-space-indented output, byte-equal
    /// to `publish(db)?.document.to_pretty_xml()`. Pretty layout needs
    /// per-element lookahead, so this buffers one top-level element at a
    /// time ([`xvc_xml::PrettyXmlWriter`]) — still bounded by the largest
    /// root-level subtree, not the document.
    pub fn publish_pretty_to<W: io::Write>(&mut self, db: &Database, out: W) -> Result<Streamed> {
        self.stream_publish(db, out, true)
    }

    fn stream_publish<W: io::Write>(
        &mut self,
        db: &Database,
        out: W,
        pretty: bool,
    ) -> Result<Streamed> {
        let mut counter = CountingWriter {
            inner: out,
            bytes: 0,
        };
        let result = if pretty {
            let mut sink = PrettyXmlWriter::new(&mut counter);
            self.stream_into(db, &mut sink)
        } else {
            let mut sink = XmlWriter::new(&mut counter);
            self.stream_into(db, &mut sink)
        };
        let (stats, eval, peak_emit_bytes) = result?;
        let streamed = Streamed {
            stats,
            eval,
            bytes_written: counter.bytes,
            peak_emit_bytes,
        };
        self.record_streamed(&streamed);
        Ok(streamed)
    }

    fn stream_into(
        &mut self,
        db: &Database,
        sink: &mut dyn XmlSink,
    ) -> Result<(PublishStats, EvalStats, usize)> {
        let shared = &self.engine.shared;
        let cfg = &shared.cfg.publish;
        if !cfg.batched || cfg.tracing {
            // Materializing fallback: the scalar path and traced publishes
            // build the arena document anyway; serialize it through the
            // same sink so the bytes cannot differ.
            let published = self.publish_inner(db)?;
            published.document.emit(sink)?;
            let peak = published.document.heap_estimate();
            return Ok((published.stats, published.eval, peak));
        }
        shared.tree.validate()?;
        let mut stats = PublishStats::default();
        let cache = self.engine.ensure_plans(db, &mut stats);
        run_stream_publish(&shared.tree, &cache.plans, cfg, db, stats, sink)
    }

    /// Incrementally republishes after a base-table mutation: maps `delta`
    /// through the conservative table → view-node dependency map
    /// ([`crate::TableDeps`]), re-executes only the *top-most* affected
    /// view nodes — level-at-a-time, one batch per (view node, wave)
    /// across **all** surviving parent instances at once — and splices the
    /// fresh subtrees into `prev`'s document in place of the stale ones.
    ///
    /// `prev` must come from an `incremental` engine (so it carries a
    /// [`crate::SpliceIndex`]); otherwise, or on the scalar path, the call
    /// falls back to a full [`Session::publish`] and reports
    /// `batches_reexecuted == batches_executed`. `db` must be the
    /// *post*-delta database.
    ///
    /// The result is byte-identical to a full republish against `db`
    /// (asserted across random workloads by the delta-publish property
    /// tests) and carries a current splice index, so deltas chain.
    pub fn republish_delta(
        &mut self,
        db: &Database,
        prev: &Published,
        delta: &Delta,
    ) -> Result<Published> {
        let batched = self.engine.shared.cfg.publish.batched;
        let published = if !batched || prev.splice.is_none() {
            let mut p = self.publish_inner(db)?;
            p.stats.batches_reexecuted = p.stats.batches_executed;
            p.stats.delta_rows_in = delta.row_count();
            p.reexecuted = self.engine.shared.tree.node_ids();
            p
        } else {
            let shared = &self.engine.shared;
            shared.tree.validate()?;
            let mut stats = PublishStats::default();
            let cache = self.engine.ensure_plans(db, &mut stats);
            run_delta_republish(
                &shared.tree,
                &cache.plans,
                &shared.cfg.publish,
                db,
                prev,
                delta,
                stats,
            )?
        };
        self.record(&published, true);
        Ok(published)
    }

    fn record(&mut self, published: &Published, delta: bool) {
        self.stats.absorb(&published.stats);
        self.eval.absorb(&published.eval);
        self.publishes += 1;
        let mut totals = self
            .engine
            .shared
            .totals
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        totals.stats.absorb(&published.stats);
        totals.eval.absorb(&published.eval);
        if delta {
            totals.delta_publishes += 1;
        } else {
            totals.publishes += 1;
        }
    }

    fn record_streamed(&mut self, streamed: &Streamed) {
        self.stats.absorb(&streamed.stats);
        self.eval.absorb(&streamed.eval);
        self.publishes += 1;
        let mut totals = self
            .engine
            .shared
            .totals
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        totals.stats.absorb(&streamed.stats);
        totals.eval.absorb(&streamed.eval);
        totals.publishes += 1;
    }
}

/// A lazily-filled holder for plan compilation: the (comparatively
/// expensive) [`Database::catalog`] — and, when bound-driven planning is
/// on, the whole-tree cardinality analysis — is built at most once per
/// cache fill, and only when at least one entry is actually vacant.
struct Planner {
    catalog: Catalog,
    bounds: Option<ViewBounds>,
}

/// Compiles `q` into the cache under `(vid, role)` unless already present.
/// Compilation failures are not fatal: the node simply falls back to the
/// interpreter (which will surface any genuine error at execution time,
/// and only if the node actually runs). The failure is cached too —
/// otherwise every publish would retry the doomed compilation and report
/// the retry as a cache miss, deflating
/// [`PublishStats::plan_cache_hit_rate`].
#[allow(clippy::too_many_arguments)]
fn ensure_plan(
    cache: &mut PlanCache,
    tree: &SchemaTree,
    bounded: bool,
    vid: ViewNodeId,
    role: Role,
    q: &xvc_rel::SelectQuery,
    db: &Database,
    planner: &mut Option<Planner>,
    stats: &mut PublishStats,
) {
    let key = (vid.index() as u32, role);
    match cache.plans.entry(key) {
        std::collections::hash_map::Entry::Occupied(_) => stats.plan_cache_hits += 1,
        std::collections::hash_map::Entry::Vacant(e) => {
            let planner = planner.get_or_insert_with(|| {
                let catalog = db.catalog();
                let bounds = bounded.then(|| analyze_view_bounds(tree, &catalog));
                Planner { catalog, bounds }
            });
            match prepare(q, &planner.catalog) {
                Ok(p) => {
                    // A tag query's batch carries one binding per parent
                    // instance in the task; the guard probe of the same
                    // node batches over the same parents.
                    let p = match &planner.bounds {
                        Some(b) => p.with_binding_bound(b.batch_bound(vid)),
                        None => p,
                    };
                    e.insert(PlanEntry::Ready(Box::new(p)));
                    stats.plans_prepared += 1;
                }
                Err(_) => {
                    e.insert(PlanEntry::Failed);
                    stats.plan_prepare_failures += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_and_session_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<Session>();
        assert_send_sync::<EngineTotals>();
    }
}
