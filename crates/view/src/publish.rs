//! Publishing: evaluating a schema-tree query to an XML document, `v(I)`.

use xvc_rel::{eval_query, Database, ParamEnv, Relation};
use xvc_xml::{Document, TreeBuilder};

use crate::error::Result;
use crate::schema_tree::{AttrProjection, SchemaTree, ViewNodeId};

/// Materialization statistics for one publish run.
///
/// These are the paper's efficiency currency: the composed stylesheet view
/// wins precisely because it materializes fewer elements and runs fewer
/// tag queries than publishing the full view and transforming it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// XML elements created.
    pub elements: usize,
    /// Attributes attached.
    pub attributes: usize,
    /// Tag-query executions (one per parent tuple per child node).
    pub queries_run: usize,
    /// Tuples fetched across all tag-query executions.
    pub tuples_fetched: usize,
}

/// Evaluates the schema-tree query against a database instance, producing
/// the XML document `v(I)` plus materialization statistics.
pub fn publish(tree: &SchemaTree, db: &Database) -> Result<(Document, PublishStats)> {
    tree.validate()?;
    let mut builder = TreeBuilder::new();
    let mut stats = PublishStats::default();
    let env = ParamEnv::new();
    for &child in tree.children(tree.root()) {
        publish_node(tree, db, child, &env, &mut builder, &mut stats)?;
    }
    Ok((builder.finish(), stats))
}

/// Convenience: number of elements `v(I)` would materialize.
pub fn publish_node_count(tree: &SchemaTree, db: &Database) -> Result<usize> {
    publish(tree, db).map(|(_, s)| s.elements)
}

fn publish_node(
    tree: &SchemaTree,
    db: &Database,
    vid: ViewNodeId,
    env: &ParamEnv,
    builder: &mut TreeBuilder,
    stats: &mut PublishStats,
) -> Result<()> {
    let node = tree.node(vid).expect("publish_node is never called on root");

    // Emission guard: `SELECT 1 WHERE guard` over the current bindings.
    if let Some(guard) = &node.guard {
        let mut probe = xvc_rel::SelectQuery::new(
            vec![xvc_rel::SelectItem::expr(xvc_rel::ScalarExpr::int(1))],
            vec![],
        );
        probe.where_clause = Some(guard.clone());
        stats.queries_run += 1;
        if eval_query(db, &probe, env)?.is_empty() {
            return Ok(());
        }
    }

    // Context-copy element: one instance per parent, attributes from the
    // tuple already bound to `$var` in the environment.
    if let Some(var) = &node.context_tuple_of {
        builder.open(&node.tag);
        stats.elements += 1;
        for (k, v) in &node.static_attrs {
            builder.attr(k.clone(), v.clone());
            stats.attributes += 1;
        }
        let mut child_env = env.clone();
        if let Some(tuple) = env.get(var) {
            let mut seen = std::collections::HashSet::new();
            for (c, val) in tuple.columns.iter().zip(&tuple.values) {
                let wanted = match &node.attrs {
                    AttrProjection::All => true,
                    AttrProjection::None => false,
                    AttrProjection::Columns(cols) => cols.iter().any(|x| x == c),
                };
                if !wanted || val.is_null() || !seen.insert(c.as_str()) {
                    continue;
                }
                builder.attr(c, val.render());
                stats.attributes += 1;
            }
            if !node.bv.is_empty() {
                child_env.insert(node.bv.clone(), tuple.clone());
            }
        }
        for &child in tree.children(vid) {
            publish_node(tree, db, child, &child_env, builder, stats)?;
        }
        builder.close();
        return Ok(());
    }

    // Literal element: exactly one instance per parent, no tuple data.
    let Some(query) = &node.query else {
        builder.open(&node.tag);
        stats.elements += 1;
        for (k, v) in &node.static_attrs {
            builder.attr(k.clone(), v.clone());
            stats.attributes += 1;
        }
        for &child in tree.children(vid) {
            publish_node(tree, db, child, env, builder, stats)?;
        }
        builder.close();
        return Ok(());
    };

    let rel: Relation = eval_query(db, query, env)?;
    stats.queries_run += 1;
    stats.tuples_fetched += rel.len();
    for i in 0..rel.len() {
        builder.open(&node.tag);
        stats.elements += 1;
        for (k, v) in &node.static_attrs {
            builder.attr(k.clone(), v.clone());
            stats.attributes += 1;
        }
        // Projected columns become attributes; NULLs are omitted; on
        // duplicate column names the first occurrence wins.
        let mut seen = std::collections::HashSet::new();
        for (c, val) in rel.columns.iter().zip(&rel.rows[i]) {
            let wanted = match &node.attrs {
                AttrProjection::All => true,
                AttrProjection::None => false,
                AttrProjection::Columns(cols) => cols.iter().any(|x| x == c),
            };
            if !wanted || val.is_null() || !seen.insert(c.as_str()) {
                continue;
            }
            builder.attr(c, val.render());
            stats.attributes += 1;
        }
        if !tree.children(vid).is_empty() {
            let mut child_env = env.clone();
            child_env.insert(node.bv.clone(), rel.tuple(i));
            for &child in tree.children(vid) {
                publish_node(tree, db, child, &child_env, builder, stats)?;
            }
        }
        builder.close();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_tree::ViewNode;
    use xvc_rel::{parse_query, ColumnDef, ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in
            [(10, "palmer", 5, 1), (11, "drake", 4, 1), (12, "plaza", 5, 2)]
        {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        db
    }

    fn view() -> SchemaTree {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        t.add_child(
            metro,
            ViewNode::new(
                3,
                "hotel",
                "h",
                parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4")
                    .unwrap(),
            ),
        )
        .unwrap();
        t
    }

    #[test]
    fn publishes_nested_elements() {
        let (doc, stats) = publish(&view(), &db()).unwrap();
        let xml = doc.to_xml();
        assert_eq!(
            xml,
            "<metro metroid=\"1\" metroname=\"chicago\">\
             <hotel hotelid=\"10\" hotelname=\"palmer\" starrating=\"5\" metro_id=\"1\"/>\
             </metro>\
             <metro metroid=\"2\" metroname=\"nyc\">\
             <hotel hotelid=\"12\" hotelname=\"plaza\" starrating=\"5\" metro_id=\"2\"/>\
             </metro>"
        );
        assert_eq!(stats.elements, 4);
        // One metroarea query + one hotel query per metro tuple.
        assert_eq!(stats.queries_run, 3);
        assert_eq!(stats.tuples_fetched, 4);
    }

    #[test]
    fn null_attributes_omitted() {
        let mut database = db();
        database
            .insert(
                "metroarea",
                vec![Value::Int(3), Value::Null],
            )
            .unwrap();
        let (doc, _) = publish(&view(), &database).unwrap();
        assert!(doc.to_xml().contains("<metro metroid=\"3\"/>"));
    }

    #[test]
    fn empty_result_publishes_nothing() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid FROM metroarea WHERE metroid > 99").unwrap(),
        ))
        .unwrap();
        let (doc, stats) = publish(&t, &db()).unwrap();
        assert!(doc.is_empty());
        assert_eq!(stats.elements, 0);
        assert_eq!(stats.queries_run, 1);
    }

    #[test]
    fn publish_validates_first() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "x",
            "a",
            parse_query("SELECT * FROM hotel WHERE metro_id=$nope.metroid").unwrap(),
        ))
        .unwrap();
        assert!(matches!(
            publish(&t, &db()),
            Err(crate::Error::UnboundViewParameter { .. })
        ));
    }

    #[test]
    fn attr_projection_columns_filters_attributes() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::Columns(vec!["metroname".into()]);
        t.add_root_node(n).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        let xml = doc.to_xml();
        assert!(xml.contains("<metro metroname=\"chicago\"/>"), "{xml}");
        assert!(!xml.contains("metroid"), "{xml}");
    }

    #[test]
    fn attr_projection_none_publishes_bare_elements() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::None;
        t.add_root_node(n).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        assert_eq!(doc.to_xml(), "<metro/><metro/>");
    }

    #[test]
    fn literal_nodes_emit_once_with_static_attrs() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut lit = ViewNode::literal(2, "badge");
        lit.static_attrs = vec![("kind".into(), "gold".into())];
        t.add_child(metro, lit).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        assert_eq!(
            doc.to_xml(),
            "<metro metroid=\"1\"><badge kind=\"gold\"/></metro>\
             <metro metroid=\"2\"><badge kind=\"gold\"/></metro>"
        );
    }

    #[test]
    fn context_copy_reuses_bound_tuple() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let wrapper = t.add_child(metro, ViewNode::literal(2, "wrap")).unwrap();
        let mut copy = ViewNode::literal(3, "metro_copy");
        copy.context_tuple_of = Some("m".into());
        copy.attrs = crate::AttrProjection::All;
        t.add_child(wrapper, copy).unwrap();
        let (doc, stats) = publish(&t, &db()).unwrap();
        let xml = doc.to_xml();
        assert!(
            xml.contains("<wrap><metro_copy metroid=\"1\" metroname=\"chicago\"/></wrap>"),
            "{xml}"
        );
        // One query (metroarea) — the copies run none.
        assert_eq!(stats.queries_run, 1);
    }

    #[test]
    fn guards_gate_subtrees() {
        use xvc_rel::{BinOp, ScalarExpr};
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut guarded = ViewNode::literal(2, "only_chicago");
        guarded.guard = Some(ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::param("m", "metroname"),
            ScalarExpr::str("chicago"),
        ));
        t.add_child(metro, guarded).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        assert_eq!(
            doc.to_xml(),
            "<metro metroid=\"1\" metroname=\"chicago\"><only_chicago/></metro>\
             <metro metroid=\"2\" metroname=\"nyc\"/>"
        );
    }

    #[test]
    fn leaf_queries_not_run_for_absent_parents() {
        // Child tag queries run once per parent tuple — zero parent tuples
        // means the child query never runs.
        let mut t = view();
        let metro = t.find_by_paper_id(1).unwrap();
        t.node_mut(metro).unwrap().query = Some(
            parse_query("SELECT metroid, metroname FROM metroarea WHERE metroid > 99").unwrap(),
        );
        let (_, stats) = publish(&t, &db()).unwrap();
        assert_eq!(stats.queries_run, 1);
    }
}
