//! Publishing: evaluating a schema-tree query to an XML document, `v(I)`.
//!
//! The entry point is the [`Publisher`] builder: it owns a per-tree
//! **plan cache** (each node's tag query compiled once into an
//! [`xvc_rel::PreparedPlan`], executed once per binding), a bounded
//! per-publish **result memo** (repeated parent tuples with equal relevant
//! binding values reuse the child relation), and can evaluate sibling
//! subtrees in **parallel** (`std::thread::scope`) while keeping document
//! order and producing thread-count-independent statistics.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xvc_rel::{
    eval_query_stats, prepare, Catalog, Database, EvalOptions, EvalStats, NamedTuple, ParamEnv,
    PreparedPlan, Relation, ScalarExpr, SelectItem, SelectQuery,
};
use xvc_xml::{Document, TreeBuilder};

use crate::error::Result;
use crate::schema_tree::{AttrProjection, SchemaTree, ViewNodeId};

/// Materialization statistics for one publish run.
///
/// These are the paper's efficiency currency: the composed stylesheet view
/// wins precisely because it materializes fewer elements and runs fewer
/// tag queries than publishing the full view and transforming it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// XML elements created.
    pub elements: usize,
    /// Attributes attached.
    pub attributes: usize,
    /// Tag-query executions (one per parent tuple per child node).
    pub queries_run: usize,
    /// Tuples fetched across all tag-query executions.
    pub tuples_fetched: usize,
    /// Tag queries / guard probes compiled into a [`PreparedPlan`] during
    /// this publish (plan-cache misses).
    pub plans_prepared: usize,
    /// Nodes whose plan was already in the publisher's cache from an
    /// earlier publish against the same catalog (plan-cache hits).
    pub plan_cache_hits: usize,
    /// Tag-query executions served from the parameterized-result memo
    /// (equal relevant binding values, relation reused without touching
    /// the engine).
    pub memo_hits: usize,
    /// Memoizable executions that had to run the engine.
    pub memo_misses: usize,
}

impl PublishStats {
    /// Adds `other`'s counters into `self` (used to merge per-subtree
    /// statistics deterministically).
    pub fn absorb(&mut self, other: &PublishStats) {
        self.elements += other.elements;
        self.attributes += other.attributes;
        self.queries_run += other.queries_run;
        self.tuples_fetched += other.tuples_fetched;
        self.plans_prepared += other.plans_prepared;
        self.plan_cache_hits += other.plan_cache_hits;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }

    /// Fraction of plan lookups served by the cache:
    /// `hits / (hits + prepared)`, or `0.0` when no plans were looked up.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plans_prepared;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

/// One emitted element, recorded when publishing with a trace: which view
/// node produced it, at which document path, under which bindings.
///
/// This is the attribution layer the divergence reporter uses — given the
/// XML path of a wrong subtree it recovers the tag query and [`ParamEnv`]
/// that generated it.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Indexed element path, e.g. `/metro[2]/hotel[1]` (indices count
    /// same-tag siblings in document order, 1-based).
    pub path: String,
    /// The schema-tree node that emitted the element.
    pub view: ViewNodeId,
    /// The parameter environment its tag query (or guard) ran under.
    pub env: ParamEnv,
}

/// Per-element provenance of one publish run, in document order.
#[derive(Debug, Clone, Default)]
pub struct PublishTrace {
    /// One entry per emitted element, in document order.
    pub entries: Vec<TraceEntry>,
}

impl PublishTrace {
    /// Finds the entry for an exact indexed path.
    pub fn lookup(&self, path: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Finds the entry for the longest recorded prefix of `path` (the
    /// deepest emitted ancestor of a node that was never produced).
    pub fn deepest_ancestor(&self, path: &str) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| path == e.path || path.starts_with(&format!("{}/", e.path)))
            .max_by_key(|e| e.path.len())
    }
}

/// Everything one publish run produced.
#[derive(Debug)]
pub struct Published {
    /// The XML document `v(I)`.
    pub document: Document,
    /// Materialization counters (elements, queries, cache behavior).
    pub stats: PublishStats,
    /// Relational-engine work accumulated across every tag-query / guard
    /// evaluation of the run.
    pub eval: EvalStats,
    /// Per-element provenance; `Some` only when tracing was requested via
    /// [`Publisher::traced`].
    pub trace: Option<PublishTrace>,
}

/// Distinguishes a node's tag query from its emission-guard probe in the
/// plan cache and result memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Role {
    Tag,
    Guard,
}

type PlanKey = (u32, Role);

/// Compiled plans for one schema tree, valid for one catalog.
#[derive(Debug, Default)]
struct PlanCache {
    /// The catalog the cached plans were compiled against; a different
    /// catalog invalidates every plan.
    catalog: Option<Catalog>,
    plans: HashMap<PlanKey, PreparedPlan>,
}

/// Entries per subtree-task result memo; inserts are skipped beyond this.
const MEMO_CAP: usize = 256;

/// Builder-style publisher: configures tracing / parallelism / plan usage,
/// owns the plan cache, and evaluates a schema tree against database
/// instances.
///
/// ```no_run
/// # use xvc_view::{Publisher, SchemaTree};
/// # use xvc_rel::Database;
/// # fn demo(tree: &SchemaTree, db: &Database) -> xvc_view::Result<()> {
/// let mut publisher = Publisher::new(tree).traced(true).parallel(4);
/// let first = publisher.publish(db)?; // compiles and caches the plans
/// let again = publisher.publish(db)?; // reuses every cached plan
/// assert!(again.stats.plan_cache_hit_rate() > 0.0);
/// # Ok(()) }
/// ```
#[derive(Debug)]
pub struct Publisher<'t> {
    tree: &'t SchemaTree,
    tracing: bool,
    parallel: usize,
    prepared: bool,
    cache: PlanCache,
}

impl<'t> Publisher<'t> {
    /// A publisher for `tree`: untraced, single-threaded, prepared-plan
    /// execution enabled.
    pub fn new(tree: &'t SchemaTree) -> Self {
        Publisher {
            tree,
            tracing: false,
            parallel: 1,
            prepared: true,
            cache: PlanCache::default(),
        }
    }

    /// Record per-element provenance ([`Published::trace`]).
    pub fn traced(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Evaluate up to `n` root-level sibling subtrees concurrently.
    /// `0` and `1` both mean sequential. Document order and all statistics
    /// are independent of `n`.
    pub fn parallel(mut self, n: usize) -> Self {
        self.parallel = n.max(1);
        self
    }

    /// Use compiled [`PreparedPlan`]s and the result memo (`true`, the
    /// default), or force the tuple-at-a-time interpreter (`false`; used
    /// by benchmarks to measure the prepared path's win).
    pub fn prepared(mut self, on: bool) -> Self {
        self.prepared = on;
        self
    }

    /// Evaluates the schema tree against `db`, producing `v(I)` plus
    /// statistics (and a trace when requested).
    ///
    /// Plans cached by an earlier call are reused when the database's
    /// catalog is unchanged; the result memo never outlives one call, so
    /// database mutations between calls are always observed.
    pub fn publish(&mut self, db: &Database) -> Result<Published> {
        self.tree.validate()?;
        let mut stats = PublishStats::default();
        let catalog = db.catalog();
        if self.cache.catalog.as_ref() != Some(&catalog) {
            self.cache.plans.clear();
            self.cache.catalog = Some(catalog.clone());
        }
        if self.prepared {
            for vid in self.tree.node_ids() {
                let node = self.tree.node(vid).expect("non-root id");
                if let Some(q) = &node.query {
                    ensure_plan(&mut self.cache, vid, Role::Tag, q, &catalog, &mut stats);
                }
                if let Some(g) = &node.guard {
                    let probe = guard_probe(g);
                    ensure_plan(
                        &mut self.cache,
                        vid,
                        Role::Guard,
                        &probe,
                        &catalog,
                        &mut stats,
                    );
                }
            }
        }

        // Root pass (always sequential): evaluate root-level guards and tag
        // queries, and cut the document into one task per root element
        // instance. The decomposition — and therefore every per-task
        // counter — is independent of the thread count.
        let shared = Shared {
            tree: self.tree,
            db,
            plans: &self.cache.plans,
            use_plans: self.prepared,
            tracing: self.tracing,
        };
        let mut main = Worker::new(&shared, HashMap::new());
        let mut tasks: Vec<Task> = Vec::new();
        let mut root_counts: HashMap<String, usize> = HashMap::new();
        let env = ParamEnv::new();
        for &child in self.tree.children(self.tree.root()) {
            let node = self.tree.node(child).expect("non-root id");
            if let Some(guard) = &node.guard {
                main.stats.queries_run += 1;
                let probe = guard_probe(guard);
                if main
                    .run_tag_query(child, Role::Guard, &probe, &env)?
                    .is_empty()
                {
                    continue;
                }
            }
            let mut seed = |tag: &str| {
                let n = root_counts.entry(tag.to_owned()).or_insert(0);
                *n += 1;
                *n - 1
            };
            match &node.query {
                Some(q) if node.context_tuple_of.is_none() => {
                    let rel = main.run_tag_query(child, Role::Tag, q, &env)?;
                    main.stats.queries_run += 1;
                    main.stats.tuples_fetched += rel.len();
                    for i in 0..rel.len() {
                        tasks.push(Task {
                            vid: child,
                            tag: node.tag.clone(),
                            index: seed(&node.tag),
                            tuple: Some(rel.tuple(i)),
                        });
                    }
                }
                _ => {
                    tasks.push(Task {
                        vid: child,
                        tag: node.tag.clone(),
                        index: seed(&node.tag),
                        tuple: None,
                    });
                }
            }
        }

        let outs = run_tasks(&shared, &tasks, self.parallel);

        // Deterministic merge, in task (= document) order.
        stats.absorb(&main.stats);
        let mut eval = main.eval;
        let mut trace = main.trace;
        let mut builder = TreeBuilder::new();
        for out in outs {
            let out = out.expect("every task slot is filled")?;
            let kids: Vec<_> = out.doc.children(out.doc.root()).to_vec();
            for kid in kids {
                builder.import(&out.doc, kid);
            }
            stats.absorb(&out.stats);
            eval.absorb(&out.eval);
            trace.extend(out.trace);
        }
        Ok(Published {
            document: builder.finish(),
            stats,
            eval,
            trace: self.tracing.then_some(PublishTrace { entries: trace }),
        })
    }
}

/// Compiles `q` into the cache under `(vid, role)` unless already present.
/// Compilation failures are not fatal: the node simply falls back to the
/// interpreter (which will surface any genuine error at execution time,
/// and only if the node actually runs).
fn ensure_plan(
    cache: &mut PlanCache,
    vid: ViewNodeId,
    role: Role,
    q: &SelectQuery,
    catalog: &Catalog,
    stats: &mut PublishStats,
) {
    let key = (vid.index() as u32, role);
    match cache.plans.entry(key) {
        std::collections::hash_map::Entry::Occupied(_) => stats.plan_cache_hits += 1,
        std::collections::hash_map::Entry::Vacant(e) => {
            if let Ok(p) = prepare(q, catalog) {
                e.insert(p);
                stats.plans_prepared += 1;
            }
        }
    }
}

/// The `SELECT 1 WHERE guard` probe the publisher evaluates for emission
/// guards.
fn guard_probe(guard: &ScalarExpr) -> SelectQuery {
    let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
    probe.where_clause = Some(guard.clone());
    probe
}

/// Read-only state shared by every subtree task.
struct Shared<'a> {
    tree: &'a SchemaTree,
    db: &'a Database,
    plans: &'a HashMap<PlanKey, PreparedPlan>,
    use_plans: bool,
    tracing: bool,
}

/// One root-level element instance to publish: a query-node tuple, or a
/// literal / context-copy element.
struct Task {
    vid: ViewNodeId,
    tag: String,
    /// 0-based occurrence index of `tag` among root-level siblings, for
    /// indexed trace paths.
    index: usize,
    tuple: Option<NamedTuple>,
}

/// What one task produced: a document fragment (the element subtree) plus
/// its private counters and trace entries.
struct TaskOut {
    doc: Document,
    stats: PublishStats,
    eval: EvalStats,
    trace: Vec<TraceEntry>,
}

/// Runs every task — inline when `parallel <= 1`, else on a scoped thread
/// pool — returning results in task order.
fn run_tasks(shared: &Shared<'_>, tasks: &[Task], parallel: usize) -> Vec<Option<Result<TaskOut>>> {
    let n = parallel.clamp(1, tasks.len().max(1));
    if n <= 1 {
        return tasks.iter().map(|t| Some(run_task(shared, t))).collect();
    }
    let slots: Vec<Mutex<Option<Result<TaskOut>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let out = run_task(shared, task);
                *slots[i].lock().expect("task slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("task slot"))
        .collect()
}

fn run_task(shared: &Shared<'_>, task: &Task) -> Result<TaskOut> {
    let mut seed = HashMap::new();
    seed.insert(task.tag.clone(), task.index);
    let mut w = Worker::new(shared, seed);
    w.emit_instance(task.vid, &ParamEnv::new(), task.tuple.as_ref())?;
    Ok(TaskOut {
        doc: w.builder.finish(),
        stats: w.stats,
        eval: w.eval,
        trace: w.trace,
    })
}

/// Per-task publishing state: its own builder, counters, trace slice and
/// result memo (memoization is task-scoped so statistics cannot depend on
/// how tasks are spread over threads).
struct Worker<'a> {
    shared: &'a Shared<'a>,
    builder: TreeBuilder,
    stats: PublishStats,
    eval: EvalStats,
    trace: Vec<TraceEntry>,
    /// Indexed path segments of currently open elements.
    path: Vec<String>,
    /// Per open level: same-tag sibling counts emitted so far (the task's
    /// base level is the first entry).
    sibling_counts: Vec<HashMap<String, usize>>,
    /// `(node, role, rendered binding values)` → relation.
    memo: HashMap<(u32, Role, String), Relation>,
}

impl<'a> Worker<'a> {
    fn new(shared: &'a Shared<'a>, seed_counts: HashMap<String, usize>) -> Self {
        Worker {
            shared,
            builder: TreeBuilder::new(),
            stats: PublishStats::default(),
            eval: EvalStats::default(),
            trace: Vec::new(),
            path: Vec::new(),
            sibling_counts: vec![seed_counts],
            memo: HashMap::new(),
        }
    }

    /// Executes a node's tag query (or guard probe): through its cached
    /// prepared plan and the result memo when available, else through the
    /// interpreter.
    fn run_tag_query(
        &mut self,
        vid: ViewNodeId,
        role: Role,
        q: &SelectQuery,
        env: &ParamEnv,
    ) -> Result<Relation> {
        if self.shared.use_plans {
            if let Some(plan) = self.shared.plans.get(&(vid.index() as u32, role)) {
                if let Some(key) = memo_key(plan.slots(), env) {
                    let mk = (vid.index() as u32, role, key);
                    if let Some(hit) = self.memo.get(&mk) {
                        self.stats.memo_hits += 1;
                        return Ok(hit.clone());
                    }
                    let rel = plan.execute_stats(self.shared.db, env, &mut self.eval)?;
                    self.stats.memo_misses += 1;
                    if self.memo.len() < MEMO_CAP {
                        self.memo.insert(mk, rel.clone());
                    }
                    return Ok(rel);
                }
                return Ok(plan.execute_stats(self.shared.db, env, &mut self.eval)?);
            }
        }
        Ok(eval_query_stats(
            self.shared.db,
            q,
            env,
            EvalOptions::default(),
            &mut self.eval,
        )?)
    }

    /// Opens an element, maintaining the indexed path and trace.
    fn open(&mut self, tag: &str, vid: ViewNodeId, env: &ParamEnv) {
        self.builder.open(tag);
        self.stats.elements += 1;
        let level = self
            .sibling_counts
            .last_mut()
            .expect("sibling_counts is never empty");
        let n = level.entry(tag.to_owned()).or_insert(0);
        *n += 1;
        self.path.push(format!("{tag}[{n}]"));
        self.sibling_counts.push(HashMap::new());
        if self.shared.tracing {
            self.trace.push(TraceEntry {
                path: format!("/{}", self.path.join("/")),
                view: vid,
                env: env.clone(),
            });
        }
    }

    fn close(&mut self) {
        self.builder.close();
        self.path.pop();
        self.sibling_counts.pop();
    }

    fn emit_attr(&mut self, name: &str, value: String) {
        self.builder.attr(name, value);
        self.stats.attributes += 1;
    }

    fn emit_static_attrs(&mut self, vid: ViewNodeId) {
        let node = self.shared.tree.node(vid).expect("caller validated vid");
        for (k, v) in node.static_attrs.clone() {
            self.emit_attr(&k, v);
        }
    }

    /// Emits projected tuple columns as attributes: NULLs omitted, first
    /// occurrence wins on duplicate column names.
    fn emit_tuple_attrs(
        &mut self,
        attrs: &AttrProjection,
        columns: &[String],
        values: &[xvc_rel::Value],
    ) {
        let mut seen = std::collections::HashSet::new();
        for (c, val) in columns.iter().zip(values) {
            let wanted = match attrs {
                AttrProjection::All => true,
                AttrProjection::None => false,
                AttrProjection::Columns(cols) => cols.iter().any(|x| x == c),
            };
            if !wanted || val.is_null() || !seen.insert(c.clone()) {
                continue;
            }
            self.emit_attr(c, val.render());
        }
    }

    /// Publishes one already-guarded element instance: the entry point of a
    /// root-level task (guards of root children run in the main pass).
    fn emit_instance(
        &mut self,
        vid: ViewNodeId,
        env: &ParamEnv,
        tuple: Option<&NamedTuple>,
    ) -> Result<()> {
        let tree = self.shared.tree;
        let node = tree.node(vid).expect("non-root id");

        if let Some(var) = &node.context_tuple_of {
            self.open(&node.tag, vid, env);
            self.emit_static_attrs(vid);
            let mut child_env = env.clone();
            if let Some(t) = env.get(var) {
                let t = t.clone();
                self.emit_tuple_attrs(&node.attrs.clone(), &t.columns, &t.values);
                if !node.bv.is_empty() {
                    child_env.insert(node.bv.clone(), t);
                }
            }
            for &child in tree.children(vid) {
                self.publish_node(child, &child_env)?;
            }
            self.close();
            return Ok(());
        }

        match (&node.query, tuple) {
            (Some(_), Some(t)) => {
                self.open(&node.tag, vid, env);
                self.emit_static_attrs(vid);
                self.emit_tuple_attrs(&node.attrs.clone(), &t.columns, &t.values);
                if !tree.children(vid).is_empty() {
                    let mut child_env = env.clone();
                    child_env.insert(node.bv.clone(), t.clone());
                    for &child in tree.children(vid) {
                        self.publish_node(child, &child_env)?;
                    }
                }
                self.close();
            }
            (None, _) => {
                self.open(&node.tag, vid, env);
                self.emit_static_attrs(vid);
                for &child in tree.children(vid) {
                    self.publish_node(child, env)?;
                }
                self.close();
            }
            (Some(_), None) => unreachable!("query-node tasks always carry a tuple"),
        }
        Ok(())
    }

    /// Full per-node logic (guard, context copy, literal, query) for
    /// non-root-level descendants.
    fn publish_node(&mut self, vid: ViewNodeId, env: &ParamEnv) -> Result<()> {
        let tree = self.shared.tree;
        let node = tree
            .node(vid)
            .expect("publish_node is never called on root");

        // Emission guard: `SELECT 1 WHERE guard` over the current bindings.
        if let Some(guard) = &node.guard {
            let probe = guard_probe(guard);
            self.stats.queries_run += 1;
            if self
                .run_tag_query(vid, Role::Guard, &probe, env)?
                .is_empty()
            {
                return Ok(());
            }
        }

        if node.context_tuple_of.is_some() || node.query.is_none() {
            return self.emit_instance(vid, env, None);
        }

        let query = node.query.as_ref().expect("query node");
        let rel: Relation = self.run_tag_query(vid, Role::Tag, query, env)?;
        self.stats.queries_run += 1;
        self.stats.tuples_fetched += rel.len();
        for i in 0..rel.len() {
            self.emit_instance(vid, env, Some(&rel.tuple(i)))?;
        }
        Ok(())
    }
}

/// The memo key for one execution: the rendered values of every binding
/// slot the plan actually reads. `None` (memo bypass) when a slot cannot be
/// resolved — the execution then reports the unbound parameter itself.
fn memo_key(slots: &[(String, String)], env: &ParamEnv) -> Option<String> {
    let mut key = String::new();
    for (var, column) in slots {
        let v = env.get(var)?.get(column)?;
        key.push_str(&format!("{v:?}"));
        key.push('\u{1f}');
    }
    Some(key)
}

/// Evaluates the schema-tree query against a database instance, producing
/// the XML document `v(I)` plus materialization statistics.
#[deprecated(since = "0.2.0", note = "use `Publisher::new(tree).publish(db)`")]
pub fn publish(tree: &SchemaTree, db: &Database) -> Result<(Document, PublishStats)> {
    let p = Publisher::new(tree).publish(db)?;
    Ok((p.document, p.stats))
}

/// `publish` that also reports the relational engine's work counters
/// accumulated across every tag-query / guard evaluation of the run.
#[deprecated(since = "0.2.0", note = "use `Publisher::new(tree).publish(db)`")]
pub fn publish_with_stats(
    tree: &SchemaTree,
    db: &Database,
) -> Result<(Document, PublishStats, EvalStats)> {
    let p = Publisher::new(tree).publish(db)?;
    Ok((p.document, p.stats, p.eval))
}

/// `publish` that additionally records per-element provenance (used by
/// the divergence reporter).
#[deprecated(
    since = "0.2.0",
    note = "use `Publisher::new(tree).traced(true).publish(db)`"
)]
pub fn publish_traced(
    tree: &SchemaTree,
    db: &Database,
) -> Result<(Document, PublishStats, PublishTrace)> {
    let p = Publisher::new(tree).traced(true).publish(db)?;
    Ok((p.document, p.stats, p.trace.expect("tracing was requested")))
}

/// Convenience: number of elements `v(I)` would materialize.
#[deprecated(
    since = "0.2.0",
    note = "use `Publisher::new(tree).publish(db)` and read `stats.elements`"
)]
pub fn publish_node_count(tree: &SchemaTree, db: &Database) -> Result<usize> {
    Ok(Publisher::new(tree).publish(db)?.stats.elements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_tree::ViewNode;
    use xvc_rel::{parse_query, ColumnDef, ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in [
            (10, "palmer", 5, 1),
            (11, "drake", 4, 1),
            (12, "plaza", 5, 2),
        ] {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        db
    }

    fn view() -> SchemaTree {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        t.add_child(
            metro,
            ViewNode::new(
                3,
                "hotel",
                "h",
                parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4")
                    .unwrap(),
            ),
        )
        .unwrap();
        t
    }

    fn publish_one(tree: &SchemaTree, db: &Database) -> Result<Published> {
        Publisher::new(tree).publish(db)
    }

    #[test]
    fn publishes_nested_elements() {
        let p = publish_one(&view(), &db()).unwrap();
        let xml = p.document.to_xml();
        assert_eq!(
            xml,
            "<metro metroid=\"1\" metroname=\"chicago\">\
             <hotel hotelid=\"10\" hotelname=\"palmer\" starrating=\"5\" metro_id=\"1\"/>\
             </metro>\
             <metro metroid=\"2\" metroname=\"nyc\">\
             <hotel hotelid=\"12\" hotelname=\"plaza\" starrating=\"5\" metro_id=\"2\"/>\
             </metro>"
        );
        assert_eq!(p.stats.elements, 4);
        // One metroarea query + one hotel query per metro tuple.
        assert_eq!(p.stats.queries_run, 3);
        assert_eq!(p.stats.tuples_fetched, 4);
        assert!(p.trace.is_none());
    }

    #[test]
    fn null_attributes_omitted() {
        let mut database = db();
        database
            .insert("metroarea", vec![Value::Int(3), Value::Null])
            .unwrap();
        let p = publish_one(&view(), &database).unwrap();
        assert!(p.document.to_xml().contains("<metro metroid=\"3\"/>"));
    }

    #[test]
    fn empty_result_publishes_nothing() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid FROM metroarea WHERE metroid > 99").unwrap(),
        ))
        .unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert!(p.document.is_empty());
        assert_eq!(p.stats.elements, 0);
        assert_eq!(p.stats.queries_run, 1);
    }

    #[test]
    fn publish_validates_first() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "x",
            "a",
            parse_query("SELECT * FROM hotel WHERE metro_id=$nope.metroid").unwrap(),
        ))
        .unwrap();
        assert!(matches!(
            publish_one(&t, &db()),
            Err(crate::Error::UnboundViewParameter { .. })
        ));
    }

    #[test]
    fn attr_projection_columns_filters_attributes() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::Columns(vec!["metroname".into()]);
        t.add_root_node(n).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        let xml = p.document.to_xml();
        assert!(xml.contains("<metro metroname=\"chicago\"/>"), "{xml}");
        assert!(!xml.contains("metroid"), "{xml}");
    }

    #[test]
    fn attr_projection_none_publishes_bare_elements() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::None;
        t.add_root_node(n).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(p.document.to_xml(), "<metro/><metro/>");
    }

    #[test]
    fn literal_nodes_emit_once_with_static_attrs() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut lit = ViewNode::literal(2, "badge");
        lit.static_attrs = vec![("kind".into(), "gold".into())];
        t.add_child(metro, lit).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(
            p.document.to_xml(),
            "<metro metroid=\"1\"><badge kind=\"gold\"/></metro>\
             <metro metroid=\"2\"><badge kind=\"gold\"/></metro>"
        );
    }

    #[test]
    fn context_copy_reuses_bound_tuple() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let wrapper = t.add_child(metro, ViewNode::literal(2, "wrap")).unwrap();
        let mut copy = ViewNode::literal(3, "metro_copy");
        copy.context_tuple_of = Some("m".into());
        copy.attrs = crate::AttrProjection::All;
        t.add_child(wrapper, copy).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        let xml = p.document.to_xml();
        assert!(
            xml.contains("<wrap><metro_copy metroid=\"1\" metroname=\"chicago\"/></wrap>"),
            "{xml}"
        );
        // One query (metroarea) — the copies run none.
        assert_eq!(p.stats.queries_run, 1);
    }

    #[test]
    fn guards_gate_subtrees() {
        use xvc_rel::BinOp;
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut guarded = ViewNode::literal(2, "only_chicago");
        guarded.guard = Some(ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::param("m", "metroname"),
            ScalarExpr::str("chicago"),
        ));
        t.add_child(metro, guarded).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(
            p.document.to_xml(),
            "<metro metroid=\"1\" metroname=\"chicago\"><only_chicago/></metro>\
             <metro metroid=\"2\" metroname=\"nyc\"/>"
        );
    }

    #[test]
    fn trace_records_indexed_paths_and_envs() {
        let p = Publisher::new(&view()).traced(true).publish(&db()).unwrap();
        let trace = p.trace.expect("traced publish");
        assert_eq!(trace.entries.len(), 4); // 2 metros + 1 hotel each
        let paths: Vec<&str> = trace.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "/metro[1]",
                "/metro[1]/hotel[1]",
                "/metro[2]",
                "/metro[2]/hotel[1]"
            ]
        );
        // The hotel under the second metro ran with $m bound to nyc.
        let entry = trace.lookup("/metro[2]/hotel[1]").unwrap();
        let m = entry.env.get("m").unwrap();
        assert_eq!(m.get("metroname"), Some(&Value::Str("nyc".into())));
        // deepest_ancestor finds the emitted parent of a missing child.
        let anc = trace
            .deepest_ancestor("/metro[2]/hotel[1]/room[1]")
            .unwrap();
        assert_eq!(anc.path, "/metro[2]/hotel[1]");
        assert!(!p.document.is_empty());
    }

    #[test]
    fn publish_with_stats_reports_engine_work() {
        let p = publish_one(&view(), &db()).unwrap();
        assert_eq!(p.stats.queries_run, 3);
        // metroarea scan (2 rows) + two parameterized hotel scans (3 rows
        // each), both carrying the $m binding.
        assert_eq!(p.eval.queries, 3);
        assert_eq!(p.eval.param_queries, 2);
        assert_eq!(p.eval.rows_scanned, 2 + 3 + 3);
    }

    #[test]
    fn leaf_queries_not_run_for_absent_parents() {
        // Child tag queries run once per parent tuple — zero parent tuples
        // means the child query never runs.
        let mut t = view();
        let metro = t.find_by_paper_id(1).unwrap();
        t.node_mut(metro).unwrap().query = Some(
            parse_query("SELECT metroid, metroname FROM metroarea WHERE metroid > 99").unwrap(),
        );
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(p.stats.queries_run, 1);
    }

    #[test]
    fn second_publish_hits_the_plan_cache() {
        let tree = view();
        let db = db();
        let mut publisher = Publisher::new(&tree);
        let first = publisher.publish(&db).unwrap();
        assert_eq!(first.stats.plans_prepared, 2);
        assert_eq!(first.stats.plan_cache_hits, 0);
        let second = publisher.publish(&db).unwrap();
        assert_eq!(second.stats.plans_prepared, 0);
        assert_eq!(second.stats.plan_cache_hits, 2);
        assert!(second.stats.plan_cache_hit_rate() > 0.99);
        assert_eq!(first.document.to_xml(), second.document.to_xml());
        // Engine work is identical on the warm path.
        assert_eq!(first.eval, second.eval);
    }

    #[test]
    fn interpreter_and_prepared_paths_agree() {
        let tree = view();
        let db = db();
        let prepared = Publisher::new(&tree).publish(&db).unwrap();
        let interpreted = Publisher::new(&tree).prepared(false).publish(&db).unwrap();
        assert_eq!(prepared.document.to_xml(), interpreted.document.to_xml());
        assert_eq!(prepared.eval, interpreted.eval);
        assert_eq!(interpreted.stats.plans_prepared, 0);
    }

    #[test]
    fn memo_reuses_equal_bindings() {
        // metro -> hotel -> home: the `home` plan reads only $h.metro_id,
        // which is equal for both hotels under metro 1, so the second
        // sibling is a memo hit inside that subtree task (the memo is
        // task-scoped, so reuse never crosses root-level siblings).
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                ViewNode::new(
                    2,
                    "hotel",
                    "h",
                    parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap(),
                ),
            )
            .unwrap();
        t.add_child(
            hotel,
            ViewNode::new(
                3,
                "home",
                "x",
                parse_query("SELECT metroname FROM metroarea WHERE metroid=$h.metro_id").unwrap(),
            ),
        )
        .unwrap();
        let database = db();
        let p = publish_one(&t, &database).unwrap();
        // metro 1 has two hotels with the same metro_id: one hit.
        assert_eq!(p.stats.memo_hits, 1, "{:?}", p.stats);
        // The memoized relation still counts as a query run.
        assert_eq!(p.stats.queries_run, 1 + 2 + 3);
        // ... but skips the engine entirely.
        assert_eq!(p.eval.queries, 1 + 2 + 2);
        // Document content identical to the interpreter's.
        let i = Publisher::new(&t)
            .prepared(false)
            .publish(&database)
            .unwrap();
        assert_eq!(p.document.to_xml(), i.document.to_xml());
    }

    #[test]
    fn compat_shims_still_work() {
        #![allow(deprecated)]
        let tree = view();
        let database = db();
        let (doc, stats) = publish(&tree, &database).unwrap();
        assert_eq!(stats.elements, 4);
        let (doc2, _, eval) = publish_with_stats(&tree, &database).unwrap();
        assert_eq!(doc.to_xml(), doc2.to_xml());
        assert_eq!(eval.queries, 3);
        let (_, _, trace) = publish_traced(&tree, &database).unwrap();
        assert_eq!(trace.entries.len(), 4);
        assert_eq!(publish_node_count(&tree, &database).unwrap(), 4);
    }
}
