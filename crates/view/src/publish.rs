//! Publishing: evaluating a schema-tree query to an XML document, `v(I)`.

use xvc_rel::{eval_query_stats, Database, EvalOptions, EvalStats, ParamEnv, Relation};
use xvc_xml::{Document, TreeBuilder};

use crate::error::Result;
use crate::schema_tree::{AttrProjection, SchemaTree, ViewNodeId};

/// Materialization statistics for one publish run.
///
/// These are the paper's efficiency currency: the composed stylesheet view
/// wins precisely because it materializes fewer elements and runs fewer
/// tag queries than publishing the full view and transforming it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// XML elements created.
    pub elements: usize,
    /// Attributes attached.
    pub attributes: usize,
    /// Tag-query executions (one per parent tuple per child node).
    pub queries_run: usize,
    /// Tuples fetched across all tag-query executions.
    pub tuples_fetched: usize,
}

/// One emitted element, recorded when publishing with a trace: which view
/// node produced it, at which document path, under which bindings.
///
/// This is the attribution layer the divergence reporter uses — given the
/// XML path of a wrong subtree it recovers the tag query and [`ParamEnv`]
/// that generated it.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Indexed element path, e.g. `/metro[2]/hotel[1]` (indices count
    /// same-tag siblings in document order, 1-based).
    pub path: String,
    /// The schema-tree node that emitted the element.
    pub view: ViewNodeId,
    /// The parameter environment its tag query (or guard) ran under.
    pub env: ParamEnv,
}

/// Per-element provenance of one publish run, in document order.
#[derive(Debug, Clone, Default)]
pub struct PublishTrace {
    /// One entry per emitted element, in document order.
    pub entries: Vec<TraceEntry>,
}

impl PublishTrace {
    /// Finds the entry for an exact indexed path.
    pub fn lookup(&self, path: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Finds the entry for the longest recorded prefix of `path` (the
    /// deepest emitted ancestor of a node that was never produced).
    pub fn deepest_ancestor(&self, path: &str) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| path == e.path || path.starts_with(&format!("{}/", e.path)))
            .max_by_key(|e| e.path.len())
    }
}

/// Evaluates the schema-tree query against a database instance, producing
/// the XML document `v(I)` plus materialization statistics.
pub fn publish(tree: &SchemaTree, db: &Database) -> Result<(Document, PublishStats)> {
    let (doc, stats, _) = publish_with_stats(tree, db)?;
    Ok((doc, stats))
}

/// [`publish`] that also reports the relational engine's work counters
/// accumulated across every tag-query / guard evaluation of the run.
pub fn publish_with_stats(
    tree: &SchemaTree,
    db: &Database,
) -> Result<(Document, PublishStats, EvalStats)> {
    let (doc, stats, eval, _) = Publisher::new(tree, db, false).run()?;
    Ok((doc, stats, eval))
}

/// [`publish`] that additionally records per-element provenance (used by
/// the divergence reporter).
pub fn publish_traced(
    tree: &SchemaTree,
    db: &Database,
) -> Result<(Document, PublishStats, PublishTrace)> {
    let (doc, stats, _, trace) = Publisher::new(tree, db, true).run()?;
    Ok((doc, stats, trace))
}

/// Convenience: number of elements `v(I)` would materialize.
pub fn publish_node_count(tree: &SchemaTree, db: &Database) -> Result<usize> {
    publish(tree, db).map(|(_, s)| s.elements)
}

struct Publisher<'a> {
    tree: &'a SchemaTree,
    db: &'a Database,
    builder: TreeBuilder,
    stats: PublishStats,
    eval: EvalStats,
    tracing: bool,
    trace: PublishTrace,
    /// Indexed path segments of currently open elements.
    path: Vec<String>,
    /// Per open level: same-tag sibling counts emitted so far (the root
    /// level is the first entry).
    sibling_counts: Vec<std::collections::HashMap<String, usize>>,
}

impl<'a> Publisher<'a> {
    fn new(tree: &'a SchemaTree, db: &'a Database, tracing: bool) -> Self {
        Publisher {
            tree,
            db,
            builder: TreeBuilder::new(),
            stats: PublishStats::default(),
            eval: EvalStats::default(),
            tracing,
            trace: PublishTrace::default(),
            path: Vec::new(),
            sibling_counts: vec![std::collections::HashMap::new()],
        }
    }

    fn run(mut self) -> Result<(Document, PublishStats, EvalStats, PublishTrace)> {
        self.tree.validate()?;
        let env = ParamEnv::new();
        for &child in self.tree.children(self.tree.root()) {
            self.publish_node(child, &env)?;
        }
        Ok((self.builder.finish(), self.stats, self.eval, self.trace))
    }

    fn run_query(&mut self, q: &xvc_rel::SelectQuery, env: &ParamEnv) -> Result<Relation> {
        Ok(eval_query_stats(
            self.db,
            q,
            env,
            EvalOptions::default(),
            &mut self.eval,
        )?)
    }

    /// Opens an element, maintaining the indexed path and trace.
    fn open(&mut self, tag: &str, vid: ViewNodeId, env: &ParamEnv) {
        self.builder.open(tag);
        self.stats.elements += 1;
        let level = self
            .sibling_counts
            .last_mut()
            .expect("sibling_counts is never empty");
        let n = level.entry(tag.to_owned()).or_insert(0);
        *n += 1;
        self.path.push(format!("{tag}[{n}]"));
        self.sibling_counts.push(std::collections::HashMap::new());
        if self.tracing {
            self.trace.entries.push(TraceEntry {
                path: format!("/{}", self.path.join("/")),
                view: vid,
                env: env.clone(),
            });
        }
    }

    fn close(&mut self) {
        self.builder.close();
        self.path.pop();
        self.sibling_counts.pop();
    }

    fn emit_attr(&mut self, name: &str, value: String) {
        self.builder.attr(name, value);
        self.stats.attributes += 1;
    }

    fn emit_static_attrs(&mut self, vid: ViewNodeId) {
        let tree = self.tree;
        let node = tree.node(vid).expect("caller validated vid");
        for (k, v) in &node.static_attrs {
            self.emit_attr(k, v.clone());
        }
    }

    /// Emits projected tuple columns as attributes: NULLs omitted, first
    /// occurrence wins on duplicate column names.
    fn emit_tuple_attrs(
        &mut self,
        attrs: &AttrProjection,
        columns: &[String],
        values: &[xvc_rel::Value],
    ) {
        let mut seen = std::collections::HashSet::new();
        for (c, val) in columns.iter().zip(values) {
            let wanted = match attrs {
                AttrProjection::All => true,
                AttrProjection::None => false,
                AttrProjection::Columns(cols) => cols.iter().any(|x| x == c),
            };
            if !wanted || val.is_null() || !seen.insert(c.clone()) {
                continue;
            }
            self.emit_attr(c, val.render());
        }
    }

    fn publish_node(&mut self, vid: ViewNodeId, env: &ParamEnv) -> Result<()> {
        let tree = self.tree;
        let node = tree
            .node(vid)
            .expect("publish_node is never called on root");

        // Emission guard: `SELECT 1 WHERE guard` over the current bindings.
        if let Some(guard) = &node.guard {
            let mut probe = xvc_rel::SelectQuery::new(
                vec![xvc_rel::SelectItem::expr(xvc_rel::ScalarExpr::int(1))],
                vec![],
            );
            probe.where_clause = Some(guard.clone());
            self.stats.queries_run += 1;
            if self.run_query(&probe, env)?.is_empty() {
                return Ok(());
            }
        }

        // Context-copy element: one instance per parent, attributes from
        // the tuple already bound to `$var` in the environment.
        if let Some(var) = &node.context_tuple_of {
            self.open(&node.tag, vid, env);
            self.emit_static_attrs(vid);
            let mut child_env = env.clone();
            if let Some(tuple) = env.get(var) {
                self.emit_tuple_attrs(&node.attrs, &tuple.columns, &tuple.values);
                if !node.bv.is_empty() {
                    child_env.insert(node.bv.clone(), tuple.clone());
                }
            }
            for &child in tree.children(vid) {
                self.publish_node(child, &child_env)?;
            }
            self.close();
            return Ok(());
        }

        // Literal element: exactly one instance per parent, no tuple data.
        let Some(query) = &node.query else {
            self.open(&node.tag, vid, env);
            self.emit_static_attrs(vid);
            for &child in tree.children(vid) {
                self.publish_node(child, env)?;
            }
            self.close();
            return Ok(());
        };

        let rel: Relation = self.run_query(query, env)?;
        self.stats.queries_run += 1;
        self.stats.tuples_fetched += rel.len();
        for i in 0..rel.len() {
            self.open(&node.tag, vid, env);
            self.emit_static_attrs(vid);
            self.emit_tuple_attrs(&node.attrs, &rel.columns, &rel.rows[i]);
            if !tree.children(vid).is_empty() {
                let mut child_env = env.clone();
                child_env.insert(node.bv.clone(), rel.tuple(i));
                for &child in tree.children(vid) {
                    self.publish_node(child, &child_env)?;
                }
            }
            self.close();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_tree::ViewNode;
    use xvc_rel::{parse_query, ColumnDef, ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in [
            (10, "palmer", 5, 1),
            (11, "drake", 4, 1),
            (12, "plaza", 5, 2),
        ] {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        db
    }

    fn view() -> SchemaTree {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        t.add_child(
            metro,
            ViewNode::new(
                3,
                "hotel",
                "h",
                parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4")
                    .unwrap(),
            ),
        )
        .unwrap();
        t
    }

    #[test]
    fn publishes_nested_elements() {
        let (doc, stats) = publish(&view(), &db()).unwrap();
        let xml = doc.to_xml();
        assert_eq!(
            xml,
            "<metro metroid=\"1\" metroname=\"chicago\">\
             <hotel hotelid=\"10\" hotelname=\"palmer\" starrating=\"5\" metro_id=\"1\"/>\
             </metro>\
             <metro metroid=\"2\" metroname=\"nyc\">\
             <hotel hotelid=\"12\" hotelname=\"plaza\" starrating=\"5\" metro_id=\"2\"/>\
             </metro>"
        );
        assert_eq!(stats.elements, 4);
        // One metroarea query + one hotel query per metro tuple.
        assert_eq!(stats.queries_run, 3);
        assert_eq!(stats.tuples_fetched, 4);
    }

    #[test]
    fn null_attributes_omitted() {
        let mut database = db();
        database
            .insert("metroarea", vec![Value::Int(3), Value::Null])
            .unwrap();
        let (doc, _) = publish(&view(), &database).unwrap();
        assert!(doc.to_xml().contains("<metro metroid=\"3\"/>"));
    }

    #[test]
    fn empty_result_publishes_nothing() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid FROM metroarea WHERE metroid > 99").unwrap(),
        ))
        .unwrap();
        let (doc, stats) = publish(&t, &db()).unwrap();
        assert!(doc.is_empty());
        assert_eq!(stats.elements, 0);
        assert_eq!(stats.queries_run, 1);
    }

    #[test]
    fn publish_validates_first() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "x",
            "a",
            parse_query("SELECT * FROM hotel WHERE metro_id=$nope.metroid").unwrap(),
        ))
        .unwrap();
        assert!(matches!(
            publish(&t, &db()),
            Err(crate::Error::UnboundViewParameter { .. })
        ));
    }

    #[test]
    fn attr_projection_columns_filters_attributes() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::Columns(vec!["metroname".into()]);
        t.add_root_node(n).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        let xml = doc.to_xml();
        assert!(xml.contains("<metro metroname=\"chicago\"/>"), "{xml}");
        assert!(!xml.contains("metroid"), "{xml}");
    }

    #[test]
    fn attr_projection_none_publishes_bare_elements() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::None;
        t.add_root_node(n).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        assert_eq!(doc.to_xml(), "<metro/><metro/>");
    }

    #[test]
    fn literal_nodes_emit_once_with_static_attrs() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut lit = ViewNode::literal(2, "badge");
        lit.static_attrs = vec![("kind".into(), "gold".into())];
        t.add_child(metro, lit).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        assert_eq!(
            doc.to_xml(),
            "<metro metroid=\"1\"><badge kind=\"gold\"/></metro>\
             <metro metroid=\"2\"><badge kind=\"gold\"/></metro>"
        );
    }

    #[test]
    fn context_copy_reuses_bound_tuple() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let wrapper = t.add_child(metro, ViewNode::literal(2, "wrap")).unwrap();
        let mut copy = ViewNode::literal(3, "metro_copy");
        copy.context_tuple_of = Some("m".into());
        copy.attrs = crate::AttrProjection::All;
        t.add_child(wrapper, copy).unwrap();
        let (doc, stats) = publish(&t, &db()).unwrap();
        let xml = doc.to_xml();
        assert!(
            xml.contains("<wrap><metro_copy metroid=\"1\" metroname=\"chicago\"/></wrap>"),
            "{xml}"
        );
        // One query (metroarea) — the copies run none.
        assert_eq!(stats.queries_run, 1);
    }

    #[test]
    fn guards_gate_subtrees() {
        use xvc_rel::{BinOp, ScalarExpr};
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut guarded = ViewNode::literal(2, "only_chicago");
        guarded.guard = Some(ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::param("m", "metroname"),
            ScalarExpr::str("chicago"),
        ));
        t.add_child(metro, guarded).unwrap();
        let (doc, _) = publish(&t, &db()).unwrap();
        assert_eq!(
            doc.to_xml(),
            "<metro metroid=\"1\" metroname=\"chicago\"><only_chicago/></metro>\
             <metro metroid=\"2\" metroname=\"nyc\"/>"
        );
    }

    #[test]
    fn trace_records_indexed_paths_and_envs() {
        let (doc, _, trace) = publish_traced(&view(), &db()).unwrap();
        assert_eq!(trace.entries.len(), 4); // 2 metros + 1 hotel each
        let paths: Vec<&str> = trace.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "/metro[1]",
                "/metro[1]/hotel[1]",
                "/metro[2]",
                "/metro[2]/hotel[1]"
            ]
        );
        // The hotel under the second metro ran with $m bound to nyc.
        let entry = trace.lookup("/metro[2]/hotel[1]").unwrap();
        let m = entry.env.get("m").unwrap();
        assert_eq!(m.get("metroname"), Some(&Value::Str("nyc".into())));
        // deepest_ancestor finds the emitted parent of a missing child.
        let anc = trace
            .deepest_ancestor("/metro[2]/hotel[1]/room[1]")
            .unwrap();
        assert_eq!(anc.path, "/metro[2]/hotel[1]");
        assert!(!doc.is_empty());
    }

    #[test]
    fn publish_with_stats_reports_engine_work() {
        let (_, stats, eval) = publish_with_stats(&view(), &db()).unwrap();
        assert_eq!(stats.queries_run, 3);
        // metroarea scan (2 rows) + two parameterized hotel scans (3 rows
        // each), both carrying the $m binding.
        assert_eq!(eval.queries, 3);
        assert_eq!(eval.param_queries, 2);
        assert_eq!(eval.rows_scanned, 2 + 3 + 3);
    }

    #[test]
    fn leaf_queries_not_run_for_absent_parents() {
        // Child tag queries run once per parent tuple — zero parent tuples
        // means the child query never runs.
        let mut t = view();
        let metro = t.find_by_paper_id(1).unwrap();
        t.node_mut(metro).unwrap().query = Some(
            parse_query("SELECT metroid, metroname FROM metroarea WHERE metroid > 99").unwrap(),
        );
        let (_, stats) = publish(&t, &db()).unwrap();
        assert_eq!(stats.queries_run, 1);
    }
}
