//! Publishing: evaluating a schema-tree query to an XML document, `v(I)`.
//!
//! The public entry point is [`crate::Engine`] / [`crate::Session`] (see
//! the `engine` module); this module holds the execution machinery those
//! drive: the **plan-cache** types (each node's tag query compiled once
//! into an [`xvc_rel::PreparedPlan`]), **set-oriented** publishing (a
//! breadth-first frontier walk running one
//! [`xvc_rel::PreparedPlan::execute_batch_stats`] per (view node,
//! frontier) instead of one execution per parent tuple), a bounded
//! per-task **result memo** (repeated parent tuples with equal relevant
//! binding values reuse the child relation), **parallel** sibling-subtree
//! evaluation (`std::thread::scope`) that keeps document order and
//! thread-count-independent statistics, and the **delta-republish** graft
//! walk.

use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xvc_rel::{
    eval_query_stats, Database, EvalOptions, EvalStats, NamedTuple, ParamEnv, PreparedPlan,
    Relation, ScalarExpr, SelectItem, SelectQuery,
};
use xvc_xml::{Document, TreeBuilder, XmlSink};

use crate::error::Result;
use crate::schema_tree::{AttrProjection, SchemaTree, ViewNodeId};

/// Materialization statistics for one publish run.
///
/// These are the paper's efficiency currency: the composed stylesheet view
/// wins precisely because it materializes fewer elements and runs fewer
/// tag queries than publishing the full view and transforming it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// XML elements created.
    pub elements: usize,
    /// Attributes attached.
    pub attributes: usize,
    /// Tag-query executions (one per parent tuple per child node).
    pub queries_run: usize,
    /// Tuples fetched across all tag-query executions.
    pub tuples_fetched: usize,
    /// Tag queries / guard probes compiled into a [`PreparedPlan`] during
    /// this publish (plan-cache misses).
    pub plans_prepared: usize,
    /// Nodes whose plan was already in the publisher's cache from an
    /// earlier publish against the same catalog (plan-cache hits).
    /// Negatively cached compilation failures count here too: the cache
    /// answered ("this query does not prepare") without recompiling.
    pub plan_cache_hits: usize,
    /// Tag queries / guard probes that failed to compile this publish.
    /// The failure is cached, so a given node fails at most once per
    /// catalog; the node falls back to the interpreter.
    pub plan_prepare_failures: usize,
    /// Tag-query executions served from the parameterized-result memo
    /// (equal relevant binding values, relation reused without touching
    /// the engine).
    pub memo_hits: usize,
    /// Memoizable executions that had to run the engine.
    pub memo_misses: usize,
    /// Set-oriented executions: one per (view node, frontier) with at
    /// least one non-memoized binding. Zero on the scalar path.
    pub batches_executed: usize,
    /// Largest number of bindings any single batch carried (merged with
    /// `max`, not `+`, across subtree tasks).
    pub bindings_per_batch_max: usize,
    /// Rows returned by batched executions and regrouped back to their
    /// parent bindings. Memo-served parents reuse an existing relation
    /// and are **not** counted here.
    pub rows_regrouped: usize,
    /// Subtree roots spliced into the previous document by
    /// [`crate::Session::republish_delta`]. Zero on full publishes.
    pub nodes_respliced: usize,
    /// Batches the delta path re-executed ([`crate::Session::republish_delta`]
    /// only; equals `batches_executed` when the delta path had to fall
    /// back to a full republish). Zero on full publishes.
    pub batches_reexecuted: usize,
    /// Rows in the [`xvc_rel::Delta`] a delta republish consumed. Zero on
    /// full publishes.
    pub delta_rows_in: usize,
}

impl PublishStats {
    /// Adds `other`'s counters into `self` (used to merge per-subtree
    /// statistics deterministically).
    pub fn absorb(&mut self, other: &PublishStats) {
        self.elements += other.elements;
        self.attributes += other.attributes;
        self.queries_run += other.queries_run;
        self.tuples_fetched += other.tuples_fetched;
        self.plans_prepared += other.plans_prepared;
        self.plan_cache_hits += other.plan_cache_hits;
        self.plan_prepare_failures += other.plan_prepare_failures;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.batches_executed += other.batches_executed;
        self.bindings_per_batch_max = self
            .bindings_per_batch_max
            .max(other.bindings_per_batch_max);
        self.rows_regrouped += other.rows_regrouped;
        self.nodes_respliced += other.nodes_respliced;
        self.batches_reexecuted += other.batches_reexecuted;
        self.delta_rows_in += other.delta_rows_in;
    }

    /// This run's counters with the batch-only and delta-only ones zeroed —
    /// what the run would have reported on the scalar path, which is
    /// identical on every other field (the equality the batched-vs-scalar
    /// tests assert).
    pub fn without_batch_counters(&self) -> PublishStats {
        PublishStats {
            batches_executed: 0,
            bindings_per_batch_max: 0,
            rows_regrouped: 0,
            nodes_respliced: 0,
            batches_reexecuted: 0,
            delta_rows_in: 0,
            ..*self
        }
    }

    /// Fraction of plan lookups served by the cache:
    /// `hits / (hits + prepared)`, or `0.0` when no plans were looked up.
    pub fn plan_cache_hit_rate(&self) -> f64 {
        let total = self.plan_cache_hits + self.plans_prepared;
        if total == 0 {
            0.0
        } else {
            self.plan_cache_hits as f64 / total as f64
        }
    }
}

/// One emitted element, recorded when publishing with a trace: which view
/// node produced it, at which document path, under which bindings.
///
/// This is the attribution layer the divergence reporter uses — given the
/// XML path of a wrong subtree it recovers the tag query and [`ParamEnv`]
/// that generated it.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Indexed element path, e.g. `/metro[2]/hotel[1]` (indices count
    /// same-tag siblings in document order, 1-based).
    pub path: String,
    /// The schema-tree node that emitted the element.
    pub view: ViewNodeId,
    /// The parameter environment its tag query (or guard) ran under.
    pub env: ParamEnv,
}

/// Per-element provenance of one publish run, in document order.
#[derive(Debug, Clone, Default)]
pub struct PublishTrace {
    /// One entry per emitted element, in document order.
    pub entries: Vec<TraceEntry>,
}

impl PublishTrace {
    /// Finds the entry for an exact indexed path.
    pub fn lookup(&self, path: &str) -> Option<&TraceEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Finds the entry for the longest recorded prefix of `path` (the
    /// deepest emitted ancestor of a node that was never produced).
    pub fn deepest_ancestor(&self, path: &str) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .filter(|e| path == e.path || path.starts_with(&format!("{}/", e.path)))
            .max_by_key(|e| e.path.len())
    }
}

/// Splice provenance of one published element: which view node produced
/// it and the parameter environment its *children* were expanded under.
/// This is exactly what the delta path needs to re-run a child node under
/// one surviving parent instance.
#[derive(Debug, Clone)]
pub struct SpliceEntry {
    /// The schema-tree node that emitted the element.
    pub view: ViewNodeId,
    /// The environment the element's children run under (the element's
    /// own binding variable included).
    pub child_env: ParamEnv,
}

/// Per-element splice provenance of a batched publish, keyed by document
/// node — the structural index [`crate::Session::republish_delta`] patches
/// through. Recorded only when [`crate::Engine::incremental`] is on.
#[derive(Debug, Clone, Default)]
pub struct SpliceIndex {
    /// One entry per emitted element.
    pub entries: HashMap<xvc_xml::NodeId, SpliceEntry>,
}

/// Everything one publish run produced.
#[derive(Debug)]
pub struct Published {
    /// The XML document `v(I)`.
    pub document: Document,
    /// Materialization counters (elements, queries, cache behavior).
    pub stats: PublishStats,
    /// Relational-engine work accumulated across every tag-query / guard
    /// evaluation of the run.
    pub eval: EvalStats,
    /// Per-element provenance; `Some` only when tracing was requested via
    /// [`crate::Engine::traced`].
    pub trace: Option<PublishTrace>,
    /// Splice provenance; `Some` only on batched publishes with
    /// [`crate::Engine::incremental`] on (delta republishes keep it current).
    pub splice: Option<SpliceIndex>,
    /// View nodes whose guard / tag batches a delta republish actually
    /// re-executed — the measured set the soundness tests compare against
    /// the static dependency map. Empty on full publishes.
    pub reexecuted: Vec<ViewNodeId>,
}

/// Distinguishes a node's tag query from its emission-guard probe in the
/// plan cache and result memo.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Role {
    Tag,
    Guard,
}

pub(crate) type PlanKey = (u32, Role);

/// Outcome of one compilation attempt, cached either way: a usable plan,
/// or a remembered failure so the publisher never retries compiling a
/// query the catalog cannot satisfy (it falls back to the interpreter).
#[derive(Debug)]
pub(crate) enum PlanEntry {
    Ready(Box<PreparedPlan>),
    Failed,
}

/// Compiled plans for one schema tree, valid for one catalog. Owned by
/// [`crate::Engine`] behind an `RwLock` and shared by every session.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    /// Fingerprint of the catalog the cached plans were compiled against
    /// ([`Database::catalog_fingerprint`]); a different fingerprint
    /// invalidates every plan without ever materializing an
    /// [`xvc_rel::Catalog`].
    pub(crate) fingerprint: Option<u64>,
    /// Whether every plan the tree needs is present for `fingerprint` —
    /// the flag concurrent sessions key their hit accounting on (a
    /// partially-filled cache is only ever observed under the write
    /// lock).
    pub(crate) complete: bool,
    pub(crate) plans: HashMap<PlanKey, PlanEntry>,
}

/// Entries per subtree-task result memo; inserts are skipped beyond this.
const MEMO_CAP: usize = 256;

/// Publish-path toggles, fixed per [`crate::Engine`] (see the builder
/// methods there for what each flag does).
#[derive(Debug, Clone)]
pub(crate) struct PublishConfig {
    pub(crate) tracing: bool,
    pub(crate) parallel: usize,
    pub(crate) prepared: bool,
    pub(crate) batched: bool,
    pub(crate) incremental: bool,
}

/// One publish execution: a validated schema tree plus the plan set the
/// engine ensured for the target catalog. [`crate::Session`] constructs
/// one per call through the wrappers below.
struct Run<'a> {
    tree: &'a SchemaTree,
    plans: &'a HashMap<PlanKey, PlanEntry>,
    cfg: &'a PublishConfig,
}

/// Full-publish orchestration behind [`crate::Session::publish`]. The
/// caller has already validated `tree` and ensured `plans` is current for
/// `db`'s catalog; `stats` carries the plan-cache counters it accumulated
/// doing so.
pub(crate) fn run_full_publish(
    tree: &SchemaTree,
    plans: &HashMap<PlanKey, PlanEntry>,
    cfg: &PublishConfig,
    db: &Database,
    stats: PublishStats,
) -> Result<Published> {
    Run { tree, plans, cfg }.full(db, stats)
}

/// Delta-republish orchestration behind
/// [`crate::Session::republish_delta`]. Same caller contract as
/// [`run_full_publish`], plus: `prev` carries a splice index and `cfg` is
/// batched (the caller handles the full-republish fallback).
pub(crate) fn run_delta_republish(
    tree: &SchemaTree,
    plans: &HashMap<PlanKey, PlanEntry>,
    cfg: &PublishConfig,
    db: &Database,
    prev: &Published,
    delta: &xvc_rel::Delta,
    stats: PublishStats,
) -> Result<Published> {
    Run { tree, plans, cfg }.delta(db, prev, delta, stats)
}

/// Streaming-publish orchestration behind [`crate::Session::publish_to`]:
/// the batched frontier walk with the arena sink swapped for the reusable
/// per-task [`Skeleton`], drained into `sink` task by task — serialized
/// XML is the only output; no document is ever materialized. Returns
/// `(stats, eval, peak_emit_bytes)` where the peak is the high-water mark
/// of the skeleton's buffers across tasks (the emission path's whole
/// retained footprint, bounded by the largest root-level subtree rather
/// than the document).
///
/// Caller contract: same as [`run_full_publish`], plus `cfg` is batched
/// and untraced (the caller handles the materializing fallback). Tasks run
/// sequentially — bytes leave in document order, so there is nothing to
/// parallelize ahead of the writer.
pub(crate) fn run_stream_publish(
    tree: &SchemaTree,
    plans: &HashMap<PlanKey, PlanEntry>,
    cfg: &PublishConfig,
    db: &Database,
    stats: PublishStats,
    sink: &mut dyn XmlSink,
) -> Result<(PublishStats, EvalStats, usize)> {
    Run { tree, plans, cfg }.stream(db, stats, sink)
}

impl Run<'_> {
    /// Root pass (always sequential): evaluates root-level guards and tag
    /// queries, and cuts the document into one task per root element
    /// instance. The decomposition — and therefore every per-task counter —
    /// is independent of the thread count *and* of the sink (arena vs
    /// streaming) the tasks are later drained through. Returns the worker
    /// that ran the root queries (it carries their stats/eval/trace) and
    /// the tasks, in document order.
    fn root_pass<'s>(&self, shared: &'s Shared<'s>) -> Result<(Worker<'s>, Vec<Task>)> {
        let mut main = Worker::new(shared, HashMap::new());
        let mut tasks: Vec<Task> = Vec::new();
        let mut root_counts: HashMap<String, usize> = HashMap::new();
        let env = ParamEnv::new();
        for &child in self.tree.children(self.tree.root()) {
            let node = self.tree.node(child).expect("non-root id");
            if let Some(guard) = &node.guard {
                main.stats.queries_run += 1;
                let probe = guard_probe(guard);
                if main
                    .run_tag_query(child, Role::Guard, &probe, &env)?
                    .is_empty()
                {
                    continue;
                }
            }
            let mut seed = |tag: &str| {
                let n = root_counts.entry(tag.to_owned()).or_insert(0);
                *n += 1;
                *n - 1
            };
            match &node.query {
                Some(q) if node.context_tuple_of.is_none() => {
                    let rel = main.run_tag_query(child, Role::Tag, q, &env)?;
                    main.stats.queries_run += 1;
                    main.stats.tuples_fetched += rel.len();
                    for i in 0..rel.len() {
                        tasks.push(Task {
                            vid: child,
                            tag: node.tag.clone(),
                            index: seed(&node.tag),
                            tuple: Some(rel.tuple(i)),
                        });
                    }
                }
                _ => {
                    tasks.push(Task {
                        vid: child,
                        tag: node.tag.clone(),
                        index: seed(&node.tag),
                        tuple: None,
                    });
                }
            }
        }
        Ok((main, tasks))
    }

    /// Evaluates the schema tree against `db`, producing `v(I)` plus
    /// statistics (and a trace when requested).
    fn full(&self, db: &Database, mut stats: PublishStats) -> Result<Published> {
        let collect_splice = self.cfg.incremental && self.cfg.batched;
        let shared = Shared {
            tree: self.tree,
            db,
            plans: self.plans,
            use_plans: self.cfg.prepared,
            tracing: self.cfg.tracing,
            batched: self.cfg.batched,
            collect_splice,
        };
        let (main, tasks) = self.root_pass(&shared)?;

        let outs = run_tasks(&shared, &tasks, self.cfg.parallel);

        // Deterministic merge, in task (= document) order.
        stats.absorb(&main.stats);
        let mut eval = main.eval;
        let mut trace = main.trace;
        let mut builder = TreeBuilder::new();
        let mut splice_parts: Vec<(Document, HashMap<xvc_xml::NodeId, SpliceEntry>)> = Vec::new();
        for out in outs {
            let out = out.expect("every task slot is filled")?;
            let kids: Vec<_> = out.doc.children(out.doc.root()).to_vec();
            for kid in kids {
                builder.import(&out.doc, kid);
            }
            stats.absorb(&out.stats);
            eval.absorb(&out.eval);
            trace.extend(out.trace);
            if collect_splice {
                splice_parts.push((out.doc, out.splice));
            }
        }
        let document = builder.finish();
        let splice = collect_splice.then(|| {
            // Task fragments were imported root child by root child, in
            // task order; `import` deep-copies, so zipping the pre-orders
            // of each fragment subtree with the matching final subtree
            // remaps every recorded node id.
            let mut entries = HashMap::new();
            let mut final_roots = document.children(document.root()).iter().copied();
            for (doc, part) in &splice_parts {
                for &kid in doc.children(doc.root()) {
                    let froot = final_roots.next().expect("merge keeps root children");
                    for (o, n) in doc
                        .descendants_or_self(kid)
                        .zip(document.descendants_or_self(froot))
                    {
                        if let Some(e) = part.get(&o) {
                            entries.insert(n, e.clone());
                        }
                    }
                }
            }
            SpliceIndex { entries }
        });
        Ok(Published {
            document,
            stats,
            eval,
            trace: self.cfg.tracing.then_some(PublishTrace { entries: trace }),
            splice,
            reexecuted: Vec::new(),
        })
    }

    /// Streams `v(I)` into `sink` with no output DOM: the same root pass
    /// and breadth-first wave machinery as [`Run::full`], but each task's
    /// elements land in the reusable [`Skeleton`] instead of an arena
    /// document and are serialized out (document-order DFS) as soon as the
    /// task's waves are exhausted. Byte output equals
    /// `full(..).document.to_xml()` through the same [`XmlSink`]; stats
    /// and eval counters equal the batched materializing path's (the memo
    /// stays task-scoped, the decomposition is identical).
    fn stream(
        &self,
        db: &Database,
        mut stats: PublishStats,
        sink: &mut dyn XmlSink,
    ) -> Result<(PublishStats, EvalStats, usize)> {
        let shared = Shared {
            tree: self.tree,
            db,
            plans: self.plans,
            use_plans: self.cfg.prepared,
            tracing: false,
            batched: true,
            collect_splice: false,
        };
        let (main, tasks) = self.root_pass(&shared)?;
        stats.absorb(&main.stats);
        let mut eval = main.eval;

        let mut w = BatchWorker::with_store(&shared, Skeleton::default());
        let mut peak = 0usize;
        let env = ParamEnv::new();
        for task in &tasks {
            // Per-task state resets exactly as a fresh `BatchWorker` would:
            // the memo is task-scoped (statistics parity with
            // `run_task_batched`), the skeleton's buffers are drained but
            // keep their capacity and interned names.
            w.doc.begin_task();
            w.memo.clear();
            let root = w.doc.root();
            let (el, child_env) = w.emit_node_instance(root, task.vid, &env, task.tuple.as_ref());
            let frontier: Vec<Pending<SkelId>> = self
                .tree
                .children(task.vid)
                .iter()
                .map(|&vid| Pending {
                    parent: el,
                    vid,
                    env: child_env.clone(),
                })
                .collect();
            expand_frontier(&mut w, frontier)?;
            peak = peak.max(w.doc.heap_bytes());
            w.doc.emit(sink)?;
        }
        stats.absorb(&w.stats);
        eval.absorb(&w.eval);
        Ok((stats, eval, peak))
    }

    /// Incrementally republishes after a base-table mutation: maps `delta`
    /// through the conservative table → view-node dependency map
    /// ([`crate::TableDeps`]), re-executes only the *top-most* affected
    /// view nodes — level-at-a-time, one batch per (view node, wave)
    /// across **all** surviving parent instances at once — and splices the
    /// fresh subtrees into `prev`'s document in place of the stale ones.
    /// See [`crate::Session::republish_delta`] for the full contract.
    fn delta(
        &self,
        db: &Database,
        prev: &Published,
        delta: &xvc_rel::Delta,
        mut stats: PublishStats,
    ) -> Result<Published> {
        let prev_splice = prev.splice.as_ref().expect("caller checked prev.splice");
        stats.delta_rows_in = delta.row_count();

        let tree = self.tree;
        let deps = crate::table_deps::TableDeps::analyze(tree);
        let affected = deps.affected_by(&delta.tables_changed());
        if affected.is_empty() {
            return Ok(Published {
                document: prev.document.clone(),
                stats,
                eval: EvalStats::default(),
                trace: None,
                splice: Some(prev_splice.clone()),
                reexecuted: Vec::new(),
            });
        }

        // Top-most affected nodes: re-executing a node re-executes its
        // whole subtree, so an affected node with an affected proper
        // ancestor is already covered.
        let mut tops_by_parent: HashMap<usize, Vec<ViewNodeId>> = HashMap::new();
        let mut root_tops: Vec<ViewNodeId> = Vec::new();
        for vid in tree.node_ids() {
            if !affected.contains(&vid.index()) {
                continue;
            }
            let mut anc = tree.parent(vid);
            let mut covered = false;
            while let Some(a) = anc {
                if tree.is_root(a) {
                    break;
                }
                if affected.contains(&a.index()) {
                    covered = true;
                    break;
                }
                anc = tree.parent(a);
            }
            if covered {
                continue;
            }
            let parent = tree.parent(vid).expect("node_ids excludes the root");
            if tree.is_root(parent) {
                root_tops.push(vid);
            } else {
                tops_by_parent.entry(parent.index()).or_default().push(vid);
            }
        }

        // Re-execute every (surviving parent instance, top node) pair in
        // one shared frontier: each pair grows under its own holder
        // element, and the wave loop batches per (view node, wave) across
        // all holders at once.
        let shared = Shared {
            tree,
            db,
            plans: self.plans,
            use_plans: self.cfg.prepared,
            tracing: false,
            batched: true,
            collect_splice: true,
        };
        let mut w = BatchWorker::new(&shared);
        let wroot = w.doc.root();
        let mut patches: HashMap<xvc_xml::NodeId, Vec<(ViewNodeId, xvc_xml::NodeId)>> =
            HashMap::new();
        let mut frontier: Vec<Pending> = Vec::new();
        let seed = |w: &mut BatchWorker<'_>,
                    frontier: &mut Vec<Pending>,
                    patches: &mut HashMap<xvc_xml::NodeId, Vec<(ViewNodeId, xvc_xml::NodeId)>>,
                    prev_parent: xvc_xml::NodeId,
                    vid: ViewNodeId,
                    env: ParamEnv| {
            let holder = w.doc.create_element("delta-holder");
            w.doc.append_child(wroot, holder);
            patches.entry(prev_parent).or_default().push((vid, holder));
            frontier.push(Pending {
                parent: holder,
                vid,
                env,
            });
        };
        for &n in &root_tops {
            seed(
                &mut w,
                &mut frontier,
                &mut patches,
                prev.document.root(),
                n,
                ParamEnv::new(),
            );
        }
        if !tops_by_parent.is_empty() {
            for pid in prev.document.descendants_or_self(prev.document.root()) {
                let Some(entry) = prev_splice.entries.get(&pid) else {
                    continue;
                };
                let Some(tops) = tops_by_parent.get(&entry.view.index()) else {
                    continue;
                };
                for &n in tops {
                    seed(
                        &mut w,
                        &mut frontier,
                        &mut patches,
                        pid,
                        n,
                        entry.child_env.clone(),
                    );
                }
            }
        }
        expand_frontier(&mut w, frontier)?;

        // Splice: rebuild the document (the arena has no detach), copying
        // unaffected subtrees from `prev` and grafting each holder's fresh
        // children at the stale group's position.
        for list in patches.values_mut() {
            list.sort_by_key(|(vid, _)| vid.index());
        }
        let mut graft = Graft {
            old: &prev.document,
            old_splice: &prev_splice.entries,
            patches: &patches,
            worker_doc: &w.doc,
            worker_splice: &w.splice,
            new_doc: Document::new(),
            entries: HashMap::new(),
            respliced: 0,
        };
        let new_root = graft.new_doc.root();
        graft.copy_children(prev.document.root(), new_root);

        stats.absorb(&w.stats);
        stats.batches_reexecuted = w.stats.batches_executed;
        stats.nodes_respliced = graft.respliced;
        Ok(Published {
            document: graft.new_doc,
            stats,
            eval: w.eval,
            trace: None,
            splice: Some(SpliceIndex {
                entries: graft.entries,
            }),
            reexecuted: w.touched.iter().map(|&i| ViewNodeId(i as u32)).collect(),
        })
    }
}

/// The `SELECT 1 WHERE guard` probe the publisher evaluates for emission
/// guards.
pub(crate) fn guard_probe(guard: &ScalarExpr) -> SelectQuery {
    let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
    probe.where_clause = Some(guard.clone());
    probe
}

/// Read-only state shared by every subtree task.
struct Shared<'a> {
    tree: &'a SchemaTree,
    db: &'a Database,
    plans: &'a HashMap<PlanKey, PlanEntry>,
    use_plans: bool,
    tracing: bool,
    batched: bool,
    collect_splice: bool,
}

/// One root-level element instance to publish: a query-node tuple, or a
/// literal / context-copy element.
struct Task {
    vid: ViewNodeId,
    tag: String,
    /// 0-based occurrence index of `tag` among root-level siblings, for
    /// indexed trace paths.
    index: usize,
    tuple: Option<NamedTuple>,
}

/// What one task produced: a document fragment (the element subtree) plus
/// its private counters and trace entries.
struct TaskOut {
    doc: Document,
    stats: PublishStats,
    eval: EvalStats,
    trace: Vec<TraceEntry>,
    /// Splice provenance keyed by *task-local* node ids (remapped to final
    /// document ids during the merge). Empty unless splice collection is on.
    splice: HashMap<xvc_xml::NodeId, SpliceEntry>,
}

/// Runs every task — inline when `parallel <= 1`, else on a scoped thread
/// pool — returning results in task order.
fn run_tasks(shared: &Shared<'_>, tasks: &[Task], parallel: usize) -> Vec<Option<Result<TaskOut>>> {
    let n = parallel.clamp(1, tasks.len().max(1));
    if n <= 1 {
        return tasks.iter().map(|t| Some(run_task(shared, t))).collect();
    }
    let slots: Vec<Mutex<Option<Result<TaskOut>>>> =
        tasks.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..n {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(task) = tasks.get(i) else { break };
                let out = run_task(shared, task);
                *slots[i].lock().expect("task slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("task slot"))
        .collect()
}

fn run_task(shared: &Shared<'_>, task: &Task) -> Result<TaskOut> {
    if shared.batched {
        return run_task_batched(shared, task);
    }
    let mut seed = HashMap::new();
    seed.insert(task.tag.clone(), task.index);
    let mut w = Worker::new(shared, seed);
    w.emit_instance(task.vid, &ParamEnv::new(), task.tuple.as_ref())?;
    Ok(TaskOut {
        doc: w.builder.finish(),
        stats: w.stats,
        eval: w.eval,
        trace: w.trace,
        splice: HashMap::new(),
    })
}

/// Publishes one subtree task breadth-first: the frontier holds every
/// `(parent element, view node, bindings)` still to expand at the current
/// depth, and each (view node, frontier) pair runs **one** set-oriented
/// tag-query / guard execution for all its parents at once, with the rows
/// regrouped back to their parent elements afterwards. Document order is
/// preserved because a parent's pending view nodes are expanded in schema
/// order (ascending node id) and each batch returns per-binding rows in
/// the scalar path's row order.
fn run_task_batched(shared: &Shared<'_>, task: &Task) -> Result<TaskOut> {
    let tree = shared.tree;
    let mut w = BatchWorker::new(shared);
    let env = ParamEnv::new();
    let root = w.doc.root();
    let (el, child_env) = w.emit_node_instance(root, task.vid, &env, task.tuple.as_ref());

    let frontier: Vec<Pending> = tree
        .children(task.vid)
        .iter()
        .map(|&vid| Pending {
            parent: el,
            vid,
            env: child_env.clone(),
        })
        .collect();
    expand_frontier(&mut w, frontier)?;

    let trace = if shared.tracing {
        w.build_trace(task)
    } else {
        Vec::new()
    };
    Ok(TaskOut {
        doc: w.doc,
        stats: w.stats,
        eval: w.eval,
        trace,
        splice: w.splice,
    })
}

/// The level-at-a-time engine of the batched path: expands `frontier`
/// breadth-first to exhaustion inside `w`'s store. Factored out of
/// [`run_task_batched`] so [`crate::Session::republish_delta`] can seed it with
/// an arbitrary set of `(parent, view node, bindings)` slots instead of a
/// single task root, and generic over the [`WaveStore`] so the streaming
/// sink ([`Run::stream`]) runs the identical walk.
fn expand_frontier<S: WaveStore>(
    w: &mut BatchWorker<'_, S>,
    mut frontier: Vec<Pending<S::Id>>,
) -> Result<()> {
    let tree = w.shared.tree;
    while !frontier.is_empty() {
        let mut next: Vec<Pending<S::Id>> = Vec::new();
        // Group the level by view node, in schema (ascending id) order:
        // every parent sees its children appended in schema order, and
        // each group becomes at most one guard batch + one tag batch.
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for (i, p) in frontier.iter().enumerate() {
            groups.entry(p.vid.index()).or_default().push(i);
        }
        for (_, mut live) in groups {
            let vid = frontier[live[0]].vid;
            let node = tree.node(vid).expect("frontier holds non-root ids");

            if let Some(guard) = &node.guard {
                w.touched.insert(vid.index());
                let probe = guard_probe(guard);
                let envs: Vec<ParamEnv> = live.iter().map(|&i| frontier[i].env.clone()).collect();
                w.stats.queries_run += envs.len();
                let rels = w.run_batch(vid, Role::Guard, &probe, &envs)?;
                live = live
                    .iter()
                    .zip(&rels)
                    .filter(|(_, r)| !r.is_empty())
                    .map(|(&i, _)| i)
                    .collect();
            }

            if node.context_tuple_of.is_some() || node.query.is_none() {
                for &i in &live {
                    let p = &frontier[i];
                    let (el, child_env) = w.emit_node_instance(p.parent, vid, &p.env, None);
                    for &c in tree.children(vid) {
                        next.push(Pending {
                            parent: el,
                            vid: c,
                            env: child_env.clone(),
                        });
                    }
                }
                continue;
            }

            w.touched.insert(vid.index());
            let query = node.query.as_ref().expect("query node");
            let envs: Vec<ParamEnv> = live.iter().map(|&i| frontier[i].env.clone()).collect();
            let rels = w.run_batch(vid, Role::Tag, query, &envs)?;
            for (&i, rel) in live.iter().zip(&rels) {
                let p = &frontier[i];
                w.stats.queries_run += 1;
                w.stats.tuples_fetched += rel.len();
                for t in 0..rel.len() {
                    let tuple = rel.tuple(t);
                    let (el, child_env) = w.emit_node_instance(p.parent, vid, &p.env, Some(&tuple));
                    for &c in tree.children(vid) {
                        next.push(Pending {
                            parent: el,
                            vid: c,
                            env: child_env.clone(),
                        });
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(())
}

/// Rebuilds the previous document with fresh subtrees grafted in. The
/// arena [`Document`] has no node removal, so splicing is a copy walk:
/// unaffected nodes are copied verbatim from the old document; at a
/// patched parent, each stale child group (all instances of one view
/// node) is replaced by the matching holder's children from the delta
/// worker's document, at the stale group's sibling position.
struct Graft<'g> {
    old: &'g Document,
    old_splice: &'g HashMap<xvc_xml::NodeId, SpliceEntry>,
    /// Old parent node → `(child view node, holder)` replacements, sorted
    /// by ascending view-node index (sibling groups appear in that order).
    patches: &'g HashMap<xvc_xml::NodeId, Vec<(ViewNodeId, xvc_xml::NodeId)>>,
    worker_doc: &'g Document,
    worker_splice: &'g HashMap<xvc_xml::NodeId, SpliceEntry>,
    new_doc: Document,
    /// Splice index of the rebuilt document, filled during the walk.
    entries: HashMap<xvc_xml::NodeId, SpliceEntry>,
    respliced: usize,
}

impl Graft<'_> {
    /// Copies `old_parent`'s children under `new_parent`, applying this
    /// parent's patch list (if any) as a positional merge: a fresh group
    /// replaces the first stale instance of its view node in place; a
    /// group with no stale instances is inserted before the first sibling
    /// of a higher view-node index (sibling groups are emitted in
    /// ascending index order, so this is the position a full republish
    /// would produce).
    fn copy_children(&mut self, old_parent: xvc_xml::NodeId, new_parent: xvc_xml::NodeId) {
        let patch = self.patches.get(&old_parent).map_or(&[][..], Vec::as_slice);
        let replaced: std::collections::HashSet<usize> =
            patch.iter().map(|(vid, _)| vid.index()).collect();
        let mut pi = 0;
        for &c in self.old.children(old_parent) {
            let cv = self.old_splice.get(&c).map(|e| e.view.index());
            if let Some(cv) = cv {
                while pi < patch.len() && patch[pi].0.index() <= cv {
                    self.graft_holder(patch[pi].1, new_parent);
                    pi += 1;
                }
                if replaced.contains(&cv) {
                    continue;
                }
            }
            self.copy_old_subtree(c, new_parent);
        }
        while pi < patch.len() {
            self.graft_holder(patch[pi].1, new_parent);
            pi += 1;
        }
    }

    /// Appends every child of a delta-worker holder under `new_parent`.
    fn graft_holder(&mut self, holder: xvc_xml::NodeId, new_parent: xvc_xml::NodeId) {
        for &c in self.worker_doc.children(holder) {
            self.respliced += 1;
            copy_subtree(
                self.worker_doc,
                self.worker_splice,
                c,
                &mut self.new_doc,
                new_parent,
                &mut self.entries,
            );
        }
    }

    /// Copies one old subtree, descending with patch awareness (a patched
    /// parent can sit arbitrarily deep below an unaffected ancestor).
    fn copy_old_subtree(&mut self, old_id: xvc_xml::NodeId, new_parent: xvc_xml::NodeId) {
        let new_id = copy_node(
            self.old,
            self.old_splice,
            old_id,
            &mut self.new_doc,
            new_parent,
            &mut self.entries,
        );
        self.copy_children(old_id, new_id);
    }
}

/// Copies a single node (element or text) without its children, carrying
/// its splice entry over; returns the new id.
fn copy_node(
    src: &Document,
    src_splice: &HashMap<xvc_xml::NodeId, SpliceEntry>,
    src_id: xvc_xml::NodeId,
    dst: &mut Document,
    dst_parent: xvc_xml::NodeId,
    dst_splice: &mut HashMap<xvc_xml::NodeId, SpliceEntry>,
) -> xvc_xml::NodeId {
    let new_id = match src.kind(src_id) {
        xvc_xml::NodeKind::Element { name, attrs } => {
            let (name, attrs) = (name.clone(), attrs.clone());
            let el = dst.create_element(name);
            for (k, v) in attrs {
                dst.set_attr(el, k, v).expect("created as element");
            }
            el
        }
        xvc_xml::NodeKind::Text(t) => {
            let t = t.clone();
            dst.create_text(t)
        }
        xvc_xml::NodeKind::Root => unreachable!("roots are never copied"),
    };
    dst.append_child(dst_parent, new_id);
    if let Some(e) = src_splice.get(&src_id) {
        dst_splice.insert(new_id, e.clone());
    }
    new_id
}

/// Copies a whole subtree (used for grafting fresh delta subtrees).
fn copy_subtree(
    src: &Document,
    src_splice: &HashMap<xvc_xml::NodeId, SpliceEntry>,
    src_id: xvc_xml::NodeId,
    dst: &mut Document,
    dst_parent: xvc_xml::NodeId,
    dst_splice: &mut HashMap<xvc_xml::NodeId, SpliceEntry>,
) {
    let new_id = copy_node(src, src_splice, src_id, dst, dst_parent, dst_splice);
    for &c in src.children(src_id) {
        copy_subtree(src, src_splice, c, dst, new_id, dst_splice);
    }
}

/// One frontier slot: a view node still to expand under `parent` with the
/// bindings accumulated on the path down to it. Generic over the element
/// handle of the [`WaveStore`] the walk materializes into (arena
/// [`xvc_xml::NodeId`] by default).
struct Pending<Id = xvc_xml::NodeId> {
    parent: Id,
    vid: ViewNodeId,
    env: ParamEnv,
}

/// Where the batched frontier walk materializes elements: the arena
/// [`Document`] (full publishes, traces, delta splicing) or the reusable
/// per-task [`Skeleton`] drained by the streaming sink. The store only
/// sees the three structural operations the wave loop performs; the memo,
/// batching and statistics machinery is shared by both, so the two
/// emission back ends cannot drift apart.
trait WaveStore {
    /// Copyable element handle (hashable: provenance maps key on it).
    type Id: Copy + Eq + std::hash::Hash;
    /// Creates a detached element named `tag`.
    fn create_element(&mut self, tag: &str) -> Self::Id;
    /// Appends a freshly created element as `parent`'s last child.
    fn append_child(&mut self, parent: Self::Id, child: Self::Id);
    /// Sets an attribute; a duplicate name replaces the existing value
    /// **in place** (the arena contract, load-bearing for byte parity).
    fn set_attr(&mut self, el: Self::Id, name: &str, value: &str);
}

impl WaveStore for Document {
    type Id = xvc_xml::NodeId;

    fn create_element(&mut self, tag: &str) -> xvc_xml::NodeId {
        Document::create_element(self, tag)
    }

    fn append_child(&mut self, parent: xvc_xml::NodeId, child: xvc_xml::NodeId) {
        Document::append_child(self, parent, child);
    }

    fn set_attr(&mut self, el: xvc_xml::NodeId, name: &str, value: &str) {
        Document::set_attr(self, el, name, value).expect("created as element");
    }
}

/// Sentinel for "no node" in the skeleton's intrusive child lists.
const SKEL_NONE: u32 = u32::MAX;

/// Element handle inside a [`Skeleton`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct SkelId(u32);

#[derive(Debug, Clone, Copy)]
struct SkelNode {
    /// Interned tag name.
    tag: u32,
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    /// This element's attributes are `attrs[attr_start..attr_start + attr_len]`
    /// (contiguous: the wave loop sets every attribute of an element
    /// before creating the next one).
    attr_start: u32,
    attr_len: u32,
}

#[derive(Debug, Clone, Copy)]
struct SkelAttr {
    /// Interned attribute name.
    name: u32,
    /// Value bytes are `text[val_start..val_start + val_len]`.
    val_start: u32,
    val_len: u32,
}

/// The streaming path's per-task element store: just enough structure to
/// emit one root-level subtree in document order after its breadth-first
/// waves complete. Tag and attribute names are interned (a schema tree
/// has a handful of distinct names, reused across every task); attribute
/// values share one text buffer; child lists are intrusive `u32` links.
/// [`Skeleton::begin_task`] drains everything but keeps the capacity and
/// the name table, so steady-state publishing allocates almost nothing
/// and peak emission memory is bounded by the largest single task, not
/// the document.
#[derive(Debug, Default)]
struct Skeleton {
    /// Interned tag / attribute names (kept across tasks).
    names: Vec<String>,
    name_ids: HashMap<String, u32>,
    nodes: Vec<SkelNode>,
    attrs: Vec<SkelAttr>,
    /// Attribute values, concatenated. Replaced values leak their old
    /// bytes until the next `begin_task` — duplicate attribute names are
    /// rare and tasks are short-lived.
    text: String,
}

impl Skeleton {
    /// Clears per-task state (keeping buffer capacity and interned names)
    /// and re-creates the synthetic task root.
    fn begin_task(&mut self) {
        self.nodes.clear();
        self.attrs.clear();
        self.text.clear();
        self.nodes.push(SkelNode {
            tag: SKEL_NONE,
            first_child: SKEL_NONE,
            last_child: SKEL_NONE,
            next_sibling: SKEL_NONE,
            attr_start: 0,
            attr_len: 0,
        });
    }

    /// The synthetic task root (emission serializes its children).
    fn root(&self) -> SkelId {
        debug_assert!(!self.nodes.is_empty(), "begin_task before use");
        SkelId(0)
    }

    fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.name_ids.get(name) {
            return id;
        }
        let id = u32::try_from(self.names.len()).expect("name table fits u32");
        self.names.push(name.to_owned());
        self.name_ids.insert(name.to_owned(), id);
        id
    }

    /// Heap bytes currently retained by the task buffers (capacities, not
    /// lengths — this is what the process actually holds on to).
    fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<SkelNode>()
            + self.attrs.capacity() * std::mem::size_of::<SkelAttr>()
            + self.text.capacity()
            + self.names.iter().map(String::capacity).sum::<usize>()
    }

    /// Serializes the task subtree into `sink` in document order (an
    /// iterative DFS over the intrusive child links; no recursion, so
    /// recursion-heavy views cannot overflow the stack here).
    fn emit(&self, sink: &mut dyn XmlSink) -> io::Result<()> {
        let mut stack: Vec<u32> = Vec::new();
        let mut cur = self.nodes[0].first_child;
        loop {
            while cur != SKEL_NONE {
                let n = self.nodes[cur as usize];
                sink.start_element(&self.names[n.tag as usize])?;
                for a in &self.attrs[n.attr_start as usize..(n.attr_start + n.attr_len) as usize] {
                    sink.attr(
                        &self.names[a.name as usize],
                        &self.text[a.val_start as usize..(a.val_start + a.val_len) as usize],
                    )?;
                }
                stack.push(cur);
                cur = n.first_child;
            }
            loop {
                let Some(top) = stack.pop() else {
                    return Ok(());
                };
                let n = self.nodes[top as usize];
                sink.end_element(&self.names[n.tag as usize])?;
                if n.next_sibling != SKEL_NONE {
                    cur = n.next_sibling;
                    break;
                }
            }
        }
    }
}

impl WaveStore for Skeleton {
    type Id = SkelId;

    fn create_element(&mut self, tag: &str) -> SkelId {
        let tag = self.intern(tag);
        let id = u32::try_from(self.nodes.len()).expect("task fits u32 nodes");
        self.nodes.push(SkelNode {
            tag,
            first_child: SKEL_NONE,
            last_child: SKEL_NONE,
            next_sibling: SKEL_NONE,
            attr_start: u32::try_from(self.attrs.len()).expect("attrs fit u32"),
            attr_len: 0,
        });
        SkelId(id)
    }

    fn append_child(&mut self, parent: SkelId, child: SkelId) {
        let p = parent.0 as usize;
        if self.nodes[p].first_child == SKEL_NONE {
            self.nodes[p].first_child = child.0;
        } else {
            let last = self.nodes[p].last_child as usize;
            self.nodes[last].next_sibling = child.0;
        }
        self.nodes[p].last_child = child.0;
    }

    fn set_attr(&mut self, el: SkelId, name: &str, value: &str) {
        let name = self.intern(name);
        let val_start = u32::try_from(self.text.len()).expect("values fit u32");
        self.text.push_str(value);
        let val_len = u32::try_from(value.len()).expect("value fits u32");
        let e = el.0 as usize;
        let (start, len) = (
            self.nodes[e].attr_start as usize,
            self.nodes[e].attr_len as usize,
        );
        if let Some(a) = self.attrs[start..start + len]
            .iter_mut()
            .find(|a| a.name == name)
        {
            // Mirror the arena: a duplicate name replaces the value at the
            // original attribute position.
            a.val_start = val_start;
            a.val_len = val_len;
            return;
        }
        debug_assert_eq!(
            start + len,
            self.attrs.len(),
            "attributes of an element are set before the next element is created"
        );
        self.attrs.push(SkelAttr {
            name,
            val_start,
            val_len,
        });
        self.nodes[e].attr_len += 1;
    }
}

/// Per-task state of the breadth-first walk. Unlike [`Worker`] it builds
/// its [`WaveStore`] directly (batched expansion appends to parents
/// created in earlier waves, which a forward-only builder cannot do):
/// the arena [`Document`] for full/delta publishes — with the trace
/// reconstructed afterwards in document order — or the [`Skeleton`] the
/// streaming sink drains.
struct BatchWorker<'a, S: WaveStore = Document> {
    shared: &'a Shared<'a>,
    doc: S,
    stats: PublishStats,
    eval: EvalStats,
    /// `(node, role, rendered binding values)` → relation, same scope and
    /// cap as the scalar worker's memo.
    memo: HashMap<(u32, Role, String), Relation>,
    /// Element provenance for trace reconstruction (tracing runs only).
    prov: HashMap<S::Id, (ViewNodeId, ParamEnv)>,
    /// Splice provenance (splice-collecting runs only).
    splice: HashMap<S::Id, SpliceEntry>,
    /// View nodes whose guard / tag batches this worker issued (delta-path
    /// soundness bookkeeping; node arena indexes).
    touched: std::collections::BTreeSet<usize>,
}

impl<'a> BatchWorker<'a, Document> {
    fn new(shared: &'a Shared<'a>) -> Self {
        Self::with_store(shared, Document::new())
    }
}

impl<'a, S: WaveStore> BatchWorker<'a, S> {
    fn with_store(shared: &'a Shared<'a>, doc: S) -> Self {
        BatchWorker {
            shared,
            doc,
            stats: PublishStats::default(),
            eval: EvalStats::default(),
            memo: HashMap::new(),
            prov: HashMap::new(),
            splice: HashMap::new(),
            touched: std::collections::BTreeSet::new(),
        }
    }

    /// Creates one element instance under `parent` — tag, static and
    /// projected tuple attributes, counters, provenance — and returns it
    /// with the environment its children run under. The per-node-kind
    /// logic mirrors [`Worker::emit_instance`] exactly.
    fn emit_node_instance(
        &mut self,
        parent: S::Id,
        vid: ViewNodeId,
        env: &ParamEnv,
        tuple: Option<&NamedTuple>,
    ) -> (S::Id, ParamEnv) {
        let node = self.shared.tree.node(vid).expect("non-root id");
        let el = self.doc.create_element(&node.tag);
        self.doc.append_child(parent, el);
        self.stats.elements += 1;
        if self.shared.tracing {
            self.prov.insert(el, (vid, env.clone()));
        }
        for (k, v) in &node.static_attrs {
            self.doc.set_attr(el, k, v);
            self.stats.attributes += 1;
        }
        let mut child_env = env.clone();
        if let Some(var) = &node.context_tuple_of {
            if let Some(t) = env.get(var) {
                let t = t.clone();
                for (k, v) in project_attrs(&node.attrs, &t.columns, &t.values) {
                    self.doc.set_attr(el, k, &v);
                    self.stats.attributes += 1;
                }
                if !node.bv.is_empty() {
                    child_env.insert(node.bv.clone(), t);
                }
            }
        } else if let Some(t) = tuple {
            for (k, v) in project_attrs(&node.attrs, &t.columns, &t.values) {
                self.doc.set_attr(el, k, &v);
                self.stats.attributes += 1;
            }
            child_env.insert(node.bv.clone(), t.clone());
        }
        if self.shared.collect_splice {
            self.splice.insert(
                el,
                SpliceEntry {
                    view: vid,
                    child_env: child_env.clone(),
                },
            );
        }
        (el, child_env)
    }

    /// Set-oriented counterpart of [`Worker::run_tag_query`]: one relation
    /// per environment, in order. Memo semantics are emulated exactly
    /// (hits, misses, cap-bounded inserts) by resolving every binding's
    /// memo key first and batching only the environments the scalar path
    /// would have sent to the engine.
    fn run_batch(
        &mut self,
        vid: ViewNodeId,
        role: Role,
        q: &SelectQuery,
        envs: &[ParamEnv],
    ) -> Result<Vec<Relation>> {
        if envs.is_empty() {
            return Ok(Vec::new());
        }
        let key_base = vid.index() as u32;
        if self.shared.use_plans {
            if let Some(PlanEntry::Ready(plan)) = self.shared.plans.get(&(key_base, role)) {
                let mut out: Vec<Option<Relation>> = vec![None; envs.len()];
                // env index → slot in `pending` whose result it shares.
                let mut share: Vec<usize> = vec![usize::MAX; envs.len()];
                let mut pending: Vec<usize> = Vec::new();
                // memo key → (pending slot of its first execution, whether
                // that execution will be inserted into the memo).
                let mut in_flight: HashMap<String, (usize, bool)> = HashMap::new();
                let mut planned_inserts = 0usize;
                for (i, env) in envs.iter().enumerate() {
                    match memo_key(plan.slots(), env) {
                        Some(key) => {
                            if let Some(hit) = self.memo.get(&(key_base, role, key.clone())) {
                                self.stats.memo_hits += 1;
                                out[i] = Some(hit.clone());
                            } else if let Some(&(slot, will_insert)) = in_flight.get(&key) {
                                // Scalar would find the first execution's
                                // insert (hit) — or, past the cap, miss and
                                // re-execute; the engine work is shared
                                // either way, only the counter differs.
                                if will_insert {
                                    self.stats.memo_hits += 1;
                                } else {
                                    self.stats.memo_misses += 1;
                                }
                                share[i] = slot;
                            } else {
                                self.stats.memo_misses += 1;
                                let will_insert = self.memo.len() + planned_inserts < MEMO_CAP;
                                if will_insert {
                                    planned_inserts += 1;
                                }
                                in_flight.insert(key, (pending.len(), will_insert));
                                share[i] = pending.len();
                                pending.push(i);
                            }
                        }
                        // Unresolvable slots bypass the memo, exactly like
                        // the scalar path (the execution itself reports the
                        // unbound parameter, if the plan reaches it).
                        None => {
                            share[i] = pending.len();
                            pending.push(i);
                        }
                    }
                }
                if !pending.is_empty() {
                    let penvs: Vec<ParamEnv> = pending.iter().map(|&i| envs[i].clone()).collect();
                    let batch = plan.execute_batch_stats(self.shared.db, &penvs, &mut self.eval)?;
                    self.stats.batches_executed += 1;
                    self.stats.bindings_per_batch_max =
                        self.stats.bindings_per_batch_max.max(penvs.len());
                    self.stats.rows_regrouped += batch.total_rows();
                    let rels = batch.into_relations();
                    for (key, (slot, will_insert)) in in_flight {
                        if will_insert {
                            self.memo.insert((key_base, role, key), rels[slot].clone());
                        }
                    }
                    for (i, slot) in out.iter_mut().zip(&share) {
                        if i.is_none() {
                            *i = Some(rels[*slot].clone());
                        }
                    }
                }
                return Ok(out
                    .into_iter()
                    .map(|r| r.expect("every env is memo-served or batched"))
                    .collect());
            }
        }
        // Interpreter fallback: per environment, identical to the scalar
        // path (no batch counters — nothing was batched).
        let mut rels = Vec::with_capacity(envs.len());
        for env in envs {
            rels.push(eval_query_stats(
                self.shared.db,
                q,
                env,
                EvalOptions::default(),
                &mut self.eval,
            )?);
        }
        Ok(rels)
    }
}

/// Trace reconstruction is arena-only: the streaming sink never traces
/// (the materializing fallback handles traced publishes).
impl BatchWorker<'_, Document> {
    /// Reconstructs the scalar path's pre-order trace from the finished
    /// fragment: indexed paths from per-level same-tag sibling counts,
    /// provenance from the map filled at element creation.
    fn build_trace(&self, task: &Task) -> Vec<TraceEntry> {
        let mut entries = Vec::new();
        let mut path: Vec<String> = Vec::new();
        let mut seed = HashMap::new();
        seed.insert(task.tag.clone(), task.index);
        let mut counts: Vec<HashMap<String, usize>> = vec![seed];
        self.walk_trace(self.doc.root(), &mut path, &mut counts, &mut entries);
        entries
    }

    fn walk_trace(
        &self,
        node: xvc_xml::NodeId,
        path: &mut Vec<String>,
        counts: &mut Vec<HashMap<String, usize>>,
        entries: &mut Vec<TraceEntry>,
    ) {
        for &child in self.doc.children(node) {
            let Some(tag) = self.doc.name(child) else {
                continue;
            };
            let level = counts.last_mut().expect("counts is never empty");
            let n = level.entry(tag.to_owned()).or_insert(0);
            *n += 1;
            path.push(format!("{tag}[{n}]"));
            counts.push(HashMap::new());
            if let Some((vid, env)) = self.prov.get(&child) {
                entries.push(TraceEntry {
                    path: format!("/{}", path.join("/")),
                    view: *vid,
                    env: env.clone(),
                });
            }
            self.walk_trace(child, path, counts, entries);
            path.pop();
            counts.pop();
        }
    }
}

/// Per-task publishing state: its own builder, counters, trace slice and
/// result memo (memoization is task-scoped so statistics cannot depend on
/// how tasks are spread over threads).
struct Worker<'a> {
    shared: &'a Shared<'a>,
    builder: TreeBuilder,
    stats: PublishStats,
    eval: EvalStats,
    trace: Vec<TraceEntry>,
    /// Indexed path segments of currently open elements.
    path: Vec<String>,
    /// Per open level: same-tag sibling counts emitted so far (the task's
    /// base level is the first entry).
    sibling_counts: Vec<HashMap<String, usize>>,
    /// `(node, role, rendered binding values)` → relation.
    memo: HashMap<(u32, Role, String), Relation>,
}

impl<'a> Worker<'a> {
    fn new(shared: &'a Shared<'a>, seed_counts: HashMap<String, usize>) -> Self {
        Worker {
            shared,
            builder: TreeBuilder::new(),
            stats: PublishStats::default(),
            eval: EvalStats::default(),
            trace: Vec::new(),
            path: Vec::new(),
            sibling_counts: vec![seed_counts],
            memo: HashMap::new(),
        }
    }

    /// Executes a node's tag query (or guard probe): through its cached
    /// prepared plan and the result memo when available, else through the
    /// interpreter.
    fn run_tag_query(
        &mut self,
        vid: ViewNodeId,
        role: Role,
        q: &SelectQuery,
        env: &ParamEnv,
    ) -> Result<Relation> {
        if self.shared.use_plans {
            if let Some(PlanEntry::Ready(plan)) = self.shared.plans.get(&(vid.index() as u32, role))
            {
                if let Some(key) = memo_key(plan.slots(), env) {
                    let mk = (vid.index() as u32, role, key);
                    if let Some(hit) = self.memo.get(&mk) {
                        self.stats.memo_hits += 1;
                        return Ok(hit.clone());
                    }
                    let rel = plan.execute_stats(self.shared.db, env, &mut self.eval)?;
                    self.stats.memo_misses += 1;
                    if self.memo.len() < MEMO_CAP {
                        self.memo.insert(mk, rel.clone());
                    }
                    return Ok(rel);
                }
                return Ok(plan.execute_stats(self.shared.db, env, &mut self.eval)?);
            }
        }
        Ok(eval_query_stats(
            self.shared.db,
            q,
            env,
            EvalOptions::default(),
            &mut self.eval,
        )?)
    }

    /// Opens an element, maintaining the indexed path and trace.
    fn open(&mut self, tag: &str, vid: ViewNodeId, env: &ParamEnv) {
        self.builder.open(tag);
        self.stats.elements += 1;
        let level = self
            .sibling_counts
            .last_mut()
            .expect("sibling_counts is never empty");
        let n = level.entry(tag.to_owned()).or_insert(0);
        *n += 1;
        self.path.push(format!("{tag}[{n}]"));
        self.sibling_counts.push(HashMap::new());
        if self.shared.tracing {
            self.trace.push(TraceEntry {
                path: format!("/{}", self.path.join("/")),
                view: vid,
                env: env.clone(),
            });
        }
    }

    fn close(&mut self) {
        self.builder.close();
        self.path.pop();
        self.sibling_counts.pop();
    }

    fn emit_attr(&mut self, name: &str, value: String) {
        self.builder.attr(name, value);
        self.stats.attributes += 1;
    }

    fn emit_static_attrs(&mut self, vid: ViewNodeId) {
        let node = self.shared.tree.node(vid).expect("caller validated vid");
        for (k, v) in node.static_attrs.clone() {
            self.emit_attr(&k, v);
        }
    }

    /// Emits projected tuple columns as attributes (see [`project_attrs`]).
    fn emit_tuple_attrs(
        &mut self,
        attrs: &AttrProjection,
        columns: &[String],
        values: &[xvc_rel::Value],
    ) {
        for (c, v) in project_attrs(attrs, columns, values) {
            self.emit_attr(c, v);
        }
    }

    /// Publishes one already-guarded element instance: the entry point of a
    /// root-level task (guards of root children run in the main pass).
    fn emit_instance(
        &mut self,
        vid: ViewNodeId,
        env: &ParamEnv,
        tuple: Option<&NamedTuple>,
    ) -> Result<()> {
        let tree = self.shared.tree;
        let node = tree.node(vid).expect("non-root id");

        if let Some(var) = &node.context_tuple_of {
            self.open(&node.tag, vid, env);
            self.emit_static_attrs(vid);
            let mut child_env = env.clone();
            if let Some(t) = env.get(var) {
                let t = t.clone();
                self.emit_tuple_attrs(&node.attrs.clone(), &t.columns, &t.values);
                if !node.bv.is_empty() {
                    child_env.insert(node.bv.clone(), t);
                }
            }
            for &child in tree.children(vid) {
                self.publish_node(child, &child_env)?;
            }
            self.close();
            return Ok(());
        }

        match (&node.query, tuple) {
            (Some(_), Some(t)) => {
                self.open(&node.tag, vid, env);
                self.emit_static_attrs(vid);
                self.emit_tuple_attrs(&node.attrs.clone(), &t.columns, &t.values);
                if !tree.children(vid).is_empty() {
                    let mut child_env = env.clone();
                    child_env.insert(node.bv.clone(), t.clone());
                    for &child in tree.children(vid) {
                        self.publish_node(child, &child_env)?;
                    }
                }
                self.close();
            }
            (None, _) => {
                self.open(&node.tag, vid, env);
                self.emit_static_attrs(vid);
                for &child in tree.children(vid) {
                    self.publish_node(child, env)?;
                }
                self.close();
            }
            (Some(_), None) => unreachable!("query-node tasks always carry a tuple"),
        }
        Ok(())
    }

    /// Full per-node logic (guard, context copy, literal, query) for
    /// non-root-level descendants.
    fn publish_node(&mut self, vid: ViewNodeId, env: &ParamEnv) -> Result<()> {
        let tree = self.shared.tree;
        let node = tree
            .node(vid)
            .expect("publish_node is never called on root");

        // Emission guard: `SELECT 1 WHERE guard` over the current bindings.
        if let Some(guard) = &node.guard {
            let probe = guard_probe(guard);
            self.stats.queries_run += 1;
            if self
                .run_tag_query(vid, Role::Guard, &probe, env)?
                .is_empty()
            {
                return Ok(());
            }
        }

        if node.context_tuple_of.is_some() || node.query.is_none() {
            return self.emit_instance(vid, env, None);
        }

        let query = node.query.as_ref().expect("query node");
        let rel: Relation = self.run_tag_query(vid, Role::Tag, query, env)?;
        self.stats.queries_run += 1;
        self.stats.tuples_fetched += rel.len();
        for i in 0..rel.len() {
            self.emit_instance(vid, env, Some(&rel.tuple(i)))?;
        }
        Ok(())
    }
}

/// The memo key for one execution: the rendered values of every binding
/// slot the plan actually reads. `None` (memo bypass) when a slot cannot be
/// resolved — the execution then reports the unbound parameter itself.
fn memo_key(slots: &[(String, String)], env: &ParamEnv) -> Option<String> {
    let mut key = String::new();
    for (var, column) in slots {
        let v = env.get(var)?.get(column)?;
        key.push_str(&format!("{v:?}"));
        key.push('\u{1f}');
    }
    Some(key)
}

/// Projects tuple columns into attribute `(name, value)` pairs: NULLs
/// omitted, first occurrence wins on duplicate column names. Both the
/// scalar and the batched worker emit through this, so their attribute
/// output cannot drift apart.
fn project_attrs<'c>(
    attrs: &AttrProjection,
    columns: &'c [String],
    values: &[xvc_rel::Value],
) -> Vec<(&'c str, String)> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for (c, val) in columns.iter().zip(values) {
        let wanted = match attrs {
            AttrProjection::All => true,
            AttrProjection::None => false,
            AttrProjection::Columns(cols) => cols.iter().any(|x| x == c),
        };
        if !wanted || val.is_null() || !seen.insert(c.as_str()) {
            continue;
        }
        out.push((c.as_str(), val.render()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::schema_tree::ViewNode;
    use xvc_rel::{parse_query, ColumnDef, ColumnType, TableSchema, Value};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(
            TableSchema::new(
                "metroarea",
                vec![
                    ColumnDef::new("metroid", ColumnType::Int),
                    ColumnDef::new("metroname", ColumnType::Str),
                ],
            )
            .unwrap(),
        );
        db.create_table(
            TableSchema::new(
                "hotel",
                vec![
                    ColumnDef::new("hotelid", ColumnType::Int),
                    ColumnDef::new("hotelname", ColumnType::Str),
                    ColumnDef::new("starrating", ColumnType::Int),
                    ColumnDef::new("metro_id", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
        for (id, name) in [(1, "chicago"), (2, "nyc")] {
            db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
                .unwrap();
        }
        for (id, name, stars, metro) in [
            (10, "palmer", 5, 1),
            (11, "drake", 4, 1),
            (12, "plaza", 5, 2),
        ] {
            db.insert(
                "hotel",
                vec![
                    Value::Int(id),
                    Value::Str(name.into()),
                    Value::Int(stars),
                    Value::Int(metro),
                ],
            )
            .unwrap();
        }
        db
    }

    fn view() -> SchemaTree {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        t.add_child(
            metro,
            ViewNode::new(
                3,
                "hotel",
                "h",
                parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid AND starrating > 4")
                    .unwrap(),
            ),
        )
        .unwrap();
        t
    }

    fn publish_one(tree: &SchemaTree, db: &Database) -> Result<Published> {
        Engine::new(tree).session().publish(db)
    }

    #[test]
    fn publishes_nested_elements() {
        let p = publish_one(&view(), &db()).unwrap();
        let xml = p.document.to_xml();
        assert_eq!(
            xml,
            "<metro metroid=\"1\" metroname=\"chicago\">\
             <hotel hotelid=\"10\" hotelname=\"palmer\" starrating=\"5\" metro_id=\"1\"/>\
             </metro>\
             <metro metroid=\"2\" metroname=\"nyc\">\
             <hotel hotelid=\"12\" hotelname=\"plaza\" starrating=\"5\" metro_id=\"2\"/>\
             </metro>"
        );
        assert_eq!(p.stats.elements, 4);
        // One metroarea query + one hotel query per metro tuple.
        assert_eq!(p.stats.queries_run, 3);
        assert_eq!(p.stats.tuples_fetched, 4);
        assert!(p.trace.is_none());
    }

    #[test]
    fn null_attributes_omitted() {
        let mut database = db();
        database
            .insert("metroarea", vec![Value::Int(3), Value::Null])
            .unwrap();
        let p = publish_one(&view(), &database).unwrap();
        assert!(p.document.to_xml().contains("<metro metroid=\"3\"/>"));
    }

    #[test]
    fn empty_result_publishes_nothing() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid FROM metroarea WHERE metroid > 99").unwrap(),
        ))
        .unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert!(p.document.is_empty());
        assert_eq!(p.stats.elements, 0);
        assert_eq!(p.stats.queries_run, 1);
    }

    #[test]
    fn publish_validates_first() {
        let mut t = SchemaTree::new();
        t.add_root_node(ViewNode::new(
            1,
            "x",
            "a",
            parse_query("SELECT * FROM hotel WHERE metro_id=$nope.metroid").unwrap(),
        ))
        .unwrap();
        assert!(matches!(
            publish_one(&t, &db()),
            Err(crate::Error::UnboundViewParameter { .. })
        ));
    }

    #[test]
    fn attr_projection_columns_filters_attributes() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::Columns(vec!["metroname".into()]);
        t.add_root_node(n).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        let xml = p.document.to_xml();
        assert!(xml.contains("<metro metroname=\"chicago\"/>"), "{xml}");
        assert!(!xml.contains("metroid"), "{xml}");
    }

    #[test]
    fn attr_projection_none_publishes_bare_elements() {
        let mut t = SchemaTree::new();
        let mut n = ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        );
        n.attrs = crate::AttrProjection::None;
        t.add_root_node(n).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(p.document.to_xml(), "<metro/><metro/>");
    }

    #[test]
    fn literal_nodes_emit_once_with_static_attrs() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut lit = ViewNode::literal(2, "badge");
        lit.static_attrs = vec![("kind".into(), "gold".into())];
        t.add_child(metro, lit).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(
            p.document.to_xml(),
            "<metro metroid=\"1\"><badge kind=\"gold\"/></metro>\
             <metro metroid=\"2\"><badge kind=\"gold\"/></metro>"
        );
    }

    #[test]
    fn context_copy_reuses_bound_tuple() {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let wrapper = t.add_child(metro, ViewNode::literal(2, "wrap")).unwrap();
        let mut copy = ViewNode::literal(3, "metro_copy");
        copy.context_tuple_of = Some("m".into());
        copy.attrs = crate::AttrProjection::All;
        t.add_child(wrapper, copy).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        let xml = p.document.to_xml();
        assert!(
            xml.contains("<wrap><metro_copy metroid=\"1\" metroname=\"chicago\"/></wrap>"),
            "{xml}"
        );
        // One query (metroarea) — the copies run none.
        assert_eq!(p.stats.queries_run, 1);
    }

    #[test]
    fn guards_gate_subtrees() {
        use xvc_rel::BinOp;
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let mut guarded = ViewNode::literal(2, "only_chicago");
        guarded.guard = Some(ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::param("m", "metroname"),
            ScalarExpr::str("chicago"),
        ));
        t.add_child(metro, guarded).unwrap();
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(
            p.document.to_xml(),
            "<metro metroid=\"1\" metroname=\"chicago\"><only_chicago/></metro>\
             <metro metroid=\"2\" metroname=\"nyc\"/>"
        );
    }

    #[test]
    fn trace_records_indexed_paths_and_envs() {
        let p = Engine::new(&view())
            .traced(true)
            .session()
            .publish(&db())
            .unwrap();
        let trace = p.trace.expect("traced publish");
        assert_eq!(trace.entries.len(), 4); // 2 metros + 1 hotel each
        let paths: Vec<&str> = trace.entries.iter().map(|e| e.path.as_str()).collect();
        assert_eq!(
            paths,
            vec![
                "/metro[1]",
                "/metro[1]/hotel[1]",
                "/metro[2]",
                "/metro[2]/hotel[1]"
            ]
        );
        // The hotel under the second metro ran with $m bound to nyc.
        let entry = trace.lookup("/metro[2]/hotel[1]").unwrap();
        let m = entry.env.get("m").unwrap();
        assert_eq!(m.get("metroname"), Some(&Value::Str("nyc".into())));
        // deepest_ancestor finds the emitted parent of a missing child.
        let anc = trace
            .deepest_ancestor("/metro[2]/hotel[1]/room[1]")
            .unwrap();
        assert_eq!(anc.path, "/metro[2]/hotel[1]");
        assert!(!p.document.is_empty());
    }

    #[test]
    fn publish_with_stats_reports_engine_work() {
        let p = publish_one(&view(), &db()).unwrap();
        assert_eq!(p.stats.queries_run, 3);
        // metroarea scan (2 rows) + two parameterized hotel scans (3 rows
        // each), both carrying the $m binding.
        assert_eq!(p.eval.queries, 3);
        assert_eq!(p.eval.param_queries, 2);
        assert_eq!(p.eval.rows_scanned, 2 + 3 + 3);
    }

    #[test]
    fn leaf_queries_not_run_for_absent_parents() {
        // Child tag queries run once per parent tuple — zero parent tuples
        // means the child query never runs.
        let mut t = view();
        let metro = t.find_by_paper_id(1).unwrap();
        t.node_mut(metro).unwrap().query = Some(
            parse_query("SELECT metroid, metroname FROM metroarea WHERE metroid > 99").unwrap(),
        );
        let p = publish_one(&t, &db()).unwrap();
        assert_eq!(p.stats.queries_run, 1);
    }

    #[test]
    fn second_publish_hits_the_plan_cache() {
        let tree = view();
        let db = db();
        let engine = Engine::new(&tree);
        let first = engine.session().publish(&db).unwrap();
        assert_eq!(first.stats.plans_prepared, 2);
        assert_eq!(first.stats.plan_cache_hits, 0);
        let second = engine.session().publish(&db).unwrap();
        assert_eq!(second.stats.plans_prepared, 0);
        assert_eq!(second.stats.plan_cache_hits, 2);
        assert!(second.stats.plan_cache_hit_rate() > 0.99);
        assert_eq!(first.document.to_xml(), second.document.to_xml());
        // Engine work is identical on the warm path.
        assert_eq!(first.eval, second.eval);
    }

    #[test]
    fn failed_plan_is_negatively_cached() {
        use xvc_rel::BinOp;
        let mut t = view();
        // A root-level node whose tag query cannot compile (unknown
        // table), gated by a guard that never fires so the interpreter
        // fallback never runs either — the view still publishes.
        let mut bad = ViewNode::new(
            9,
            "phantom",
            "p",
            parse_query("SELECT * FROM no_such_table").unwrap(),
        );
        bad.guard = Some(ScalarExpr::binary(
            BinOp::Eq,
            ScalarExpr::int(1),
            ScalarExpr::int(2),
        ));
        t.add_root_node(bad).unwrap();
        let db = db();
        let engine = Engine::new(&t);

        let first = engine.session().publish(&db).unwrap();
        // metro + hotel tag queries and the guard probe compile; the
        // phantom tag query fails, exactly once.
        assert_eq!(first.stats.plans_prepared, 3);
        assert_eq!(first.stats.plan_prepare_failures, 1);
        assert_eq!(first.stats.plan_cache_hits, 0);
        assert!(!first.document.to_xml().contains("phantom"));

        let second = engine.session().publish(&db).unwrap();
        // The failure is served from the cache — no recompilation
        // attempt, and the hit rate is undistorted.
        assert_eq!(second.stats.plans_prepared, 0);
        assert_eq!(second.stats.plan_prepare_failures, 0);
        assert_eq!(second.stats.plan_cache_hits, 4);
        assert_eq!(second.stats.plan_cache_hit_rate(), 1.0);
        assert_eq!(first.document.to_xml(), second.document.to_xml());
    }

    #[test]
    fn index_creation_invalidates_plan_cache() {
        use xvc_rel::IndexKind;
        let t = view();
        let mut db = db();
        let engine = Engine::new(&t);
        let before = engine.session().publish(&db).unwrap();
        assert_eq!(before.stats.plans_prepared, 2);

        // An index changes the catalog fingerprint even though no table
        // was added: plans recompile (and may now pick an index access
        // path) while the document stays identical.
        db.create_index("hotel", "metro_id", IndexKind::Hash)
            .unwrap();
        let after = engine.session().publish(&db).unwrap();
        assert_eq!(after.stats.plans_prepared, 2);
        assert_eq!(after.stats.plan_cache_hits, 0);
        assert_eq!(before.document.to_xml(), after.document.to_xml());

        // And the fingerprint is stable afterwards: pure cache hits.
        let warm = engine.session().publish(&db).unwrap();
        assert_eq!(warm.stats.plan_cache_hits, 2);
        assert_eq!(warm.stats.plans_prepared, 0);
        assert_eq!(warm.document.to_xml(), after.document.to_xml());
    }

    #[test]
    fn interpreter_and_prepared_paths_agree() {
        let tree = view();
        let db = db();
        // Scalar prepared execution mirrors the interpreter exactly, down
        // to the engine counters; the batched path shares the document but
        // reports its own (smaller) engine work, so it is compared
        // separately in `batched_and_scalar_paths_agree`.
        let prepared = Engine::new(&tree)
            .batched(false)
            .session()
            .publish(&db)
            .unwrap();
        let interpreted = Engine::new(&tree)
            .prepared(false)
            .session()
            .publish(&db)
            .unwrap();
        assert_eq!(prepared.document.to_xml(), interpreted.document.to_xml());
        assert_eq!(prepared.eval, interpreted.eval);
        assert_eq!(interpreted.stats.plans_prepared, 0);
    }

    #[test]
    fn batched_and_scalar_paths_agree() {
        let tree = view();
        let db = db();
        let scalar = Engine::new(&tree)
            .batched(false)
            .traced(true)
            .session()
            .publish(&db)
            .unwrap();
        let batched = Engine::new(&tree)
            .traced(true)
            .session()
            .publish(&db)
            .unwrap();
        assert_eq!(batched.document.to_xml(), scalar.document.to_xml());
        let (bt, st) = (batched.trace.unwrap(), scalar.trace.unwrap());
        assert_eq!(bt.entries.len(), st.entries.len());
        for (b, s) in bt.entries.iter().zip(&st.entries) {
            assert_eq!(b.path, s.path);
            assert_eq!(b.view, s.view);
            assert_eq!(b.env, s.env);
        }
        assert_eq!(batched.stats.without_batch_counters(), scalar.stats);
        assert_eq!(scalar.stats.batches_executed, 0);
        // One batch per metro task's hotel level.
        assert_eq!(batched.stats.batches_executed, 2);
        assert_eq!(batched.stats.rows_regrouped, 2);
    }

    #[test]
    fn batched_interpreter_matches_scalar_interpreter_exactly() {
        // Without prepared plans there is nothing to batch: the frontier
        // walk degenerates to per-parent interpretation and even the
        // engine counters must be identical.
        let tree = view();
        let db = db();
        let scalar = Engine::new(&tree)
            .prepared(false)
            .batched(false)
            .session()
            .publish(&db)
            .unwrap();
        let batched = Engine::new(&tree)
            .prepared(false)
            .session()
            .publish(&db)
            .unwrap();
        assert_eq!(batched.document.to_xml(), scalar.document.to_xml());
        assert_eq!(batched.eval, scalar.eval);
        assert_eq!(batched.stats, scalar.stats);
        assert_eq!(batched.stats.batches_executed, 0);
    }

    #[test]
    fn bounded_path_demotes_single_binding_batches_to_scalar() {
        // Each metro task's hotel batch provably carries one binding (the
        // task root has one instance), so bound-driven planning executes
        // it scalar — one run with the slot pushdown intact — instead of
        // the binding-free shared pipeline, which materializes the
        // stripped rows and regroups them through a hash build per batch.
        let tree = view();
        let db = db();
        let bounded = Engine::new(&tree)
            .traced(true)
            .session()
            .publish(&db)
            .unwrap();
        let unbounded = Engine::new(&tree)
            .bounded(false)
            .traced(true)
            .session()
            .publish(&db)
            .unwrap();
        assert_eq!(bounded.document.to_xml(), unbounded.document.to_xml());
        let (bt, ut) = (bounded.trace.unwrap(), unbounded.trace.unwrap());
        assert_eq!(bt.entries.len(), ut.entries.len());
        for (b, u) in bt.entries.iter().zip(&ut.entries) {
            assert_eq!(b.path, u.path);
            assert_eq!(b.env, u.env);
        }
        assert_eq!(bounded.stats, unbounded.stats);
        // Scans and query counts agree; the shared pipeline's regroup
        // hash builds (one per batch) are what the bound saves.
        assert_eq!(bounded.eval.queries, unbounded.eval.queries);
        assert_eq!(bounded.eval.rows_scanned, unbounded.eval.rows_scanned);
        assert_eq!(bounded.eval.hash_join_builds, 0, "{:?}", bounded.eval);
        assert_eq!(unbounded.eval.hash_join_builds, 2, "{:?}", unbounded.eval);
    }

    #[test]
    fn memo_reuses_equal_bindings() {
        // metro -> hotel -> home: the `home` plan reads only $h.metro_id,
        // which is equal for both hotels under metro 1, so the second
        // sibling is a memo hit inside that subtree task (the memo is
        // task-scoped, so reuse never crosses root-level siblings).
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                ViewNode::new(
                    2,
                    "hotel",
                    "h",
                    parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap(),
                ),
            )
            .unwrap();
        t.add_child(
            hotel,
            ViewNode::new(
                3,
                "home",
                "x",
                parse_query("SELECT metroname FROM metroarea WHERE metroid=$h.metro_id").unwrap(),
            ),
        )
        .unwrap();
        let database = db();
        let p = publish_one(&t, &database).unwrap();
        // metro 1 has two hotels with the same metro_id: one hit.
        assert_eq!(p.stats.memo_hits, 1, "{:?}", p.stats);
        // The memoized relation still counts as a query run.
        assert_eq!(p.stats.queries_run, 1 + 2 + 3);
        // ... but skips the engine entirely.
        assert_eq!(p.eval.queries, 1 + 2 + 2);
        // Document content identical to the interpreter's.
        let i = Engine::new(&t)
            .prepared(false)
            .session()
            .publish(&database)
            .unwrap();
        assert_eq!(p.document.to_xml(), i.document.to_xml());
    }

    #[test]
    fn delta_republish_of_leaf_change_matches_full_republish() {
        let tree = view();
        let mut database = db();
        let engine = Engine::new(&tree).incremental(true);
        let prev = engine.session().publish(&database).unwrap();
        assert!(prev.splice.is_some());
        assert!(prev.reexecuted.is_empty());

        // New 5-star hotel in chicago: only the hotel node reads `hotel`.
        let delta = database
            .execute_dml("INSERT INTO hotel VALUES (13, 'langham', 5, 1)")
            .unwrap();
        let after = engine
            .session()
            .republish_delta(&database, &prev, &delta)
            .unwrap();
        let full = Engine::new(&tree).session().publish(&database).unwrap();
        assert_eq!(after.document.to_xml(), full.document.to_xml());
        assert!(after.document.to_xml().contains("langham"));
        // One hotel batch across both surviving metros, instead of the
        // full run's one metro batch + two per-task hotel batches.
        assert_eq!(after.stats.batches_reexecuted, 1, "{:?}", after.stats);
        assert!(after.stats.batches_reexecuted < full.stats.batches_executed);
        assert_eq!(after.stats.nodes_respliced, 3); // 3 hotels re-emitted
        assert_eq!(after.stats.delta_rows_in, 1);
        // Only the hotel node re-executed.
        let hotel = tree.find_by_paper_id(3).unwrap();
        assert_eq!(after.reexecuted, vec![hotel]);

        // The result carries a current splice index: deltas chain.
        let delta2 = database
            .execute_dml("DELETE FROM hotel WHERE hotelname = 'plaza'")
            .unwrap();
        let after2 = engine
            .session()
            .republish_delta(&database, &after, &delta2)
            .unwrap();
        let full2 = Engine::new(&tree).session().publish(&database).unwrap();
        assert_eq!(after2.document.to_xml(), full2.document.to_xml());
        assert!(!after2.document.to_xml().contains("plaza"));
    }

    #[test]
    fn delta_republish_of_root_table_change_matches_full_republish() {
        let tree = view();
        let mut database = db();
        let engine = Engine::new(&tree).incremental(true);
        let prev = engine.session().publish(&database).unwrap();
        // metroarea feeds the root-level metro node: the whole document is
        // rebuilt through the root-top path.
        let delta = database
            .execute_dml("INSERT INTO metroarea VALUES (3, 'boston')")
            .unwrap();
        let after = engine
            .session()
            .republish_delta(&database, &prev, &delta)
            .unwrap();
        let full = Engine::new(&tree).session().publish(&database).unwrap();
        assert_eq!(after.document.to_xml(), full.document.to_xml());
        assert!(after.document.to_xml().contains("boston"));
    }

    #[test]
    fn delta_republish_ignores_unread_tables() {
        let tree = view();
        let mut database = db();
        database.create_table(
            TableSchema::new("audit", vec![ColumnDef::new("id", ColumnType::Int)]).unwrap(),
        );
        let engine = Engine::new(&tree).incremental(true);
        let prev = engine.session().publish(&database).unwrap();
        let delta = database
            .execute_dml("INSERT INTO audit VALUES (1)")
            .unwrap();
        let after = engine
            .session()
            .republish_delta(&database, &prev, &delta)
            .unwrap();
        assert_eq!(after.document.to_xml(), prev.document.to_xml());
        assert_eq!(after.stats.batches_reexecuted, 0);
        assert_eq!(after.stats.nodes_respliced, 0);
        assert_eq!(after.stats.delta_rows_in, 1);
        assert!(after.reexecuted.is_empty());
        assert!(after.splice.is_some());
    }

    #[test]
    fn delta_republish_without_splice_falls_back_to_full() {
        let tree = view();
        let mut database = db();
        let engine = Engine::new(&tree); // not incremental
        let prev = engine.session().publish(&database).unwrap();
        assert!(prev.splice.is_none());
        let delta = database
            .execute_dml("INSERT INTO hotel VALUES (13, 'langham', 5, 1)")
            .unwrap();
        let after = engine
            .session()
            .republish_delta(&database, &prev, &delta)
            .unwrap();
        let full = Engine::new(&tree).session().publish(&database).unwrap();
        assert_eq!(after.document.to_xml(), full.document.to_xml());
        assert_eq!(after.stats.batches_reexecuted, after.stats.batches_executed);
        assert!(!after.reexecuted.is_empty());
    }

    #[test]
    fn delta_republish_handles_deletes_emptying_groups() {
        let tree = view();
        let mut database = db();
        let engine = Engine::new(&tree).incremental(true);
        let prev = engine.session().publish(&database).unwrap();
        let delta = database
            .execute_dml("DELETE FROM hotel WHERE starrating > 4")
            .unwrap();
        let after = engine
            .session()
            .republish_delta(&database, &prev, &delta)
            .unwrap();
        let full = Engine::new(&tree).session().publish(&database).unwrap();
        assert_eq!(after.document.to_xml(), full.document.to_xml());
        assert!(!after.document.to_xml().contains("hotel"));
        assert_eq!(after.stats.nodes_respliced, 0);
    }

    #[test]
    fn incremental_publish_splice_covers_every_element() {
        let tree = view();
        let database = db();
        let p = Engine::new(&tree)
            .incremental(true)
            .parallel(4)
            .session()
            .publish(&database)
            .unwrap();
        let splice = p.splice.expect("incremental publish records splice");
        assert_eq!(splice.entries.len(), p.stats.elements);
        // Every entry's view node exists and the root elements carry their
        // own binding in child_env.
        let metro = tree.find_by_paper_id(1).unwrap();
        let roots = p.document.children(p.document.root()).to_vec();
        for r in roots {
            let e = &splice.entries[&r];
            assert_eq!(e.view, metro);
            assert!(e.child_env.contains_key("m"));
        }
    }

    #[test]
    fn memo_hits_do_not_count_rows_regrouped() {
        // metro -> hotel -> home, where `home` reads only $h.metro_id:
        // under metro 1 the second hotel is a memo hit, so its parent is
        // served without entering the batch — rows_regrouped must count
        // the engine-executed bindings' rows only.
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
            ))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                ViewNode::new(
                    2,
                    "hotel",
                    "h",
                    parse_query("SELECT * FROM hotel WHERE metro_id=$m.metroid").unwrap(),
                ),
            )
            .unwrap();
        t.add_child(
            hotel,
            ViewNode::new(
                3,
                "home",
                "x",
                parse_query("SELECT metroname FROM metroarea WHERE metroid=$h.metro_id").unwrap(),
            ),
        )
        .unwrap();
        let database = db();
        for threads in [1, 4] {
            let p = Engine::new(&t)
                .parallel(threads)
                .session()
                .publish(&database)
                .unwrap();
            assert_eq!(p.stats.memo_hits, 1, "{:?}", p.stats);
            // hotel rows: 2 under metro 1 + 1 under metro 2; home rows:
            // one per *executed* home batch binding (metro 1's second
            // hotel is memo-served): 1 + 1. Counting memo hits too would
            // give 6.
            assert_eq!(p.stats.rows_regrouped, 3 + 2, "{:?}", p.stats);
            // One hotel batch + one home batch per metro task.
            assert_eq!(p.stats.batches_executed, 4);
            assert_eq!(p.stats.bindings_per_batch_max, 1);
            // Scalar parity on everything that is not batch-only.
            let s = Engine::new(&t)
                .batched(false)
                .parallel(threads)
                .session()
                .publish(&database)
                .unwrap();
            assert_eq!(p.stats.without_batch_counters(), s.stats);
            assert_eq!(p.document.to_xml(), s.document.to_xml());
        }
    }
}
