//! Publisher builder integration tests: parallel evaluation is
//! deterministic, the plan cache warms and invalidates correctly, the
//! per-publish memo never leaks stale results across database mutations,
//! and the interpreted path agrees with the prepared path.

use xvc_rel::{parse_query, ColumnDef, ColumnType, Database, TableSchema, Value};
use xvc_view::{Publisher, SchemaTree, ViewNode};
use xvc_xml::documents_equal_unordered;

fn db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "metroarea",
            vec![
                ColumnDef::new("metroid", ColumnType::Int),
                ColumnDef::new("metroname", ColumnType::Str),
            ],
        )
        .unwrap(),
    );
    db.create_table(
        TableSchema::new(
            "hotel",
            vec![
                ColumnDef::new("hotelid", ColumnType::Int),
                ColumnDef::new("hotelname", ColumnType::Str),
                ColumnDef::new("starrating", ColumnType::Int),
                ColumnDef::new("metro_id", ColumnType::Int),
            ],
        )
        .unwrap(),
    );
    for (id, name) in [(1, "chicago"), (2, "nyc"), (3, "sf"), (4, "boston")] {
        db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
            .unwrap();
    }
    for (id, name, stars, metro) in [
        (10, "palmer", 5, 1),
        (11, "drake", 4, 1),
        (12, "plaza", 5, 2),
        (13, "fairmont", 4, 3),
        (14, "lenox", 3, 4),
    ] {
        db.insert(
            "hotel",
            vec![
                Value::Int(id),
                Value::Str(name.into()),
                Value::Int(stars),
                Value::Int(metro),
            ],
        )
        .unwrap();
    }
    db
}

/// metro → hotel, parameterized on the metro binding: four root-level
/// sibling subtrees, so `.parallel(4)` actually fans out.
fn view() -> SchemaTree {
    let mut t = SchemaTree::new();
    let metro = t
        .add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        ))
        .unwrap();
    t.add_child(
        metro,
        ViewNode::new(
            2,
            "hotel",
            "h",
            parse_query("SELECT hotelname, starrating FROM hotel WHERE metro_id = $m.metroid")
                .unwrap(),
        ),
    )
    .unwrap();
    t
}

#[test]
fn parallel_publish_is_deterministic() {
    let v = view();
    let db = db();
    let sequential = Publisher::new(&v).publish(&db).unwrap();
    for n in [2, 4, 8] {
        let parallel = Publisher::new(&v).parallel(n).publish(&db).unwrap();
        // Not just an unordered match: document order is pinned too.
        assert_eq!(
            parallel.document.to_pretty_xml(),
            sequential.document.to_pretty_xml(),
            "document order changed at parallel({n})"
        );
        assert!(documents_equal_unordered(
            &parallel.document,
            &sequential.document
        ));
        // Per-task counters merge deterministically, so every statistic —
        // publish and eval alike — is independent of the thread count.
        assert_eq!(parallel.stats, sequential.stats, "stats at parallel({n})");
        assert_eq!(
            parallel.eval, sequential.eval,
            "eval stats at parallel({n})"
        );
    }
}

#[test]
fn plan_cache_warms_on_second_publish() {
    let v = view();
    let db = db();
    let mut publisher = Publisher::new(&v);

    let cold = publisher.publish(&db).unwrap();
    // Two tag queries (metro, hotel), no guards: two compilations, no hits.
    assert_eq!(cold.stats.plans_prepared, 2);
    assert_eq!(cold.stats.plan_cache_hits, 0);
    assert_eq!(cold.stats.plan_cache_hit_rate(), 0.0);

    let warm = publisher.publish(&db).unwrap();
    assert_eq!(warm.stats.plans_prepared, 0);
    assert_eq!(warm.stats.plan_cache_hits, 2);
    assert_eq!(warm.stats.plan_cache_hit_rate(), 1.0);
    assert!(documents_equal_unordered(&warm.document, &cold.document));
}

#[test]
fn catalog_change_invalidates_plan_cache() {
    let v = view();
    let mut db = db();
    let mut publisher = Publisher::new(&v);
    publisher.publish(&db).unwrap();

    // A new table changes the catalog, so every cached plan is dropped.
    db.create_table(TableSchema::new("extra", vec![ColumnDef::new("x", ColumnType::Int)]).unwrap());
    let after = publisher.publish(&db).unwrap();
    assert_eq!(after.stats.plans_prepared, 2);
    assert_eq!(after.stats.plan_cache_hits, 0);
}

#[test]
fn database_mutations_between_publishes_are_observed() {
    let v = view();
    let mut db = db();
    let mut publisher = Publisher::new(&v);

    let before = publisher.publish(&db).unwrap();
    db.insert(
        "hotel",
        vec![
            Value::Int(15),
            Value::Str("ritz".into()),
            Value::Int(5),
            Value::Int(2),
        ],
    )
    .unwrap();
    let after = publisher.publish(&db).unwrap();

    // Same catalog ⇒ plans were reused — but the memo is per-publish, so
    // the new row must show up (a cross-call memo would hand back the
    // stale nyc subtree here).
    assert_eq!(after.stats.plan_cache_hits, 2);
    assert_eq!(after.stats.elements, before.stats.elements + 1);
    assert!(after.document.to_pretty_xml().contains("ritz"));
    assert!(!before.document.to_pretty_xml().contains("ritz"));
}

#[test]
fn interpreted_path_matches_prepared_path() {
    let v = view();
    let db = db();
    // Scalar prepared execution: the batched path does deliberately
    // different (less) engine work and is checked separately below.
    let prepared = Publisher::new(&v).batched(false).publish(&db).unwrap();
    let interpreted = Publisher::new(&v).prepared(false).publish(&db).unwrap();

    assert_eq!(
        prepared.document.to_pretty_xml(),
        interpreted.document.to_pretty_xml()
    );
    // The prepared executor mirrors the interpreter's counters exactly.
    assert_eq!(prepared.eval, interpreted.eval);
    // Only the prepared path touches the plan cache.
    assert_eq!(interpreted.stats.plans_prepared, 0);
    assert_eq!(interpreted.stats.plan_cache_hits, 0);
    assert!(prepared.stats.plans_prepared > 0);
}

#[test]
fn batched_path_is_identical_to_scalar_path() {
    let v = view();
    let db = db();
    for threads in [1, 4] {
        let scalar = Publisher::new(&v)
            .batched(false)
            .traced(true)
            .parallel(threads)
            .publish(&db)
            .unwrap();
        let batched = Publisher::new(&v)
            .traced(true)
            .parallel(threads)
            .publish(&db)
            .unwrap();
        // Documents bit-identical, order included.
        assert_eq!(
            batched.document.to_pretty_xml(),
            scalar.document.to_pretty_xml(),
            "documents diverged at parallel({threads})"
        );
        // Traces entry-for-entry identical.
        let (bt, st) = (batched.trace.unwrap(), scalar.trace.unwrap());
        assert_eq!(bt.entries.len(), st.entries.len());
        for (b, s) in bt.entries.iter().zip(st.entries.iter()) {
            assert_eq!(b.path, s.path, "trace paths at parallel({threads})");
            assert_eq!(b.view, s.view);
            assert_eq!(b.env, s.env);
        }
        // Publish stats identical modulo the batch-only counters, which
        // must be zero scalarly and non-zero batched (the hotel level of
        // each metro task runs as a batch).
        assert_eq!(
            batched.stats.without_batch_counters(),
            scalar.stats,
            "stats diverged at parallel({threads})"
        );
        assert_eq!(scalar.stats.batches_executed, 0);
        assert_eq!(scalar.stats.rows_regrouped, 0);
        assert!(batched.stats.batches_executed > 0);
        assert_eq!(batched.stats.rows_regrouped, 5); // one row per hotel
                                                     // The batched engine work is *less*: every hotel batch scans the
                                                     // hotel table once instead of once per parent tuple.
        assert!(batched.eval.queries <= scalar.eval.queries);
        assert!(batched.eval.rows_scanned <= scalar.eval.rows_scanned);
    }
}

#[test]
fn tracing_is_identical_under_parallelism() {
    let v = view();
    let db = db();
    let seq = Publisher::new(&v).traced(true).publish(&db).unwrap();
    let par = Publisher::new(&v)
        .traced(true)
        .parallel(4)
        .publish(&db)
        .unwrap();
    let (st, pt) = (seq.trace.unwrap(), par.trace.unwrap());
    assert_eq!(st.entries.len(), pt.entries.len());
    for (a, b) in st.entries.iter().zip(pt.entries.iter()) {
        assert_eq!(a.path, b.path);
        assert_eq!(a.view, b.view);
        assert_eq!(a.env, b.env);
    }
}
