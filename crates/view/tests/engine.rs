//! Engine/Session integration tests: parallel evaluation is
//! deterministic, the shared plan cache warms and invalidates correctly
//! (including under concurrent sessions), the per-publish memo never
//! leaks stale results across database mutations, the interpreted path
//! agrees with the prepared path, and mid-flight DDL/DML never yields a
//! stale or torn document.

use std::sync::RwLock;

use xvc_rel::{parse_query, ColumnDef, ColumnType, Database, IndexKind, TableSchema, Value};
use xvc_view::{Engine, PublishStats, SchemaTree, ViewNode};
use xvc_xml::documents_equal_unordered;

fn db() -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "metroarea",
            vec![
                ColumnDef::new("metroid", ColumnType::Int),
                ColumnDef::new("metroname", ColumnType::Str),
            ],
        )
        .unwrap(),
    );
    db.create_table(
        TableSchema::new(
            "hotel",
            vec![
                ColumnDef::new("hotelid", ColumnType::Int),
                ColumnDef::new("hotelname", ColumnType::Str),
                ColumnDef::new("starrating", ColumnType::Int),
                ColumnDef::new("metro_id", ColumnType::Int),
            ],
        )
        .unwrap(),
    );
    for (id, name) in [(1, "chicago"), (2, "nyc"), (3, "sf"), (4, "boston")] {
        db.insert("metroarea", vec![Value::Int(id), Value::Str(name.into())])
            .unwrap();
    }
    for (id, name, stars, metro) in [
        (10, "palmer", 5, 1),
        (11, "drake", 4, 1),
        (12, "plaza", 5, 2),
        (13, "fairmont", 4, 3),
        (14, "lenox", 3, 4),
    ] {
        db.insert(
            "hotel",
            vec![
                Value::Int(id),
                Value::Str(name.into()),
                Value::Int(stars),
                Value::Int(metro),
            ],
        )
        .unwrap();
    }
    db
}

/// metro → hotel, parameterized on the metro binding: four root-level
/// sibling subtrees, so `.parallel(4)` actually fans out.
fn view() -> SchemaTree {
    let mut t = SchemaTree::new();
    let metro = t
        .add_root_node(ViewNode::new(
            1,
            "metro",
            "m",
            parse_query("SELECT metroid, metroname FROM metroarea").unwrap(),
        ))
        .unwrap();
    t.add_child(
        metro,
        ViewNode::new(
            2,
            "hotel",
            "h",
            parse_query("SELECT hotelname, starrating FROM hotel WHERE metro_id = $m.metroid")
                .unwrap(),
        ),
    )
    .unwrap();
    t
}

#[test]
fn parallel_publish_is_deterministic() {
    let v = view();
    let db = db();
    let sequential = Engine::new(&v).session().publish(&db).unwrap();
    for n in [2, 4, 8] {
        let parallel = Engine::new(&v).parallel(n).session().publish(&db).unwrap();
        // Not just an unordered match: document order is pinned too.
        assert_eq!(
            parallel.document.to_pretty_xml(),
            sequential.document.to_pretty_xml(),
            "document order changed at parallel({n})"
        );
        assert!(documents_equal_unordered(
            &parallel.document,
            &sequential.document
        ));
        // Per-task counters merge deterministically, so every statistic —
        // publish and eval alike — is independent of the thread count.
        assert_eq!(parallel.stats, sequential.stats, "stats at parallel({n})");
        assert_eq!(
            parallel.eval, sequential.eval,
            "eval stats at parallel({n})"
        );
    }
}

#[test]
fn plan_cache_warms_on_second_publish() {
    let v = view();
    let db = db();
    let engine = Engine::new(&v);

    let cold = engine.session().publish(&db).unwrap();
    // Two tag queries (metro, hotel), no guards: two compilations, no hits.
    assert_eq!(cold.stats.plans_prepared, 2);
    assert_eq!(cold.stats.plan_cache_hits, 0);
    assert_eq!(cold.stats.plan_cache_hit_rate(), 0.0);

    // The cache lives on the engine, so even a *fresh* session is warm.
    let warm = engine.session().publish(&db).unwrap();
    assert_eq!(warm.stats.plans_prepared, 0);
    assert_eq!(warm.stats.plan_cache_hits, 2);
    assert_eq!(warm.stats.plan_cache_hit_rate(), 1.0);
    assert!(documents_equal_unordered(&warm.document, &cold.document));

    // Engine totals aggregate across sessions without double counting.
    let totals = engine.totals();
    assert_eq!(totals.publishes, 2);
    assert_eq!(totals.stats.plans_prepared, 2);
    assert_eq!(totals.stats.plan_cache_hits, 2);
}

#[test]
fn catalog_change_invalidates_plan_cache() {
    let v = view();
    let mut db = db();
    let engine = Engine::new(&v);
    engine.session().publish(&db).unwrap();

    // A new table changes the catalog, so every cached plan is dropped.
    db.create_table(TableSchema::new("extra", vec![ColumnDef::new("x", ColumnType::Int)]).unwrap());
    let after = engine.session().publish(&db).unwrap();
    assert_eq!(after.stats.plans_prepared, 2);
    assert_eq!(after.stats.plan_cache_hits, 0);
}

#[test]
fn database_mutations_between_publishes_are_observed() {
    let v = view();
    let mut db = db();
    let engine = Engine::new(&v);

    let before = engine.session().publish(&db).unwrap();
    db.insert(
        "hotel",
        vec![
            Value::Int(15),
            Value::Str("ritz".into()),
            Value::Int(5),
            Value::Int(2),
        ],
    )
    .unwrap();
    let after = engine.session().publish(&db).unwrap();

    // Same catalog ⇒ plans were reused — but the memo is per-publish, so
    // the new row must show up (a cross-call memo would hand back the
    // stale nyc subtree here).
    assert_eq!(after.stats.plan_cache_hits, 2);
    assert_eq!(after.stats.elements, before.stats.elements + 1);
    assert!(after.document.to_pretty_xml().contains("ritz"));
    assert!(!before.document.to_pretty_xml().contains("ritz"));
}

#[test]
fn interpreted_path_matches_prepared_path() {
    let v = view();
    let db = db();
    // Scalar prepared execution: the batched path does deliberately
    // different (less) engine work and is checked separately below.
    let prepared = Engine::new(&v)
        .batched(false)
        .session()
        .publish(&db)
        .unwrap();
    let interpreted = Engine::new(&v)
        .prepared(false)
        .session()
        .publish(&db)
        .unwrap();

    assert_eq!(
        prepared.document.to_pretty_xml(),
        interpreted.document.to_pretty_xml()
    );
    // The prepared executor mirrors the interpreter's counters exactly.
    assert_eq!(prepared.eval, interpreted.eval);
    // Only the prepared path touches the plan cache.
    assert_eq!(interpreted.stats.plans_prepared, 0);
    assert_eq!(interpreted.stats.plan_cache_hits, 0);
    assert!(prepared.stats.plans_prepared > 0);
}

#[test]
fn batched_path_is_identical_to_scalar_path() {
    let v = view();
    let db = db();
    for threads in [1, 4] {
        let scalar = Engine::new(&v)
            .batched(false)
            .traced(true)
            .parallel(threads)
            .session()
            .publish(&db)
            .unwrap();
        let batched = Engine::new(&v)
            .traced(true)
            .parallel(threads)
            .session()
            .publish(&db)
            .unwrap();
        // Documents bit-identical, order included.
        assert_eq!(
            batched.document.to_pretty_xml(),
            scalar.document.to_pretty_xml(),
            "documents diverged at parallel({threads})"
        );
        // Traces entry-for-entry identical.
        let (bt, st) = (batched.trace.unwrap(), scalar.trace.unwrap());
        assert_eq!(bt.entries.len(), st.entries.len());
        for (b, s) in bt.entries.iter().zip(st.entries.iter()) {
            assert_eq!(b.path, s.path, "trace paths at parallel({threads})");
            assert_eq!(b.view, s.view);
            assert_eq!(b.env, s.env);
        }
        // Publish stats identical modulo the batch-only counters, which
        // must be zero scalarly and non-zero batched (the hotel level of
        // each metro task runs as a batch).
        assert_eq!(
            batched.stats.without_batch_counters(),
            scalar.stats,
            "stats diverged at parallel({threads})"
        );
        assert_eq!(scalar.stats.batches_executed, 0);
        assert_eq!(scalar.stats.rows_regrouped, 0);
        assert!(batched.stats.batches_executed > 0);
        assert_eq!(batched.stats.rows_regrouped, 5); // one row per hotel
                                                     // The batched engine work is *less*: every hotel batch scans the
                                                     // hotel table once instead of once per parent tuple.
        assert!(batched.eval.queries <= scalar.eval.queries);
        assert!(batched.eval.rows_scanned <= scalar.eval.rows_scanned);
    }
}

#[test]
fn tracing_is_identical_under_parallelism() {
    let v = view();
    let db = db();
    let seq = Engine::new(&v).traced(true).session().publish(&db).unwrap();
    let par = Engine::new(&v)
        .traced(true)
        .parallel(4)
        .session()
        .publish(&db)
        .unwrap();
    let (st, pt) = (seq.trace.unwrap(), par.trace.unwrap());
    assert_eq!(st.entries.len(), pt.entries.len());
    for (a, b) in st.entries.iter().zip(pt.entries.iter()) {
        assert_eq!(a.path, b.path);
        assert_eq!(a.view, b.view);
        assert_eq!(a.env, b.env);
    }
}

#[test]
fn concurrent_sessions_never_double_count_plan_lookups() {
    const THREADS: usize = 8;
    let v = view();
    let db = db();
    let engine = Engine::new(&v);

    // Cold stampede: 8 sessions race an empty cache. Exactly one session
    // compiles the 2 plans (under the write lock, start to finish); every
    // other session observes a complete cache and counts pure hits.
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = engine.clone();
            let db = &db;
            s.spawn(move || engine.session().publish(db).unwrap());
        }
    });
    let cold = engine.totals();
    assert_eq!(cold.publishes, THREADS);
    assert_eq!(cold.stats.plans_prepared, 2, "{:?}", cold.stats);
    assert_eq!(
        cold.stats.plan_cache_hits,
        2 * (THREADS - 1),
        "{:?}",
        cold.stats
    );

    // Warm engine under 8 threads: the aggregate hit rate must be exactly
    // 1.0 — any double-counted preparation or missed hit would distort it.
    let warm_stats: Vec<PublishStats> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let engine = engine.clone();
                let db = &db;
                s.spawn(move || {
                    let mut session = engine.session();
                    session.publish(db).unwrap();
                    session.publish(db).unwrap();
                    *session.stats()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut agg = PublishStats::default();
    for s in &warm_stats {
        assert_eq!(s.plans_prepared, 0, "warm session compiled: {s:?}");
        assert_eq!(s.plan_cache_hits, 4, "2 lookups × 2 publishes: {s:?}");
        agg.absorb(s);
    }
    assert_eq!(agg.plan_cache_hit_rate(), 1.0);
}

#[test]
fn concurrent_publishes_are_byte_identical_to_single_shot() {
    const THREADS: usize = 8;
    let v = view();
    let db = db();
    let expected = Engine::new(&v).session().publish(&db).unwrap();
    let expected_xml = expected.document.to_xml();

    let engine = Engine::new(&v).parallel(2);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let engine = engine.clone();
            let (db, expected_xml) = (&db, &expected_xml);
            s.spawn(move || {
                for _ in 0..5 {
                    let p = engine.session().publish(db).unwrap();
                    assert_eq!(&p.document.to_xml(), expected_xml, "thread {t} diverged");
                }
            });
        }
    });
    assert_eq!(engine.totals().publishes, THREADS * 5);
}

#[test]
fn mid_flight_ddl_and_dml_invalidate_without_stale_documents() {
    const THREADS: usize = 4;
    let v = view();
    let engine = Engine::new(&v);
    let mut post = db();
    let db = RwLock::new(db());

    // The two legitimate states a publish may observe: before and after
    // the writer's mutation batch.
    let before_xml = engine
        .session()
        .publish(&db.read().unwrap())
        .unwrap()
        .document
        .to_xml();
    post.create_index("hotel", "metro_id", IndexKind::Hash)
        .unwrap();
    post.execute_dml("INSERT INTO hotel VALUES (15, 'ritz', 5, 2)")
        .unwrap();
    let after_xml = Engine::new(&v)
        .session()
        .publish(&post)
        .unwrap()
        .document
        .to_xml();

    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let engine = engine.clone();
            let (db, before_xml, after_xml) = (&db, &before_xml, &after_xml);
            s.spawn(move || {
                for _ in 0..20 {
                    let guard = db.read().unwrap();
                    let xml = engine.session().publish(&guard).unwrap().document.to_xml();
                    assert!(
                        xml == *before_xml || xml == *after_xml,
                        "stale or torn document: {xml}"
                    );
                }
            });
        }
        // Mid-flight writer: CREATE INDEX changes the catalog fingerprint
        // (plans recompile), the INSERT changes data only (plans reused).
        let mut guard = db.write().unwrap();
        guard
            .create_index("hotel", "metro_id", IndexKind::Hash)
            .unwrap();
        guard
            .execute_dml("INSERT INTO hotel VALUES (15, 'ritz', 5, 2)")
            .unwrap();
        drop(guard);
    });

    // After the dust settles the engine serves the post-mutation document
    // from a cache warmed for the *new* catalog (the first publish warms
    // it in case every racing reader finished before the writer landed).
    engine.session().publish(&db.read().unwrap()).unwrap();
    let settled = engine.session().publish(&db.read().unwrap()).unwrap();
    assert_eq!(settled.document.to_xml(), after_xml);
    assert_eq!(settled.stats.plans_prepared, 0);
    assert_eq!(settled.stats.plan_cache_hit_rate(), 1.0);
}

#[test]
fn streamed_publish_is_byte_identical_to_materialized() {
    let v = view();
    let db = db();
    let engine = Engine::new(&v);
    let published = engine.session().publish(&db).unwrap();

    let mut compact = Vec::new();
    let streamed = engine.session().publish_to(&db, &mut compact).unwrap();
    assert_eq!(
        String::from_utf8(compact).unwrap(),
        published.document.to_xml()
    );
    assert_eq!(
        streamed.bytes_written as usize,
        published.document.to_xml().len()
    );
    // Same walk, same counters: only the element store differs.
    assert_eq!(streamed.stats.elements, published.stats.elements);
    assert_eq!(streamed.stats.attributes, published.stats.attributes);
    assert_eq!(
        streamed.stats.batches_executed,
        published.stats.batches_executed
    );
    assert_eq!(streamed.eval, published.eval);
    assert!(streamed.peak_emit_bytes > 0);

    let mut pretty = Vec::new();
    engine
        .session()
        .publish_pretty_to(&db, &mut pretty)
        .unwrap();
    assert_eq!(
        String::from_utf8(pretty).unwrap(),
        published.document.to_pretty_xml()
    );
}

#[test]
fn streamed_publish_matches_on_scalar_and_traced_fallbacks() {
    let db = db();
    let expected = Engine::new(&view())
        .session()
        .publish(&db)
        .unwrap()
        .document
        .to_xml();
    for engine in [
        Engine::new(&view()).batched(false),
        Engine::new(&view()).traced(true),
    ] {
        let mut out = Vec::new();
        engine.session().publish_to(&db, &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), expected);
    }
}

/// An `io::Write` that accepts `left` bytes, then fails every write.
struct FailAfter {
    left: usize,
}

impl std::io::Write for FailAfter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.left == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "sink closed",
            ));
        }
        let n = buf.len().min(self.left);
        self.left -= n;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn mid_stream_write_error_surfaces_and_leaves_cache_usable() {
    let v = view();
    let db = db();
    let engine = Engine::new(&v);
    engine.session().publish(&db).unwrap(); // warm the plan cache

    let err = engine
        .session()
        .publish_to(&db, FailAfter { left: 10 })
        .unwrap_err();
    match err {
        xvc_view::Error::Io { kind, .. } => {
            assert_eq!(kind, std::io::ErrorKind::BrokenPipe);
        }
        other => panic!("expected Error::Io, got {other:?}"),
    }

    // The failed stream must not poison the plan cache: a subsequent
    // publish sees pure hits and the expected document.
    let after = engine.session().publish(&db).unwrap();
    assert_eq!(after.stats.plans_prepared, 0);
    assert_eq!(after.stats.plan_cache_hit_rate(), 1.0);
    let mut out = Vec::new();
    engine.session().publish_to(&db, &mut out).unwrap();
    assert_eq!(String::from_utf8(out).unwrap(), after.document.to_xml());
}
