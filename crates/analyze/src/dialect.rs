//! Pass 1: dialect conformance against `XSLT_basic` (§2.2.2).
//!
//! Maps [`xvc_xslt::check_basic`] violations onto stable codes and adds
//! two mode-level checks the basic checker does not perform: selects into
//! empty modes (XVC007) and the missing default-mode root rule (XVC008 —
//! without it `PROCESS(x, root, #default)` fires nothing and composition
//! rejects the workload).

use xvc_xslt::{check_basic, BasicViolation, Stylesheet, DEFAULT_MODE};

use crate::diag::{Code, Diagnostic, Stage};

/// Checks a stylesheet's dialect conformance.
pub fn check_stylesheet(s: &Stylesheet) -> Vec<Diagnostic> {
    let mut out: Vec<Diagnostic> = check_basic(s).iter().map(violation_to_diag).collect();

    // XVC007: apply-templates into a mode no rule declares.
    for (i, rule) in s.rules.iter().enumerate() {
        for a in rule.apply_templates() {
            if !s.rules.iter().any(|r| r.mode == a.mode) {
                out.push(
                    Diagnostic::new(
                        Code::Xvc007,
                        Stage::Stylesheet,
                        format!(
                            "rule {i}: apply-templates select=`{}` targets mode {:?}, \
                             which no template rule declares",
                            a.select, a.mode
                        ),
                    )
                    .with_span(a.select_span.get())
                    .with_help("the apply-templates can never fire a rule; check the mode name"),
                );
            }
        }
    }

    // XVC008: PROCESS starts at (root, #default); only the pattern `/`
    // matches the implied document root.
    let has_root_rule = s.rules.iter().any(|r| {
        r.mode == DEFAULT_MODE && r.match_pattern.absolute && r.match_pattern.steps.is_empty()
    });
    if !has_root_rule {
        out.push(
            Diagnostic::new(
                Code::Xvc008,
                Stage::Stylesheet,
                "no default-mode template rule matches the document root",
            )
            .with_help("add <xsl:template match=\"/\"> — composition starts there (Figure 9)"),
        );
    }
    out
}

fn violation_to_diag(v: &BasicViolation) -> Diagnostic {
    let (code, help) = match v.restriction {
        4 => (
            Code::Xvc001,
            Some("predicates compose directly (§5.1); no rewrite needed"),
        ),
        5 => (
            Code::Xvc002,
            Some("lowered by the §5.2 flow-control rewrite (Composer::rewrites(true) / --rewrites)"),
        ),
        6 => (
            Code::Xvc003,
            Some("lowered by the §5.2 conflict-resolution rewrite (Composer::rewrites(true) / --rewrites)"),
        ),
        8 => (
            Code::Xvc004,
            Some("variables and parameters are outside XSLT_basic; \
                  recursive parameter use needs compose_recursive (§5.3)"),
        ),
        9 => (
            Code::Xvc005,
            Some("outside XSLT_basic, but unambiguous descendant steps compose; \
                  ambiguous embeddings fail at compose time (XVC009)"),
        ),
        _ => (
            Code::Xvc006,
            Some("lowered by the §5.2 value-of rewrite (Composer::rewrites(true) / --rewrites)"),
        ),
    };
    let mut d = Diagnostic::new(
        code,
        Stage::Stylesheet,
        format!("rule {}: {}", v.rule, v.reason),
    )
    .with_span(v.span);
    if let Some(h) = help {
        d = d.with_help(h);
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    fn codes(src: &str) -> Vec<Code> {
        let s = parse_stylesheet(src).unwrap();
        check_stylesheet(&s).iter().map(|d| d.code).collect()
    }

    #[test]
    fn figure4_is_clean() {
        assert!(codes(FIGURE4_XSLT).is_empty());
    }

    #[test]
    fn flags_missing_root_rule() {
        let c =
            codes("<xsl:stylesheet><xsl:template match=\"a\"><x/></xsl:template></xsl:stylesheet>");
        assert_eq!(c, vec![Code::Xvc008]);
    }

    #[test]
    fn flags_empty_mode_with_span() {
        let src = r#"<xsl:stylesheet>
            <xsl:template match="/"><xsl:apply-templates select="metro" mode="ghost"/></xsl:template>
          </xsl:stylesheet>"#;
        let s = parse_stylesheet(src).unwrap();
        let ds = check_stylesheet(&s);
        let d = ds.iter().find(|d| d.code == Code::Xvc007).unwrap();
        let span = d.span.unwrap();
        assert_eq!(&src[span.start..span.end], "metro");
    }

    #[test]
    fn maps_restrictions_to_codes() {
        let c = codes(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="a[@x=1]"/></xsl:template>
                 <xsl:template match="a"><xsl:if test="@y"><z/></xsl:if></xsl:template>
                 <xsl:template match="b//c"/>
               </xsl:stylesheet>"#,
        );
        assert!(c.contains(&Code::Xvc001), "{c:?}");
        assert!(c.contains(&Code::Xvc002), "{c:?}");
        assert!(c.contains(&Code::Xvc005), "{c:?}");
    }
}
