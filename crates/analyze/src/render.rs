//! Rustc-style rendering of diagnostics with source context.
//!
//! ```text
//! warning[XVC001]: rule 1: match pattern `city[@population>1000000]` contains predicates
//!   --> guide.xsl:3:42
//!    |
//!  3 |     <guide><xsl:apply-templates select="city[@population&gt;1000000]"/></guide>
//!    |                                          ^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!    = help: predicates compose directly (§5.1); no rewrite needed
//! ```

use xvc_xml::line_col;

use crate::diag::{Diagnostic, Severity, Stage};

/// The source texts a report's spans point into, with display names.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sources<'a> {
    /// `(display name, text)` of the view definition, when checking one.
    pub view: Option<(&'a str, &'a str)>,
    /// `(display name, text)` of the stylesheet, when checking one.
    pub stylesheet: Option<(&'a str, &'a str)>,
}

impl<'a> Sources<'a> {
    /// The source a diagnostic of this stage points into.
    fn for_stage(&self, stage: Stage) -> Option<(&'a str, &'a str)> {
        match stage {
            Stage::Stylesheet => self.stylesheet,
            Stage::View => self.view,
            Stage::Composed | Stage::General => None,
        }
    }
}

/// Renders one diagnostic, with a caret-underlined source excerpt when the
/// span and source are available.
pub fn render(d: &Diagnostic, sources: &Sources<'_>) -> String {
    let mut out = format!("{d}\n");
    let located = d.span.and_then(|span| {
        sources
            .for_stage(d.stage)
            .map(|(name, text)| (span, name, text))
    });
    if let Some((span, name, text)) = located {
        let (line, col) = line_col(text, span.start);
        out.push_str(&format!("  --> {name}:{line}:{col}\n"));
        if let Some(src_line) = text.lines().nth(line - 1) {
            let gutter = line.to_string().len();
            out.push_str(&format!("{:gutter$} |\n", ""));
            out.push_str(&format!("{line} | {src_line}\n"));
            // Caret width: span chars, clamped to the rest of the line.
            let prefix: String = src_line.chars().take(col - 1).collect();
            let line_remaining = src_line.chars().count() - (col - 1);
            let span_chars = text
                .get(span.start..span.end)
                .map_or(1, |s| s.chars().take_while(|&c| c != '\n').count());
            let width = span_chars.clamp(1, line_remaining.max(1));
            let pad: String = prefix
                .chars()
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            out.push_str(&format!("{:gutter$} | {pad}{}\n", "", "^".repeat(width)));
        }
    } else if let Some((name, _)) = sources.for_stage(d.stage) {
        out.push_str(&format!("  --> {name}\n"));
    }
    if let Some(help) = &d.help {
        out.push_str(&format!("  = help: {help}\n"));
    }
    for j in &d.justification {
        out.push_str(&format!("  = note: {j}\n"));
    }
    out
}

/// Orders diagnostics for display — by source file (view first, then
/// stylesheet, then the sourceless composed/general stages), span offset
/// (spanless findings last within their file), and code — and drops exact
/// duplicates. Emission order (pass order) is left to the [`crate::Report`];
/// this is applied at the presentation layer only, so tests asserting
/// pass order keep working.
pub fn sort_for_display(diagnostics: &[Diagnostic]) -> Vec<Diagnostic> {
    let stage_rank = |s: Stage| match s {
        Stage::View => 0usize,
        Stage::Stylesheet => 1,
        Stage::Composed => 2,
        Stage::General => 3,
    };
    let mut out: Vec<Diagnostic> = diagnostics.to_vec();
    out.sort_by(|a, b| {
        (
            stage_rank(a.stage),
            a.span.map_or(usize::MAX, |s| s.start),
            a.code,
            &a.message,
        )
            .cmp(&(
                stage_rank(b.stage),
                b.span.map_or(usize::MAX, |s| s.start),
                b.code,
                &b.message,
            ))
    });
    out.dedup();
    out
}

/// Renders the `N error(s); M warning(s)` trailer line.
pub fn render_summary(diagnostics: &[Diagnostic]) -> String {
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    match (errors, warnings) {
        (0, 0) => "check: no problems found".to_owned(),
        (0, w) => format!("check: {w} warning{} emitted", plural(w)),
        (e, 0) => format!("check: {e} error{} emitted", plural(e)),
        (e, w) => format!(
            "check: {e} error{} and {w} warning{} emitted",
            plural(e),
            plural(w)
        ),
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic, Stage};
    use xvc_xml::Span;

    #[test]
    fn renders_span_with_caret() {
        let src = "line one\nnode metro $m {\n";
        let span_start = src.find("metro").unwrap();
        let d = Diagnostic::new(Code::Xvc110, Stage::View, "bad tag")
            .with_span(Some(Span::new(span_start, span_start + 5)));
        let sources = Sources {
            view: Some(("v.view", src)),
            stylesheet: None,
        };
        let r = render(&d, &sources);
        assert!(r.contains("error[XVC110]: bad tag"), "{r}");
        assert!(r.contains("--> v.view:2:6"), "{r}");
        assert!(r.contains("2 | node metro $m {"), "{r}");
        assert!(r.contains("^^^^^"), "{r}");
    }

    #[test]
    fn renders_without_span() {
        let d = Diagnostic::new(Code::Xvc008, Stage::Stylesheet, "no root rule")
            .with_help("add <xsl:template match=\"/\">");
        let sources = Sources {
            view: None,
            stylesheet: Some(("s.xsl", "<xsl:stylesheet/>")),
        };
        let r = render(&d, &sources);
        assert!(r.contains("error[XVC008]"), "{r}");
        assert!(r.contains("--> s.xsl\n"), "{r}");
        assert!(r.contains("= help: add <xsl:template"), "{r}");
    }

    #[test]
    fn sort_for_display_orders_and_dedupes() {
        let a = Diagnostic::new(Code::Xvc102, Stage::View, "later in file")
            .with_span(Some(Span::new(40, 45)));
        let b = Diagnostic::new(Code::Xvc101, Stage::View, "earlier in file")
            .with_span(Some(Span::new(4, 9)));
        let c = Diagnostic::new(Code::Xvc001, Stage::Stylesheet, "xslt");
        let g = Diagnostic::new(Code::Xvc407, Stage::General, "summary");
        let spanless_view = Diagnostic::new(Code::Xvc103, Stage::View, "no span");
        let input = vec![
            g.clone(),
            c.clone(),
            a.clone(),
            b.clone(),
            b.clone(), // exact duplicate
            spanless_view.clone(),
        ];
        let sorted = sort_for_display(&input);
        assert_eq!(sorted, vec![b, a, spanless_view, c, g]);
    }

    #[test]
    fn summary_counts() {
        let w = Diagnostic::new(Code::Xvc001, Stage::Stylesheet, "w");
        let e = Diagnostic::new(Code::Xvc101, Stage::View, "e");
        assert_eq!(render_summary(&[]), "check: no problems found");
        assert_eq!(render_summary(&[w.clone()]), "check: 1 warning emitted");
        assert_eq!(
            render_summary(&[w, e]),
            "check: 1 error and 1 warning emitted"
        );
    }
}
