//! Rustc-style rendering of diagnostics with source context.
//!
//! ```text
//! warning[XVC001]: rule 1: match pattern `city[@population>1000000]` contains predicates
//!   --> guide.xsl:3:42
//!    |
//!  3 |     <guide><xsl:apply-templates select="city[@population&gt;1000000]"/></guide>
//!    |                                          ^^^^^^^^^^^^^^^^^^^^^^^^^^^
//!    = help: predicates compose directly (§5.1); no rewrite needed
//! ```

use xvc_xml::line_col;

use crate::diag::{Diagnostic, Severity, Stage};

/// The source texts a report's spans point into, with display names.
#[derive(Debug, Clone, Copy, Default)]
pub struct Sources<'a> {
    /// `(display name, text)` of the view definition, when checking one.
    pub view: Option<(&'a str, &'a str)>,
    /// `(display name, text)` of the stylesheet, when checking one.
    pub stylesheet: Option<(&'a str, &'a str)>,
}

impl<'a> Sources<'a> {
    /// The source a diagnostic of this stage points into.
    fn for_stage(&self, stage: Stage) -> Option<(&'a str, &'a str)> {
        match stage {
            Stage::Stylesheet => self.stylesheet,
            Stage::View => self.view,
            Stage::Composed | Stage::General => None,
        }
    }
}

/// Renders one diagnostic, with a caret-underlined source excerpt when the
/// span and source are available.
pub fn render(d: &Diagnostic, sources: &Sources<'_>) -> String {
    let mut out = format!("{d}\n");
    let located = d.span.and_then(|span| {
        sources
            .for_stage(d.stage)
            .map(|(name, text)| (span, name, text))
    });
    if let Some((span, name, text)) = located {
        let (line, col) = line_col(text, span.start);
        out.push_str(&format!("  --> {name}:{line}:{col}\n"));
        if let Some(src_line) = text.lines().nth(line - 1) {
            let gutter = line.to_string().len();
            out.push_str(&format!("{:gutter$} |\n", ""));
            out.push_str(&format!("{line} | {src_line}\n"));
            // Caret width: span chars, clamped to the rest of the line.
            let prefix: String = src_line.chars().take(col - 1).collect();
            let line_remaining = src_line.chars().count() - (col - 1);
            let span_chars = text
                .get(span.start..span.end)
                .map_or(1, |s| s.chars().take_while(|&c| c != '\n').count());
            let width = span_chars.clamp(1, line_remaining.max(1));
            let pad: String = prefix
                .chars()
                .map(|c| if c == '\t' { '\t' } else { ' ' })
                .collect();
            out.push_str(&format!("{:gutter$} | {pad}{}\n", "", "^".repeat(width)));
        }
    } else if let Some((name, _)) = sources.for_stage(d.stage) {
        out.push_str(&format!("  --> {name}\n"));
    }
    if let Some(help) = &d.help {
        out.push_str(&format!("  = help: {help}\n"));
    }
    out
}

/// Renders the `N error(s); M warning(s)` trailer line.
pub fn render_summary(diagnostics: &[Diagnostic]) -> String {
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    match (errors, warnings) {
        (0, 0) => "check: no problems found".to_owned(),
        (0, w) => format!("check: {w} warning{} emitted", plural(w)),
        (e, 0) => format!("check: {e} error{} emitted", plural(e)),
        (e, w) => format!(
            "check: {e} error{} and {w} warning{} emitted",
            plural(e),
            plural(w)
        ),
    }
}

fn plural(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::{Code, Diagnostic, Stage};
    use xvc_xml::Span;

    #[test]
    fn renders_span_with_caret() {
        let src = "line one\nnode metro $m {\n";
        let span_start = src.find("metro").unwrap();
        let d = Diagnostic::new(Code::Xvc110, Stage::View, "bad tag")
            .with_span(Some(Span::new(span_start, span_start + 5)));
        let sources = Sources {
            view: Some(("v.view", src)),
            stylesheet: None,
        };
        let r = render(&d, &sources);
        assert!(r.contains("error[XVC110]: bad tag"), "{r}");
        assert!(r.contains("--> v.view:2:6"), "{r}");
        assert!(r.contains("2 | node metro $m {"), "{r}");
        assert!(r.contains("^^^^^"), "{r}");
    }

    #[test]
    fn renders_without_span() {
        let d = Diagnostic::new(Code::Xvc008, Stage::Stylesheet, "no root rule")
            .with_help("add <xsl:template match=\"/\">");
        let sources = Sources {
            view: None,
            stylesheet: Some(("s.xsl", "<xsl:stylesheet/>")),
        };
        let r = render(&d, &sources);
        assert!(r.contains("error[XVC008]"), "{r}");
        assert!(r.contains("--> s.xsl\n"), "{r}");
        assert!(r.contains("= help: add <xsl:template"), "{r}");
    }

    #[test]
    fn summary_counts() {
        let w = Diagnostic::new(Code::Xvc001, Stage::Stylesheet, "w");
        let e = Diagnostic::new(Code::Xvc101, Stage::View, "e");
        assert_eq!(render_summary(&[]), "check: no problems found");
        assert_eq!(render_summary(&[w.clone()]), "check: 1 warning emitted");
        assert_eq!(
            render_summary(&[w, e]),
            "check: 1 error and 1 warning emitted"
        );
    }
}
