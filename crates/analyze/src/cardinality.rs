//! Pass 6: cardinality analysis over the TVQ (the `XVC5xx` codes) plus
//! the `XVC120` index-usability advisory.
//!
//! Layers the [`xvc_rel::facts::query_cardinality`] abstract domain
//! (`0 / <=1 / <=k / unbounded` row bounds from `PRIMARY KEY`
//! constraints and equality pushdowns) over the same top-down TVQ walk
//! the predicate-dataflow pass uses, via
//! [`xvc_core::prune::analyze_tvq`]'s per-node fan-out and cumulative
//! bounds:
//!
//! * **XVC501** — a tag query bounded to 0 rows (co-reported with
//!   XVC401: the zero bound *is* the dead-subtree proof, restated in
//!   cardinality terms);
//! * **XVC502** — a FROM item with no equality link to the rest of the
//!   query: the cross product makes the per-parent fan-out unbounded;
//! * **XVC503** — on recursive (cyclic-CTG) workloads, a view node on
//!   the cycle whose tag query is not provably single-row, so the §5.3
//!   recursive expansion has no finite growth bound;
//! * **XVC504** — a rebind guard whose `EXISTS` probe is not provably
//!   single-row (the guard re-checks per instance; a key-pinned probe
//!   would be a point lookup);
//! * **XVC505** — when the whole-document bound is *finite*, a report
//!   stating it, with the per-node fan-out/cumulative bounds as the
//!   justification chain.
//!
//! Every finding carries its justifying fact chain
//! ([`crate::diag::Diagnostic::justification`]), mirroring what
//! `plan::prepare`'s bound-driven decisions print in `xvc explain`.

use std::collections::BTreeSet;

use xvc_core::prune::analyze_tvq;
use xvc_core::tvq::build_tvq;
use xvc_core::unbind::UnboundQuery;
use xvc_rel::facts::{bound_query, query_cardinality, FactSet};
use xvc_rel::{Card, Catalog, ScalarExpr, SelectQuery, TableRef};
use xvc_view::{analyze_view_bounds, SchemaTree};
use xvc_xslt::Stylesheet;

use crate::dataflow::{fact_chain, node_label};
use crate::diag::{Code, Diagnostic, Stage};

/// Runs the cardinality pass over the (acyclic) composed workload. The
/// stylesheet must already be lowered, mirroring pass 5; CTG/TVQ build
/// failures yield no diagnostics here — pass 4 reports those.
pub fn check_cardinality(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    catalog: &Catalog,
    tvq_limit: usize,
) -> Vec<Diagnostic> {
    let Ok(ctg) = xvc_core::build_ctg(view, stylesheet) else {
        return Vec::new();
    };
    let Ok(tvq) = build_tvq(view, stylesheet, &ctg, catalog, tvq_limit) else {
        return Vec::new();
    };

    let mut out = Vec::new();
    let analysis = analyze_tvq(&tvq, catalog);
    for (idx, verdict) in analysis.verdicts.iter().enumerate() {
        let node = &tvq.nodes[idx];
        let label = node_label(view, &tvq, idx);

        // XVC501: a 0-row bound. Only dead subtree *roots* carry it
        // (descendants keep the default verdict), so one diagnostic per
        // pruned region, matching XVC401.
        if verdict.dead && verdict.fan_out.card == Card::Zero {
            out.push(
                Diagnostic::new(
                    Code::Xvc501,
                    Stage::Composed,
                    format!(
                        "{label}: cardinality analysis bounds the tag query to 0 rows — \
                         no instance of this node can ever be published"
                    ),
                )
                .with_help(fact_chain(&verdict.fan_out.chain))
                .with_justification(verdict.fan_out.chain.clone()),
            );
            continue;
        }

        match &node.binding {
            // XVC502: unbounded fan-out explained by a cross product.
            // `cross_joins` is structural (equality links between FROM
            // items come from the query's own conjuncts, never from
            // inherited parameter facts), so the empty environment is
            // exact here.
            UnboundQuery::Query(q) if verdict.fan_out.card == Card::Unbounded => {
                let qc = query_cardinality(q, catalog, &FactSet::new());
                if !qc.cross_joins.is_empty() {
                    // The unbounded bound carries no fact chain (it is
                    // the lattice top); justify with the structural
                    // witnesses instead.
                    let mut just = verdict.fan_out.chain.clone();
                    just.extend(qc.cross_joins.iter().map(|n| {
                        format!(
                            "FROM item `{n}` is pinned by no predicate and \
                             equality-linked to no other FROM item"
                        )
                    }));
                    out.push(
                        Diagnostic::new(
                            Code::Xvc502,
                            Stage::Composed,
                            format!(
                                "{label}: FROM item(s) {} have no equality link to the \
                                 rest of the query — the cross product makes the \
                                 per-parent fan-out unbounded",
                                name_list(&qc.cross_joins)
                            ),
                        )
                        .with_help(
                            "add a join predicate so the planner can bound the join and \
                             pick an indexed or filter-probe strategy",
                        )
                        .with_justification(just),
                    );
                }
            }
            UnboundQuery::Rebind { guard: Some(g), .. } => {
                // XVC504: every EXISTS probe inside the guard should be a
                // point lookup; re-checking an unbounded probe per
                // instance is the guard-side analogue of a table scan.
                let mut probes = Vec::new();
                collect_exists(g, &mut probes);
                for sub in probes {
                    let b = bound_query(sub, catalog, &FactSet::new());
                    if !b.card.at_most_one() {
                        out.push(
                            Diagnostic::new(
                                Code::Xvc504,
                                Stage::Composed,
                                format!(
                                    "{label}: the rebind guard's EXISTS probe is not provably \
                                     single-row (bound: {})",
                                    b.card
                                ),
                            )
                            .with_help(
                                "equate the probed table's full primary key so the guard \
                                 becomes a point lookup (a secondary index speeds the probe \
                                 but cannot prove it single-row)",
                            )
                            .with_justification(b.chain),
                        );
                    }
                }
            }
            _ => {}
        }
    }

    // XVC505: the whole-document growth bound, reported only when finite
    // (an unbounded bound is the common case and would be pure noise).
    if let Some(limit) = analysis.document.as_limit() {
        let just: Vec<String> = analysis
            .verdicts
            .iter()
            .enumerate()
            .map(|(idx, v)| {
                format!(
                    "{}: fan-out {}, cumulative {}",
                    node_label(view, &tvq, idx),
                    v.fan_out.card,
                    v.cumulative
                )
            })
            .collect();
        out.push(
            Diagnostic::new(
                Code::Xvc505,
                Stage::General,
                format!(
                    "cardinality report: the published document is statically bounded to \
                     at most {limit} element(s); largest set-oriented batch bound: {}",
                    analysis.max_batch
                ),
            )
            .with_help(
                "bounds are sound over-approximations from PRIMARY KEY constraints and \
                 equality pushdowns (see `xvc explain` for the plan decisions they drive)",
            )
            .with_justification(just),
        );
    }
    out
}

/// Runs the recursion-growth check on *cyclic* workloads, where no TVQ
/// exists: every distinct view node on a CTG cycle whose tag query is not
/// provably single-row lets the §5.3 recursive expansion grow without a
/// static bound (XVC503).
pub fn check_recursion_growth(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    catalog: &Catalog,
) -> Vec<Diagnostic> {
    let Ok(ctg) = xvc_core::build_ctg(view, stylesheet) else {
        return Vec::new();
    };
    if ctg.has_cycle().is_none() {
        return Vec::new();
    }
    let n = ctg.nodes.len();
    let mut succ = vec![Vec::new(); n];
    for e in &ctg.edges {
        succ[e.from].push(e.to);
    }

    let bounds = analyze_view_bounds(view, catalog);
    let mut out = Vec::new();
    let mut seen = BTreeSet::new();
    for (i, cn) in ctg.nodes.iter().enumerate() {
        if !reaches_self(&succ, i) || view.is_root(cn.view) || !seen.insert(cn.view) {
            continue;
        }
        let Some(nb) = bounds.node(cn.view) else {
            continue;
        };
        if nb.fan_out.card.at_most_one() {
            continue;
        }
        let Some(vn) = view.node(cn.view) else {
            continue;
        };
        out.push(
            Diagnostic::new(
                Code::Xvc503,
                Stage::View,
                format!(
                    "view node {} <{}> lies on a CTG cycle and its tag query is not \
                     provably single-row (bound: {}) — the recursive expansion has no \
                     finite growth bound",
                    vn.id, vn.tag, nb.fan_out.card
                ),
            )
            .with_span(vn.query_span.get())
            .with_help(
                "compose_recursive (§5.3) re-expands this node per published instance; a \
                 key-pinned (single-row) tag query would bound each recursion step",
            )
            .with_justification(nb.fan_out.chain.clone()),
        );
    }
    out
}

/// Warns (XVC120) about declared secondary indexes no tag query can ever
/// use: an index is an access path only when some query applies an
/// equality to its column (`col = $param`, `col = literal`, or a join
/// `col = other.col` — see `plan::prepare`'s access-path selection).
pub fn check_index_usage(view: &SchemaTree, catalog: &Catalog) -> Vec<Diagnostic> {
    let mut used: BTreeSet<(String, String)> = BTreeSet::new();
    for vid in view.node_ids() {
        if let Some(q) = view.node(vid).and_then(|n| n.query.as_ref()) {
            collect_equality_columns(q, &[], catalog, &mut used);
        }
    }
    let mut out = Vec::new();
    for table in catalog.iter() {
        for idx in &table.indexes {
            if !used.contains(&(table.name.clone(), idx.column.clone())) {
                out.push(
                    Diagnostic::new(
                        Code::Xvc120,
                        Stage::View,
                        format!(
                            "index on {}.{} ({:?}) is never usable: no tag query applies \
                             an equality to that column",
                            table.name, idx.column, idx.kind
                        ),
                    )
                    .with_help(
                        "only equality conjuncts become index access paths; drop the index \
                         or push a selective equality onto the column",
                    ),
                );
            }
        }
    }
    out
}

/// Renders a list of FROM-binding names for a message.
fn name_list(names: &[String]) -> String {
    names
        .iter()
        .map(|n| format!("`{n}`"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Collects `EXISTS` subqueries anywhere inside an expression.
fn collect_exists<'a>(e: &'a ScalarExpr, out: &mut Vec<&'a SelectQuery>) {
    match e {
        ScalarExpr::Exists(q) => out.push(q),
        ScalarExpr::Binary { lhs, rhs, .. } => {
            collect_exists(lhs, out);
            collect_exists(rhs, out);
        }
        ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => collect_exists(i, out),
        ScalarExpr::Aggregate { arg: Some(a), .. } => collect_exists(a, out),
        _ => {}
    }
}

/// True when CTG node `start` can reach itself through at least one edge.
fn reaches_self(succ: &[Vec<usize>], start: usize) -> bool {
    let mut stack: Vec<usize> = succ[start].clone();
    let mut visited = vec![false; succ.len()];
    while let Some(i) = stack.pop() {
        if i == start {
            return true;
        }
        if !visited[i] {
            visited[i] = true;
            stack.extend(succ[i].iter().copied());
        }
    }
    false
}

/// Records every `(table, column)` pair some equality conjunct of `q` (or
/// of a nested subquery) touches. `outer` carries enclosing FROM scopes so
/// correlated `EXISTS` probes resolve their outer references; unresolvable
/// or ambiguous columns mark *all* candidate tables (conservative: the
/// check must never claim an index unusable when it might be used).
fn collect_equality_columns(
    q: &SelectQuery,
    outer: &[(String, String)],
    catalog: &Catalog,
    used: &mut BTreeSet<(String, String)>,
) {
    let mut scope: Vec<(String, String)> = outer.to_vec();
    for t in &q.from {
        match t {
            TableRef::Named { name, alias } => {
                scope.push((alias.clone().unwrap_or_else(|| name.clone()), name.clone()));
            }
            TableRef::Derived { query, .. } => {
                collect_equality_columns(query, outer, catalog, used);
            }
        }
    }
    let mark = |qualifier: &Option<String>, col: &str, used: &mut BTreeSet<(String, String)>| {
        match qualifier {
            Some(b) => {
                if let Some((_, table)) = scope.iter().find(|(bind, _)| bind == b) {
                    used.insert((table.clone(), col.to_owned()));
                }
            }
            None => {
                for (_, table) in &scope {
                    let owns = catalog
                        .get(table)
                        .is_ok_and(|s| s.column_index(col).is_some());
                    if owns {
                        used.insert((table.clone(), col.to_owned()));
                    }
                }
            }
        }
    };
    let mut walk = |e: &ScalarExpr| {
        let mut stack = vec![e];
        while let Some(e) = stack.pop() {
            match e {
                ScalarExpr::Binary { op, lhs, rhs } => {
                    if *op == xvc_rel::BinOp::Eq {
                        for side in [lhs.as_ref(), rhs.as_ref()] {
                            if let ScalarExpr::Column { qualifier, name } = side {
                                mark(qualifier, name, used);
                            }
                        }
                    }
                    stack.push(lhs);
                    stack.push(rhs);
                }
                ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => stack.push(i),
                ScalarExpr::Aggregate { arg: Some(a), .. } => stack.push(a),
                ScalarExpr::Exists(sub) => {
                    collect_equality_columns(sub, &scope, catalog, used);
                }
                _ => {}
            }
        }
    };
    if let Some(w) = &q.where_clause {
        walk(w);
    }
    if let Some(h) = &q.having {
        walk(h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_core::tvq::DEFAULT_TVQ_LIMIT;
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    #[test]
    fn clean_workload_reports_nothing() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ds = check_cardinality(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn cross_product_join_fires_502() {
        let v = xvc_view::parse_view(
            "node pair $p { query: SELECT m.metroid, h.hotelid FROM metroarea m, hotel h; }",
        )
        .unwrap();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="pair"/></r></xsl:template>
                 <xsl:template match="pair"><p/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ds = check_cardinality(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        let d = ds.iter().find(|d| d.code == Code::Xvc502).unwrap();
        assert!(d.message.contains("`h`"), "{}", d.message);
        assert!(!d.justification.is_empty(), "{d:?}");
    }

    #[test]
    fn dead_node_fires_501_with_zero_bound() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>
                 <xsl:template match="metro">
                   <m><xsl:apply-templates select="hotel[@starrating &lt; 3]"/></m>
                 </xsl:template>
                 <xsl:template match="hotel"><h/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ds = check_cardinality(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        let d = ds.iter().find(|d| d.code == Code::Xvc501).unwrap();
        assert!(d.message.contains("0 rows"), "{}", d.message);
        assert!(!d.justification.is_empty(), "{d:?}");
    }

    #[test]
    fn finite_document_bound_fires_505() {
        // The root tag query pins metroarea's full primary key to a
        // literal, so the whole document is statically bounded.
        let v = xvc_view::parse_view(
            "node metro $m { query: SELECT metroid, metroname FROM metroarea WHERE metroid = 1; }",
        )
        .unwrap();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
                 <xsl:template match="metro"><m/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ds = check_cardinality(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        let d = ds.iter().find(|d| d.code == Code::Xvc505).unwrap();
        assert!(d.message.contains("at most"), "{}", d.message);
        assert!(
            d.justification.iter().any(|j| j.contains("fan-out")),
            "{d:?}"
        );
    }

    #[test]
    fn recursion_over_multi_row_node_fires_503() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel"><h><xsl:apply-templates select="confstat"/></h></xsl:template>
                 <xsl:template match="confstat"><c><xsl:apply-templates select=".."/></c></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ds = check_recursion_growth(&v, &x, &figure2_catalog());
        let d = ds.iter().find(|d| d.code == Code::Xvc503).unwrap();
        assert!(d.message.contains("CTG cycle"), "{}", d.message);
    }

    #[test]
    fn unused_index_fires_120_and_used_index_does_not() {
        let mut cat = figure2_catalog();
        let mut hotel = cat.get("hotel").unwrap().clone();
        hotel.indexes.push(xvc_rel::IndexDef {
            column: "metro_id".to_owned(),
            kind: xvc_rel::IndexKind::Hash,
        });
        hotel.indexes.push(xvc_rel::IndexDef {
            column: "starrating".to_owned(),
            kind: xvc_rel::IndexKind::BTree,
        });
        cat.add(hotel);
        // figure1_view's hotel tag query pushes `metro_id = $m.metroid`;
        // starrating only appears in an inequality (`starrating > 4`).
        let ds = check_index_usage(&figure1_view(), &cat);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::Xvc120);
        assert!(ds[0].message.contains("starrating"), "{}", ds[0].message);
    }
}
