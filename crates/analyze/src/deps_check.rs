//! Pass 7: table→view dependency (lineage) analysis — the `XVC6xx` codes.
//!
//! Builds the static [`DependencyMap`] ([`xvc_core::deps`]) — every base
//! `(table, column)` each TVQ node reads, partitioned by role (scan
//! source, join key, pushdown predicate, emission guard, projected
//! output) and classified for update-safety — and reports what it implies
//! for maintenance:
//!
//! * **XVC601** — a single base column feeds more than
//!   [`WRITE_AMPLIFICATION_THRESHOLD`] distinct TVQ nodes: one `UPDATE`
//!   fans out across that many published regions (write amplification);
//! * **XVC602** — a dependency runs through a recursion cycle (cyclic
//!   CTG): no delta-publish path exists for it, every touch recomputes;
//! * **XVC603** — a catalog table no tag query reads: dead weight for
//!   this workload;
//! * **XVC604** — the per-table impact report: for each table with at
//!   least one recompute-required edge, how many view nodes an update
//!   can restructure (what `Session::republish_delta` will re-execute).
//!
//! Like the `XVC4xx`/`XVC5xx` passes, every finding carries the fact
//! chain that justifies it. The full inverted map is available from
//! `xvc deps`.

use std::collections::{BTreeMap, BTreeSet};

use xvc_core::deps::{DepRole, DependencyMap, UpdateSafety};
use xvc_core::tvq::build_tvq;
use xvc_rel::Catalog;
use xvc_view::SchemaTree;
use xvc_xslt::Stylesheet;

use crate::diag::{Code, Diagnostic, Stage};

/// Distinct TVQ nodes a single base column may feed before XVC601 calls
/// the column write-amplifying.
pub const WRITE_AMPLIFICATION_THRESHOLD: usize = 3;

/// Runs the dependency pass on an acyclic workload: the map is built over
/// the TVQ (same walk as passes 5 and 6). CTG/TVQ build failures yield no
/// diagnostics here — pass 4 reports those.
pub fn check_deps(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    catalog: &Catalog,
    tvq_limit: usize,
) -> Vec<Diagnostic> {
    let Ok(ctg) = xvc_core::build_ctg(view, stylesheet) else {
        return Vec::new();
    };
    let Ok(tvq) = build_tvq(view, stylesheet, &ctg, catalog, tvq_limit) else {
        return Vec::new();
    };
    let map = DependencyMap::of_tvq(&tvq, view, catalog);
    map_diagnostics(&map, catalog)
}

/// Runs the dependency pass on a cyclic workload (§5.3): no TVQ exists,
/// so the map is built over the raw view with every edge marked
/// recompute-required — and each join-key/guard column additionally
/// surfaces as XVC602.
pub fn check_deps_recursive(view: &SchemaTree, catalog: &Catalog) -> Vec<Diagnostic> {
    let map = DependencyMap::of_view(view, catalog, true);
    map_diagnostics(&map, catalog)
}

/// Shared reporting over a built map.
fn map_diagnostics(map: &DependencyMap, catalog: &Catalog) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // XVC601: write-amplifying columns. Whole-table scan edges ("*")
    // describe row sets, not columns — only real columns amplify writes.
    for ((table, column), edges) in map.columns() {
        if column == "*" {
            continue;
        }
        let units: BTreeSet<&str> = edges.iter().map(|e| e.unit.as_str()).collect();
        if units.len() <= WRITE_AMPLIFICATION_THRESHOLD {
            continue;
        }
        let chain: Vec<String> = units
            .iter()
            .map(|u| format!("{table}.{column} feeds {u}"))
            .collect();
        out.push(
            Diagnostic::new(
                Code::Xvc601,
                Stage::General,
                format!(
                    "column {table}.{column} feeds {} distinct TVQ nodes: one UPDATE \
                     fans out across all of them (write amplification)",
                    units.len()
                ),
            )
            .with_help(crate::dataflow::fact_chain(&chain))
            .with_justification(chain),
        );
    }

    // XVC602: recursion-tainted structural dependencies (cyclic CTG only).
    if map.recursive {
        let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
        for e in &map.edges {
            if !matches!(e.role, DepRole::JoinKey | DepRole::Guard) {
                continue;
            }
            if !seen.insert((e.table.clone(), e.column.clone())) {
                continue;
            }
            out.push(
                Diagnostic::new(
                    Code::Xvc602,
                    Stage::General,
                    format!(
                        "{}.{} is a {} input of {} on a recursion cycle: any change to it \
                         forces a full recompute (no delta-publish path exists)",
                        e.table,
                        e.column,
                        e.role.as_str(),
                        e.unit
                    ),
                )
                .with_help(crate::dataflow::fact_chain(&e.chain))
                .with_justification(e.chain.clone()),
            );
        }
    }

    // XVC603: dead catalog tables.
    for table in map.dead_tables(catalog) {
        out.push(
            Diagnostic::new(
                Code::Xvc603,
                Stage::General,
                format!("table {table} is never read by any tag query in this workload"),
            )
            .with_help(
                "updates to it can skip republishing entirely; drop it from the catalog \
                 if the workload is complete",
            ),
        );
    }

    // XVC604: the per-table impact report, one diagnostic for the whole
    // workload (like XVC505), emitted only when some update actually
    // forces recomputation.
    let mut per_table: BTreeMap<&str, (BTreeSet<&str>, usize, usize)> = BTreeMap::new();
    for e in &map.edges {
        let entry = per_table.entry(e.table.as_str()).or_default();
        entry.0.insert(e.unit.as_str());
        if e.safety == UpdateSafety::RecomputeRequired {
            entry.1 += 1;
        }
        entry.2 += 1;
    }
    let any_recompute = per_table.values().any(|(_, recompute, _)| *recompute > 0);
    if any_recompute {
        let chain: Vec<String> = per_table
            .iter()
            .map(|(table, (units, recompute, total))| {
                format!(
                    "{table}: read by {} view node(s) via {total} edge(s), \
                     {recompute} recompute-required",
                    units.len()
                )
            })
            .collect();
        let worst = per_table
            .iter()
            .max_by_key(|(_, (units, recompute, _))| (*recompute, units.len()))
            .map(|(t, _)| *t)
            .unwrap_or_default();
        out.push(
            Diagnostic::new(
                Code::Xvc604,
                Stage::General,
                format!(
                    "dependency impact: {} table(s) carry recompute-required edges \
                     (worst: {worst}); `xvc deps` prints the full map",
                    per_table
                        .values()
                        .filter(|(_, recompute, _)| *recompute > 0)
                        .count()
                ),
            )
            .with_help(crate::dataflow::fact_chain(&chain))
            .with_justification(chain),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_core::tvq::DEFAULT_TVQ_LIMIT;
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    #[test]
    fn figure4_reports_dead_tables_and_impact() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ds = check_deps(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        let codes: Vec<_> = ds.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::Xvc603), "{ds:?}");
        assert!(codes.contains(&Code::Xvc604), "{ds:?}");
        let dead: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Xvc603).collect();
        assert!(
            dead.iter().any(|d| d.message.contains("hotelchain")),
            "{dead:?}"
        );
        // No recursion: XVC602 must not fire.
        assert!(!codes.contains(&Code::Xvc602), "{ds:?}");
    }

    #[test]
    fn recursive_walk_reports_xvc602() {
        let v = figure1_view();
        let ds = check_deps_recursive(&v, &figure2_catalog());
        let hits: Vec<&Diagnostic> = ds.iter().filter(|d| d.code == Code::Xvc602).collect();
        assert!(!hits.is_empty(), "{ds:?}");
        for d in &hits {
            assert!(d.help.as_deref().unwrap().contains("fact chain"), "{d:?}");
        }
    }
}
