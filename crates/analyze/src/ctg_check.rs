//! Pass 3: CTG-level analysis — reachability, recursion, and the §4.5
//! duplication blowup prediction.
//!
//! The TVQ unrolls the CTG into a tree of *paths*, so its exact size is
//! predictable without building it: each TVQ node corresponds to one
//! edge-path from an entry node, giving the recurrence
//!
//! ```text
//! occ(n)  =  [n is an entry]  +  Σ over edges e=(m → n) of occ(m)
//! |TVQ|   =  Σ over CTG nodes n of occ(n)
//! ```
//!
//! which mirrors `xvc_core::tvq`'s `expand()` exactly (one child per
//! outgoing edge, recursively). `occ(n)` is also the per-node duplication
//! factor the §4.5 bound talks about; tests cross-check the prediction
//! against `ComposeStats::tvq_nodes`.

use xvc_view::SchemaTree;
use xvc_xslt::Stylesheet;

use xvc_core::Ctg;

use crate::diag::{Code, Diagnostic, Stage};
use crate::CheckOptions;

/// Predicted TVQ size and duplication, computed from the CTG alone.
#[derive(Debug, Clone, PartialEq)]
pub struct BlowupPrediction {
    /// CTG node count.
    pub ctg_nodes: usize,
    /// CTG edge count.
    pub ctg_edges: usize,
    /// Exact TVQ node count `build_tvq` would produce (saturating), or 0
    /// when the CTG is cyclic (the TVQ is undefined; see
    /// [`BlowupPrediction::cyclic`]).
    pub predicted_tvq_nodes: usize,
    /// `occ(n)` per CTG node, aligned with `Ctg::nodes`.
    pub per_node: Vec<usize>,
    /// `predicted_tvq_nodes / ctg_nodes` (1.0 when the CTG is a tree).
    pub duplication_factor: f64,
    /// True when the CTG has a cycle (recursive stylesheet, §5.3).
    pub cyclic: bool,
}

/// Predicts the TVQ size for a CTG (see module docs).
pub fn predict_tvq(view: &SchemaTree, stylesheet: &Stylesheet, ctg: &Ctg) -> BlowupPrediction {
    let n = ctg.nodes.len();
    let cyclic = ctg.has_cycle().is_some();
    if cyclic || n == 0 {
        return BlowupPrediction {
            ctg_nodes: n,
            ctg_edges: ctg.edges.len(),
            predicted_tvq_nodes: 0,
            per_node: vec![0; n],
            duplication_factor: if cyclic { f64::INFINITY } else { 1.0 },
            cyclic,
        };
    }

    // Path counts via Kahn's topological order over the edge multigraph.
    let mut occ = vec![0usize; n];
    for e in ctg.entry_nodes(view, stylesheet) {
        occ[e] = occ[e].saturating_add(1);
    }
    let mut indegree = vec![0usize; n];
    for e in &ctg.edges {
        indegree[e.to] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    while let Some(node) = queue.pop() {
        for e in ctg.edges.iter().filter(|e| e.from == node) {
            occ[e.to] = occ[e.to].saturating_add(occ[node]);
            indegree[e.to] -= 1;
            if indegree[e.to] == 0 {
                queue.push(e.to);
            }
        }
    }
    let total = occ.iter().fold(0usize, |a, &b| a.saturating_add(b));
    BlowupPrediction {
        ctg_nodes: n,
        ctg_edges: ctg.edges.len(),
        predicted_tvq_nodes: total,
        #[allow(clippy::cast_precision_loss)]
        duplication_factor: total as f64 / n as f64,
        per_node: occ,
        cyclic,
    }
}

/// Runs the CTG-level checks (XVC201, XVC202, XVC203, XVC204).
pub fn check_ctg(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    ctg: &Ctg,
    opts: &CheckOptions,
) -> (Vec<Diagnostic>, BlowupPrediction) {
    let mut out = Vec::new();

    // XVC201: rules that survive in no CTG node can never fire.
    for (ri, rule) in stylesheet.rules.iter().enumerate() {
        if !ctg.nodes.iter().any(|n| n.rule == ri) {
            out.push(
                Diagnostic::new(
                    Code::Xvc201,
                    Stage::Stylesheet,
                    format!(
                        "template rule {ri} (match `{}`{}) can never fire over this view",
                        rule.match_pattern,
                        if rule.mode == xvc_xslt::DEFAULT_MODE {
                            String::new()
                        } else {
                            format!(", mode {:?}", rule.mode)
                        }
                    ),
                )
                .with_span(rule.match_span.get())
                .with_help(
                    "no reachable view node matches this pattern in this mode \
                     (CTG pruning, Figure 9 line 15)",
                ),
            );
        }
    }

    // XVC202: view nodes the stylesheet never visits — their instances
    // would be published by v but contribute nothing to x(v(I)). A node
    // is live if some CTG node fires on it, or if it lies on the path to
    // one (its tag query still parameterizes a descendant's).
    let mut live = std::collections::HashSet::new();
    for n in &ctg.nodes {
        live.extend(view.path_from_root(n.view));
        live.insert(n.view);
    }
    for vid in view.node_ids() {
        if !live.contains(&vid) {
            if let Some(node) = view.node(vid) {
                out.push(
                    Diagnostic::new(
                        Code::Xvc202,
                        Stage::View,
                        format!(
                            "view node {} <{}> is never visited by the stylesheet",
                            node.id, node.tag
                        ),
                    )
                    .with_span(node.query_span.get())
                    .with_help(
                        "composition skips it entirely — fine if intended, but its tag \
                         query is dead weight in the view definition",
                    ),
                );
            }
        }
    }

    // XVC203: recursion — compose() will refuse; §5.3 partial push-down
    // applies.
    let prediction = predict_tvq(view, stylesheet, ctg);
    if let Some(witness) = ctg.has_cycle() {
        let n = &ctg.nodes[witness];
        let label = if view.is_root(n.view) {
            format!("((0, root), R{})", n.rule + 1)
        } else {
            let vn = view.node(n.view).expect("non-root CTG node");
            format!("(({}, {}), R{})", vn.id, vn.tag, n.rule + 1)
        };
        out.push(
            Diagnostic::new(
                Code::Xvc203,
                Stage::Stylesheet,
                format!("the stylesheet is recursive over this view (CTG cycle through {label})"),
            )
            .with_span(stylesheet.rules[n.rule].match_span.get())
            .with_help("compose() rejects cycles; use compose_recursive (§5.3) instead"),
        );
        return (out, prediction);
    }

    // XVC204: the §4.5 duplication blowup. Exceeding the TVQ budget is an
    // error (build_tvq will refuse); a high factor is a warning.
    if prediction.predicted_tvq_nodes > opts.tvq_limit {
        out.push(
            Diagnostic::new(
                Code::Xvc204,
                Stage::Stylesheet,
                format!(
                    "predicted TVQ size {} exceeds the {}-node budget \
                     ({} CTG nodes, duplication factor {:.1})",
                    prediction.predicted_tvq_nodes,
                    opts.tvq_limit,
                    prediction.ctg_nodes,
                    prediction.duplication_factor
                ),
            )
            .as_error()
            .with_help(
                "shared CTG nodes duplicate once per incoming path (§4.5); restructure the \
                 selects or raise ComposeOptions::tvq_limit",
            ),
        );
    } else if prediction.duplication_factor >= opts.blowup_factor {
        let worst = prediction
            .per_node
            .iter()
            .enumerate()
            .max_by_key(|(_, &o)| o)
            .map(|(i, &o)| (i, o));
        let mut d = Diagnostic::new(
            Code::Xvc204,
            Stage::Stylesheet,
            format!(
                "TVQ unrolling duplicates the CTG {:.1}x ({} CTG nodes become {} TVQ nodes)",
                prediction.duplication_factor, prediction.ctg_nodes, prediction.predicted_tvq_nodes
            ),
        );
        if let Some((i, o)) = worst {
            let n = &ctg.nodes[i];
            let label = if view.is_root(n.view) {
                "(0, root)".to_owned()
            } else {
                let vn = view.node(n.view).expect("non-root CTG node");
                format!("({}, {})", vn.id, vn.tag)
            };
            d = d.with_help(format!(
                "worst node: ({label}, R{}) is instantiated {o} times (§4.5 — every \
                 entry-to-node path becomes a separate TVQ node and tag query)",
                n.rule + 1
            ));
            d = d.with_span(stylesheet.rules[n.rule].match_span.get());
        }
        out.push(d);
    }
    (out, prediction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_core::{build_ctg, build_tvq};
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    fn default_opts() -> CheckOptions {
        CheckOptions::default()
    }

    #[test]
    fn figure4_prediction_matches_built_tvq() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let p = predict_tvq(&v, &x, &ctg);
        let tvq = build_tvq(&v, &x, &ctg, &figure2_catalog(), 10_000).unwrap();
        assert_eq!(p.predicted_tvq_nodes, tvq.nodes.len());
        assert!(!p.cyclic);
        assert!((p.duplication_factor - 1.0).abs() < 1e-9, "{p:?}");
    }

    #[test]
    fn duplication_is_predicted_exactly() {
        // Two distinct apply chains reach the same confstat rule: the CTG
        // shares the (confstat, R) node, the TVQ duplicates it.
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/">
                   <r><xsl:apply-templates select="metro"/></r>
                 </xsl:template>
                 <xsl:template match="metro">
                   <m>
                     <xsl:apply-templates select="confstat"/>
                     <xsl:apply-templates select="confstat"/>
                   </m>
                 </xsl:template>
                 <xsl:template match="confstat"><c><xsl:value-of select="@sum"/></c></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let p = predict_tvq(&v, &x, &ctg);
        let tvq = build_tvq(&v, &x, &ctg, &figure2_catalog(), 10_000).unwrap();
        assert_eq!(p.predicted_tvq_nodes, tvq.nodes.len());
        assert!(p.per_node.contains(&2), "{p:?}");
    }

    #[test]
    fn flags_unreachable_rule_and_dead_view_nodes() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
                 <xsl:template match="metro"><m/></xsl:template>
                 <xsl:template match="guestroom"><g/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let (ds, _) = check_ctg(&v, &x, &ctg, &default_opts());
        // guestroom rule never fires; hotel/confstat/… nodes are dead.
        assert!(ds.iter().any(|d| d.code == Code::Xvc201), "{ds:?}");
        assert!(ds.iter().any(|d| d.code == Code::Xvc202), "{ds:?}");
    }

    #[test]
    fn flags_recursion() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel"><h><xsl:apply-templates select="confstat"/></h></xsl:template>
                 <xsl:template match="confstat"><c><xsl:apply-templates select=".."/></c></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let (ds, p) = check_ctg(&v, &x, &ctg, &default_opts());
        assert!(p.cyclic);
        let d = ds.iter().find(|d| d.code == Code::Xvc203).unwrap();
        assert!(d.help.as_deref().unwrap().contains("compose_recursive"));
    }
}
