//! Pass 2 (and 4): well-formedness of tag queries against the catalog.
//!
//! Checks every tag query of a schema tree — the *input* publishing view,
//! or the *composed* stylesheet view the algorithm emitted — against
//! `xvc_rel`'s catalog: tables and columns must exist, comparisons must
//! not mix strings with numbers, `$n.col` parameters must resolve to
//! columns actually produced by a proper ancestor's tag query
//! (Definition 1), and aggregate queries must not project non-grouped
//! columns. Column resolution mirrors the layout logic of
//! `xvc_rel::output_columns`, extended with types and with layout
//! chaining into correlated `EXISTS` subqueries.

use std::collections::HashMap;

use xvc_rel::{AggFunc, Catalog, ColumnType, ScalarExpr, SelectItem, SelectQuery, TableRef, Value};
use xvc_view::{SchemaTree, ViewNode};
use xvc_xml::Span;

use crate::diag::{Code, Diagnostic, Stage};

/// Which kind of schema tree is being checked; selects the code space
/// (`1xx` for the input view, `3xx` for the composed output) and disables
/// the aggregate-projection check on composed trees (UNBIND adds grouped
/// context columns deliberately).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// The input publishing view (codes XVC101–XVC106).
    Input,
    /// The composed stylesheet view (codes XVC301/XVC302).
    Composed,
}

/// One resolved column: `(alias, name, type)`. Type is `None` for columns
/// of derived tables whose expression type is not statically known.
type LayoutCol = (String, String, Option<ColumnType>);

/// Checks every tag query of the tree. See module docs.
pub fn check_view(view: &SchemaTree, catalog: &Catalog, kind: TreeKind) -> Vec<Diagnostic> {
    let mut ck = Checker {
        catalog,
        kind,
        out: Vec::new(),
    };
    let mut scopes = HashMap::new();
    for &c in view.children(view.root()) {
        ck.walk(view, c, &mut scopes);
    }
    ck.out
}

struct Checker<'a> {
    catalog: &'a Catalog,
    kind: TreeKind,
    out: Vec<Diagnostic>,
}

impl Checker<'_> {
    fn stage(&self) -> Stage {
        match self.kind {
            TreeKind::Input => Stage::View,
            TreeKind::Composed => Stage::Composed,
        }
    }

    /// `1xx` code for input trees, `3xx` fold for composed trees.
    fn code(&self, input: Code) -> Code {
        match (self.kind, input) {
            (TreeKind::Input, c) => c,
            (TreeKind::Composed, Code::Xvc104 | Code::Xvc105) => Code::Xvc302,
            (TreeKind::Composed, _) => Code::Xvc301,
        }
    }

    fn walk(
        &mut self,
        view: &SchemaTree,
        vid: xvc_view::ViewNodeId,
        scopes: &mut HashMap<String, Vec<(String, Option<ColumnType>)>>,
    ) {
        let Some(node) = view.node(vid) else { return };
        let mut bound = None;
        if let Some(q) = &node.query {
            let cx = QueryCx {
                node,
                span: node.query_span.get(),
                scopes,
            };
            self.check_query(q, &cx, &[]);
            // Bind this node's variable for the subtree (proper ancestors
            // only — the node itself was checked against the old scope).
            let cols = self.typed_output_columns(q, scopes);
            bound = Some((node.bv.clone(), scopes.insert(node.bv.clone(), cols)));
        }
        for &c in view.children(vid) {
            self.walk(view, c, scopes);
        }
        if let Some((bv, prev)) = bound {
            match prev {
                Some(p) => {
                    scopes.insert(bv, p);
                }
                None => {
                    scopes.remove(&bv);
                }
            }
        }
    }

    fn check_query(&mut self, q: &SelectQuery, cx: &QueryCx<'_>, outer: &[LayoutCol]) {
        // FROM layout (XVC101 for unknown base tables).
        let mut layout: Vec<LayoutCol> = Vec::new();
        for t in &q.from {
            let alias = t.binding_name().to_owned();
            match t {
                TableRef::Named { name, .. } => match self.catalog.get(name) {
                    Ok(schema) => {
                        for c in &schema.columns {
                            layout.push((alias.clone(), c.name.clone(), Some(c.ty)));
                        }
                    }
                    Err(_) => self.push(
                        Code::Xvc101,
                        format!("unknown table `{name}`{}", cx.context()),
                        cx.span,
                        Some(format!(
                            "the catalog defines: {}",
                            self.catalog
                                .iter()
                                .map(|s| s.name.clone())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )),
                    ),
                },
                TableRef::Derived { query, .. } => {
                    self.check_query(query, cx, &chain(&layout, outer));
                    for (name, ty) in self.typed_output_columns(query, cx.scopes) {
                        layout.push((alias.clone(), name, ty));
                    }
                }
            }
        }

        // Expressions (XVC102/103/104/105).
        for item in &q.select {
            if let SelectItem::Expr { expr, .. } = item {
                self.check_expr(expr, &layout, outer, cx);
            }
        }
        if let Some(w) = &q.where_clause {
            self.check_expr(w, &layout, outer, cx);
        }
        for g in &q.group_by {
            self.check_expr(g, &layout, outer, cx);
        }
        if let Some(h) = &q.having {
            self.check_expr(h, &layout, outer, cx);
        }

        // Aggregate/GROUP BY consistency (XVC106; input trees only — the
        // composed queries group by context columns UNBIND added, which is
        // exactly the GROUP BY-preservation of Figure 12).
        if self.kind == TreeKind::Input && q.is_aggregating() {
            for item in &q.select {
                match item {
                    SelectItem::Star | SelectItem::QualifiedStar(_) => self.push(
                        Code::Xvc106,
                        format!("star select in an aggregating query{}", cx.context()),
                        cx.span,
                        Some("project the grouped columns and aggregates explicitly".into()),
                    ),
                    SelectItem::Expr { expr, .. } => {
                        if !expr.contains_aggregate() && !q.group_by.contains(expr) {
                            self.push(
                                Code::Xvc106,
                                format!(
                                    "select item `{}` is neither aggregated nor listed in \
                                     GROUP BY{}",
                                    expr_label(expr),
                                    cx.context()
                                ),
                                cx.span,
                                None,
                            );
                        }
                    }
                }
            }
        }
    }

    fn check_expr(
        &mut self,
        e: &ScalarExpr,
        layout: &[LayoutCol],
        outer: &[LayoutCol],
        cx: &QueryCx<'_>,
    ) {
        match e {
            ScalarExpr::Column { qualifier, name } => {
                if resolve(layout, outer, qualifier.as_deref(), name).is_none() {
                    let what = match qualifier {
                        Some(q) => format!("`{q}.{name}`"),
                        None => format!("`{name}`"),
                    };
                    self.push(
                        Code::Xvc102,
                        format!("unknown column {what}{}", cx.context()),
                        cx.span,
                        suggest_columns(name, layout),
                    );
                }
            }
            ScalarExpr::Param { var, column } => match cx.scopes.get(var) {
                None => self.push(
                    Code::Xvc104,
                    format!(
                        "parameter `${var}.{column}` references ${var}, which no proper \
                         ancestor binds{}",
                        cx.context()
                    ),
                    cx.span,
                    Some(
                        "Definition 1: tag-query parameters must be binding variables of \
                         ancestor view nodes"
                            .into(),
                    ),
                ),
                Some(cols) => {
                    if !cols.iter().any(|(n, _)| n == column) {
                        let avail = cols
                            .iter()
                            .map(|(n, _)| n.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        self.push(
                            Code::Xvc105,
                            format!(
                                "parameter `${var}.{column}`: the tag query binding ${var} \
                                 does not produce a column `{column}`{}",
                                cx.context()
                            ),
                            cx.span,
                            Some(format!("${var} produces: {avail}")),
                        );
                    }
                }
            },
            ScalarExpr::Binary { op, lhs, rhs } => {
                if op.is_comparison() {
                    let lt = self.type_of(lhs, layout, outer, cx);
                    let rt = self.type_of(rhs, layout, outer, cx);
                    if let (Some(a), Some(b)) = (lt, rt) {
                        if !compatible(a, b) {
                            self.push(
                                Code::Xvc103,
                                format!(
                                    "comparison `{} {} {}` mixes {a:?} and {b:?}{}",
                                    expr_label(lhs),
                                    op.symbol(),
                                    expr_label(rhs),
                                    cx.context()
                                ),
                                cx.span,
                                None,
                            );
                        }
                    }
                }
                self.check_expr(lhs, layout, outer, cx);
                self.check_expr(rhs, layout, outer, cx);
            }
            ScalarExpr::Not(inner) | ScalarExpr::IsNull(inner) => {
                self.check_expr(inner, layout, outer, cx);
            }
            ScalarExpr::Exists(sub) => {
                // Correlated EXISTS: the subquery sees this query's layout.
                self.check_query(sub, cx, &chain(layout, outer));
            }
            ScalarExpr::Aggregate { arg: Some(a), .. } => self.check_expr(a, layout, outer, cx),
            ScalarExpr::Aggregate { arg: None, .. } | ScalarExpr::Literal(_) => {}
        }
    }

    fn type_of(
        &self,
        e: &ScalarExpr,
        layout: &[LayoutCol],
        outer: &[LayoutCol],
        cx: &QueryCx<'_>,
    ) -> Option<ColumnType> {
        match e {
            ScalarExpr::Column { qualifier, name } => {
                resolve(layout, outer, qualifier.as_deref(), name).flatten()
            }
            ScalarExpr::Param { var, column } => cx
                .scopes
                .get(var)
                .and_then(|cols| cols.iter().find(|(n, _)| n == column))
                .and_then(|(_, ty)| *ty),
            ScalarExpr::Literal(Value::Int(_)) => Some(ColumnType::Int),
            ScalarExpr::Literal(Value::Float(_)) => Some(ColumnType::Float),
            ScalarExpr::Literal(Value::Str(_)) => Some(ColumnType::Str),
            ScalarExpr::Aggregate { func, arg } => match func {
                AggFunc::Count => Some(ColumnType::Int),
                AggFunc::Avg => Some(ColumnType::Float),
                AggFunc::Sum | AggFunc::Min | AggFunc::Max => arg
                    .as_ref()
                    .and_then(|a| self.type_of(a, layout, outer, cx)),
            },
            // Arithmetic, logic, NULL and subqueries: not statically typed
            // here; stay silent rather than guess wrong.
            _ => None,
        }
    }

    /// Output column names and (best-effort) types, mirroring
    /// `xvc_rel::output_columns` / `item_names` / `derived_name`.
    fn typed_output_columns(
        &self,
        q: &SelectQuery,
        scopes: &HashMap<String, Vec<(String, Option<ColumnType>)>>,
    ) -> Vec<(String, Option<ColumnType>)> {
        let mut layout: Vec<LayoutCol> = Vec::new();
        for t in &q.from {
            let alias = t.binding_name().to_owned();
            match t {
                TableRef::Named { name, .. } => {
                    if let Ok(schema) = self.catalog.get(name) {
                        for c in &schema.columns {
                            layout.push((alias.clone(), c.name.clone(), Some(c.ty)));
                        }
                    }
                }
                TableRef::Derived { query, .. } => {
                    for (name, ty) in self.typed_output_columns(query, scopes) {
                        layout.push((alias.clone(), name, ty));
                    }
                }
            }
        }
        let cx = QueryCx {
            node: &ViewNode::literal(0, "synthetic"),
            span: None,
            scopes,
        };
        let mut out = Vec::new();
        for (idx, item) in q.select.iter().enumerate() {
            match item {
                SelectItem::Star => {
                    out.extend(layout.iter().map(|(_, n, ty)| (n.clone(), *ty)));
                }
                SelectItem::QualifiedStar(qal) => out.extend(
                    layout
                        .iter()
                        .filter(|(a, _, _)| a == qal)
                        .map(|(_, n, ty)| (n.clone(), *ty)),
                ),
                SelectItem::Expr { expr, alias } => {
                    let name = match alias {
                        Some(a) => a.clone(),
                        None => match expr {
                            ScalarExpr::Column { name, .. } => name.clone(),
                            ScalarExpr::Param { column, .. } => column.clone(),
                            ScalarExpr::Aggregate { func, .. } => {
                                func.default_column_name().to_owned()
                            }
                            _ => format!("col{idx}"),
                        },
                    };
                    out.push((name, self.type_of(expr, &layout, &[], &cx)));
                }
            }
        }
        out
    }

    fn push(
        &mut self,
        input_code: Code,
        message: String,
        span: Option<Span>,
        help: Option<String>,
    ) {
        let mut d = Diagnostic::new(self.code(input_code), self.stage(), message).with_span(span);
        if let Some(h) = help {
            d = d.with_help(h);
        }
        self.out.push(d);
    }
}

/// Per-query context: the view node (for messages), the query's span in
/// the view source, and the typed ancestor bindings.
struct QueryCx<'a> {
    node: &'a ViewNode,
    span: Option<Span>,
    scopes: &'a HashMap<String, Vec<(String, Option<ColumnType>)>>,
}

impl QueryCx<'_> {
    fn context(&self) -> String {
        format!(
            " in the tag query of <{}> (node {})",
            self.node.tag, self.node.id
        )
    }
}

fn chain(layout: &[LayoutCol], outer: &[LayoutCol]) -> Vec<LayoutCol> {
    let mut v = layout.to_vec();
    v.extend_from_slice(outer);
    v
}

/// Resolves a (possibly qualified) column against the FROM layout, then
/// against the chained outer layouts (correlated EXISTS).
fn resolve(
    layout: &[LayoutCol],
    outer: &[LayoutCol],
    qualifier: Option<&str>,
    name: &str,
) -> Option<Option<ColumnType>> {
    let hit = |cols: &[LayoutCol]| {
        cols.iter()
            .find(|(a, n, _)| n == name && qualifier.is_none_or(|q| q == a))
            .map(|(_, _, ty)| *ty)
    };
    hit(layout).or_else(|| hit(outer))
}

fn suggest_columns(name: &str, layout: &[LayoutCol]) -> Option<String> {
    // A near-miss list keeps the message actionable without a fuzzy matcher.
    let mut names: Vec<&str> = layout.iter().map(|(_, n, _)| n.as_str()).collect();
    names.sort_unstable();
    names.dedup();
    if names.is_empty() {
        return None;
    }
    let close: Vec<&str> = names
        .iter()
        .filter(|n| n.contains(name) || name.contains(**n))
        .copied()
        .collect();
    let list = if close.is_empty() { names } else { close };
    Some(format!("available columns: {}", list.join(", ")))
}

fn compatible(a: ColumnType, b: ColumnType) -> bool {
    a == b
        || matches!(
            (a, b),
            (ColumnType::Int, ColumnType::Float) | (ColumnType::Float, ColumnType::Int)
        )
}

/// Compact rendering of a scalar expression for messages.
fn expr_label(e: &ScalarExpr) -> String {
    match e {
        ScalarExpr::Column {
            qualifier: Some(q),
            name,
        } => format!("{q}.{name}"),
        ScalarExpr::Column {
            qualifier: None,
            name,
        } => name.clone(),
        ScalarExpr::Param { var, column } => format!("${var}.{column}"),
        ScalarExpr::Literal(v) => format!("{v}"),
        ScalarExpr::Binary { op, lhs, rhs } => {
            format!("{} {} {}", expr_label(lhs), op.symbol(), expr_label(rhs))
        }
        ScalarExpr::Not(x) => format!("NOT {}", expr_label(x)),
        ScalarExpr::IsNull(x) => format!("{} IS NULL", expr_label(x)),
        ScalarExpr::Exists(_) => "EXISTS (...)".to_owned(),
        ScalarExpr::Aggregate { func, arg } => format!(
            "{}({})",
            func.keyword(),
            arg.as_deref().map_or_else(|| "*".to_owned(), expr_label)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_view::parse_view;

    fn check_src(view_src: &str, catalog: &Catalog) -> Vec<Diagnostic> {
        let v = parse_view(view_src).unwrap();
        check_view(&v, catalog, TreeKind::Input)
    }

    #[test]
    fn figure1_is_clean() {
        let ds = check_view(&figure1_view(), &figure2_catalog(), TreeKind::Input);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn unknown_table_and_column() {
        let cat = figure2_catalog();
        let ds = check_src("node a $x { query: SELECT metroid FROM metrarea; }", &cat);
        assert_eq!(ds.len(), 2, "{ds:?}"); // unknown table, then orphaned column
        assert_eq!(ds[0].code, Code::Xvc101);
        let ds = check_src("node a $x { query: SELECT metroidd FROM metroarea; }", &cat);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::Xvc102);
        assert!(ds[0].help.as_deref().unwrap().contains("metroid"), "{ds:?}");
    }

    #[test]
    fn type_mismatch_in_comparison() {
        let cat = figure2_catalog();
        let ds = check_src(
            "node a $x { query: SELECT metroid FROM metroarea WHERE metroname = 3; }",
            &cat,
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::Xvc103);
    }

    #[test]
    fn param_column_must_come_from_ancestor_output() {
        let cat = figure2_catalog();
        // $m only projects metroid/metroname; $m.hqstate does not exist.
        let ds = check_src(
            "node metro $m { query: SELECT metroid, metroname FROM metroarea;\n\
               node hotel $h { query: SELECT * FROM hotel WHERE metro_id = $m.hqstate; } }",
            &cat,
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::Xvc105);
        assert!(ds[0].help.as_deref().unwrap().contains("metroid"));
    }

    #[test]
    fn aggregate_projection_consistency() {
        let cat = figure2_catalog();
        let ds = check_src(
            "node a $x { query: SELECT SUM(capacity), croomnumber FROM confroom; }",
            &cat,
        );
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::Xvc106);
        // Grouped projection is fine.
        let ds = check_src(
            "node a $x { query: SELECT SUM(capacity), croomnumber FROM confroom \
             GROUP BY croomnumber; }",
            &cat,
        );
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn composed_kind_folds_codes() {
        let cat = figure2_catalog();
        let v = parse_view("node a $x { query: SELECT nope FROM metroarea; }").unwrap();
        let ds = check_view(&v, &cat, TreeKind::Composed);
        assert_eq!(ds.len(), 1, "{ds:?}");
        assert_eq!(ds[0].code, Code::Xvc301);
        assert_eq!(ds[0].stage, Stage::Composed);
    }
}
