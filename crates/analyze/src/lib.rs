//! # `xvc-analyze` — static analysis for view/stylesheet workloads
//!
//! `xvc check` runs this analyzer *before* composition. Seven passes, each
//! emitting [`Diagnostic`]s with stable `XVCnnn` codes, severities, source
//! spans and suggestions (see `DIAGNOSTICS.md` for the catalogue):
//!
//! 1. **Dialect conformance** ([`dialect`]) — the stylesheet against
//!    `XSLT_basic` (§2.2.2): which deviations the §5 extensions can lower
//!    (warnings) and which are fatal (errors);
//! 2. **View well-formedness** ([`view_check`]) — every tag query against
//!    the catalog: unknown tables/columns, type-mixing comparisons,
//!    Definition 1 parameter scoping, aggregate/GROUP BY consistency;
//! 3. **CTG analysis** ([`ctg_check`]) — unreachable rules, dead view
//!    nodes, recursion cycles, and the §4.5 duplication-blowup
//!    prediction (exact, cross-checked against `ComposeStats`);
//! 4. **Composed-output validation** ([`composed_check`]) — the SQL that
//!    `UNBIND`/`NEST` generated for `v′`, re-checked with the same typed
//!    resolver;
//! 5. **Predicate dataflow** ([`dataflow`]) — abstract interpretation over
//!    the TVQ (per-column equality/interval/nullability domains seeded
//!    from DDL constraints): dead subtrees, contradictions, redundant
//!    conjuncts, tautological `EXISTS`, NULL comparisons, key-implied
//!    duplicate joins, and what `ComposeOptions::prune` would remove;
//! 6. **Cardinality analysis** ([`cardinality`]) — static row bounds
//!    (`0 / <=1 / <=k / unbounded`) from `PRIMARY KEY` constraints and
//!    equality pushdowns, flowed down the TVQ's binding paths: provably
//!    empty tag queries, cross-product fan-out, unbounded recursive
//!    growth, non-single-row rebind guards, and a whole-document bound
//!    report when one is finite (`XVC5xx`); pass 2 additionally warns
//!    about declared indexes no tag query can use (`XVC120`);
//! 7. **Dependency lineage** ([`deps_check`]) — the static
//!    [`xvc_core::deps::DependencyMap`] over the same TVQ walk (or the
//!    raw view when the CTG is cyclic): write-amplifying columns, forced
//!    recomputation through recursion cycles, dead catalog tables, and
//!    the per-table impact report backing `Session::republish_delta`
//!    (`XVC6xx`).
//!
//! The analyzer never executes queries and needs no database instance —
//! only the catalog.

#![warn(missing_docs)]
// Curated clippy::pedantic subset for this crate (kept clean under
// `-D warnings` in ci.sh).
#![warn(
    clippy::doc_markdown,
    clippy::explicit_iter_loop,
    clippy::items_after_statements,
    clippy::manual_let_else,
    clippy::match_same_arms,
    clippy::needless_pass_by_value,
    clippy::redundant_closure_for_method_calls,
    clippy::semicolon_if_nothing_returned,
    clippy::uninlined_format_args
)]

pub mod cardinality;
pub mod composed_check;
pub mod ctg_check;
pub mod dataflow;
pub mod deps_check;
pub mod diag;
pub mod dialect;
pub mod render;
pub mod view_check;

use xvc_rel::Catalog;
use xvc_view::SchemaTree;
use xvc_xslt::Stylesheet;

use xvc_core::tvq::DEFAULT_TVQ_LIMIT;

pub use cardinality::{check_cardinality, check_index_usage, check_recursion_growth};
pub use composed_check::check_composed;
pub use ctg_check::{check_ctg, predict_tvq, BlowupPrediction};
pub use dataflow::check_dataflow;
pub use deps_check::{check_deps, check_deps_recursive, WRITE_AMPLIFICATION_THRESHOLD};
pub use diag::{Code, Diagnostic, Severity, Stage};
pub use dialect::check_stylesheet;
pub use render::{render, render_summary, sort_for_display, Sources};
pub use view_check::{check_view, TreeKind};

/// Analyzer knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckOptions {
    /// TVQ node budget mirrored from
    /// [`xvc_core::ComposeOptions`]; a prediction above it is an error
    /// (XVC204) because `build_tvq` will refuse.
    pub tvq_limit: usize,
    /// Duplication factor (`predicted TVQ nodes / CTG nodes`) above which
    /// a warning-level XVC204 is emitted.
    pub blowup_factor: f64,
}

impl Default for CheckOptions {
    fn default() -> Self {
        CheckOptions {
            tvq_limit: DEFAULT_TVQ_LIMIT,
            blowup_factor: 4.0,
        }
    }
}

/// The analyzer's output: diagnostics plus the CTG-level prediction when
/// one was computed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Report {
    /// All findings, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The §4.5 TVQ prediction, when both view and stylesheet were given
    /// and a CTG could be built.
    pub prediction: Option<BlowupPrediction>,
}

impl Report {
    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.diagnostics.len() - self.error_count()
    }

    /// True if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// The codes present, in emission order (for tests).
    pub fn codes(&self) -> Vec<Code> {
        self.diagnostics.iter().map(|d| d.code).collect()
    }
}

/// Checks already-parsed artifacts. Any of the three inputs may be absent;
/// passes needing a missing input are skipped.
pub fn check_workload(
    view: Option<&SchemaTree>,
    stylesheet: Option<&Stylesheet>,
    catalog: Option<&Catalog>,
    opts: &CheckOptions,
) -> Report {
    let mut report = Report::default();

    // Pass 1: dialect conformance.
    if let Some(x) = stylesheet {
        report.diagnostics.extend(dialect::check_stylesheet(x));
    }

    // Pass 2: view well-formedness, plus the index-usability advisory.
    if let (Some(v), Some(cat)) = (view, catalog) {
        report
            .diagnostics
            .extend(view_check::check_view(v, cat, TreeKind::Input));
        report
            .diagnostics
            .extend(cardinality::check_index_usage(v, cat));
    }

    // Pass 3: CTG-level analysis.
    let mut cyclic = false;
    if let (Some(v), Some(x)) = (view, stylesheet) {
        match xvc_core::build_ctg(v, x) {
            Ok(ctg) => {
                let (ds, prediction) = ctg_check::check_ctg(v, x, &ctg, opts);
                cyclic = prediction.cyclic;
                report.diagnostics.extend(ds);
                report.prediction = Some(prediction);
            }
            Err(e) => {
                // "No root rule" is already XVC008; anything else is a
                // genuine composability defect.
                if !report.diagnostics.iter().any(|d| d.code == Code::Xvc008) {
                    report.diagnostics.push(Diagnostic::new(
                        Code::Xvc009,
                        Stage::General,
                        e.to_string(),
                    ));
                }
            }
        }
    }

    // Passes 4 & 5: compose and validate the output, then run the
    // predicate-dataflow pass over the TVQ. Only when the workload is
    // error-free so far (errors mean composition is known to fail) and
    // acyclic (recursion takes the §5.3 path instead).
    if let (Some(v), Some(x), Some(cat)) = (view, stylesheet, catalog) {
        if !report.has_errors() && !cyclic {
            let needs_lowering = report.diagnostics.iter().any(|d| {
                matches!(
                    d.code,
                    Code::Xvc001 | Code::Xvc002 | Code::Xvc003 | Code::Xvc006
                )
            });
            let options = xvc_core::ComposeOptions {
                tvq_limit: opts.tvq_limit,
                ..xvc_core::ComposeOptions::default()
            };
            // §5.1 predicates compose directly; §5.2 deviations lower first.
            let lowered;
            let target: Option<&Stylesheet> = if needs_lowering {
                match xvc_xslt::rewrite::lower_to_basic(x) {
                    Ok(l) => {
                        lowered = l;
                        Some(&lowered)
                    }
                    Err(e) => {
                        report.diagnostics.push(
                            Diagnostic::new(
                                Code::Xvc009,
                                Stage::General,
                                xvc_core::Error::from(e).to_string(),
                            )
                            .with_help(
                                "the stylesheet parses and type-checks but falls outside \
                                 the composable fragment",
                            ),
                        );
                        None
                    }
                }
            } else {
                Some(x)
            };
            if let Some(xs) = target {
                match xvc_core::Composer::new(v, xs, cat)
                    .with_options(options)
                    .run()
                    .map(|c| c.view)
                {
                    Ok(c) => {
                        report
                            .diagnostics
                            .extend(composed_check::check_composed(&c, cat));
                        // Pass 5: XVC4xx over the same (lowered) workload.
                        report.diagnostics.extend(dataflow::check_dataflow(
                            v,
                            xs,
                            cat,
                            opts.tvq_limit,
                        ));
                        // Pass 6: XVC5xx cardinality analysis, same walk.
                        report.diagnostics.extend(cardinality::check_cardinality(
                            v,
                            xs,
                            cat,
                            opts.tvq_limit,
                        ));
                        // Pass 7: XVC6xx dependency lineage, same walk.
                        report.diagnostics.extend(deps_check::check_deps(
                            v,
                            xs,
                            cat,
                            opts.tvq_limit,
                        ));
                    }
                    Err(xvc_core::Error::TvqTooLarge { limit }) => {
                        if !report.diagnostics.iter().any(|d| d.code == Code::Xvc204) {
                            report.diagnostics.push(
                                Diagnostic::new(
                                    Code::Xvc204,
                                    Stage::General,
                                    format!("traverse view query exceeds the {limit}-node budget"),
                                )
                                .as_error(),
                            );
                        }
                    }
                    Err(e) => report.diagnostics.push(
                        Diagnostic::new(Code::Xvc009, Stage::General, e.to_string()).with_help(
                            "the stylesheet parses and type-checks but falls outside the \
                             composable fragment",
                        ),
                    ),
                }
            }
        }
        // Cyclic workloads have no TVQ; the cardinality pass instead
        // bounds the recursive expansion at the view level (XVC503).
        if !report.has_errors() && cyclic {
            report
                .diagnostics
                .extend(cardinality::check_recursion_growth(v, x, cat));
            // Pass 7, cyclic flavor: the dependency map over the raw view,
            // every edge recompute-required (XVC602 per structural column).
            report
                .diagnostics
                .extend(deps_check::check_deps_recursive(v, cat));
        }
    }
    report
}

/// Parses source texts and checks them; parse failures become diagnostics
/// (XVC010/XVC104/XVC107/XVC110) instead of hard errors, with spans.
pub fn check_sources(
    view_src: Option<&str>,
    xslt_src: Option<&str>,
    catalog: Option<&Catalog>,
    opts: &CheckOptions,
) -> Report {
    let mut parse_diags = Vec::new();

    let view = view_src.and_then(|src| match xvc_view::parse_view(src) {
        Ok(v) => Some(v),
        Err(e) => {
            parse_diags.push(view_error_to_diag(&e));
            None
        }
    });
    let stylesheet = xslt_src.and_then(|src| match xvc_xslt::parse_stylesheet(src) {
        Ok(x) => Some(x),
        Err(e) => {
            parse_diags.push(
                Diagnostic::new(Code::Xvc010, Stage::Stylesheet, e.to_string()).with_span(e.span()),
            );
            None
        }
    });

    let mut report = check_workload(view.as_ref(), stylesheet.as_ref(), catalog, opts);
    // Parse problems lead the report.
    parse_diags.append(&mut report.diagnostics);
    report.diagnostics = parse_diags;
    report
}

fn view_error_to_diag(e: &xvc_view::Error) -> Diagnostic {
    let code = match e {
        xvc_view::Error::UnboundViewParameter { .. } => Code::Xvc104,
        xvc_view::Error::DuplicateId { .. } | xvc_view::Error::DuplicateBindingVariable { .. } => {
            Code::Xvc107
        }
        _ => Code::Xvc110,
    };
    let mut d = Diagnostic::new(code, Stage::View, e.to_string()).with_span(e.span());
    if code == Code::Xvc104 {
        d = d.with_help(
            "Definition 1: tag-query parameters must be binding variables of ancestor view nodes",
        );
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::figure2_catalog;

    const VIEW: &str = "node metro $m {\n    query: SELECT metroid, metroname FROM metroarea;\n}";
    const XSLT: &str = r#"<xsl:stylesheet>
      <xsl:template match="/"><r><xsl:apply-templates select="metro"/></r></xsl:template>
      <xsl:template match="metro"><m><xsl:value-of select="@metroname"/></m></xsl:template>
    </xsl:stylesheet>"#;

    #[test]
    fn clean_workload_has_empty_report() {
        // A catalog holding exactly the tables the view reads: the XVC603
        // dead-table advisory stays quiet, like every other pass.
        let mut cat = Catalog::new();
        let full = figure2_catalog();
        cat.add(full.get("metroarea").unwrap().clone());
        let r = check_sources(Some(VIEW), Some(XSLT), Some(&cat), &CheckOptions::default());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.prediction.is_some());
        assert!(!r.has_errors());
    }

    #[test]
    fn parse_errors_become_diagnostics() {
        let cat = figure2_catalog();
        let r = check_sources(
            Some("node metro { query: SELECT 1 FROM t; }"),
            Some("<nope/>"),
            Some(&cat),
            &CheckOptions::default(),
        );
        assert!(r.codes().contains(&Code::Xvc110), "{:?}", r.codes());
        assert!(r.codes().contains(&Code::Xvc010), "{:?}", r.codes());
        assert!(r.has_errors());
    }

    #[test]
    fn stylesheet_only_check_works() {
        let r = check_sources(None, Some(XSLT), None, &CheckOptions::default());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(r.prediction.is_none());
    }

    #[test]
    fn duplicate_bv_maps_to_107() {
        let r = check_sources(
            Some(
                "node a $x { query: SELECT metroid FROM metroarea; }\n\
                 node b $x { query: SELECT metroid FROM metroarea; }",
            ),
            None,
            None,
            &CheckOptions::default(),
        );
        assert_eq!(r.codes(), vec![Code::Xvc107]);
    }
}
