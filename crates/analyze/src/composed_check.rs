//! Pass 4: validation of the composed stylesheet view `v′`.
//!
//! The SQL that `UNBIND`/`NEST` generate (Figures 10–13) is re-checked
//! against the catalog with the same typed resolver as the input view,
//! but in [`TreeKind::Composed`] mode: column/type defects fold to
//! XVC301, parameter-scoping defects to XVC302, and the aggregate
//! projection check is disabled (Figure 12's GROUP BY preservation adds
//! grouped context columns on purpose). A clean run is the static
//! counterpart of `check_composition`'s dynamic `v′(I) = x(v(I))` check.

use xvc_rel::Catalog;
use xvc_view::SchemaTree;

use crate::diag::Diagnostic;
use crate::view_check::{check_view, TreeKind};

/// Checks every tag query of a composed stylesheet view.
pub fn check_composed(composed: &SchemaTree, catalog: &Catalog) -> Vec<Diagnostic> {
    check_view(composed, catalog, TreeKind::Composed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Code;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_core::Composer;
    use xvc_view::SchemaTree;
    use xvc_xslt::Stylesheet;

    fn compose(
        v: &SchemaTree,
        x: &Stylesheet,
        cat: &xvc_rel::Catalog,
    ) -> xvc_core::Result<SchemaTree> {
        Composer::new(v, x, cat).run().map(|c| c.view)
    }
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    #[test]
    fn figure4_composition_is_clean() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let cat = figure2_catalog();
        let composed = compose(&v, &x, &cat).unwrap();
        let ds = check_composed(&composed, &cat);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn corrupted_composition_is_caught() {
        // Sabotage a composed tag query: reference a column that exists
        // nowhere. The static pass must notice without executing anything.
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let cat = figure2_catalog();
        let mut composed = compose(&v, &x, &cat).unwrap();
        let victim = composed
            .node_ids()
            .into_iter()
            .find(|&i| composed.node(i).is_some_and(|n| n.query.is_some()))
            .unwrap();
        composed
            .node_mut(victim)
            .unwrap()
            .query
            .as_mut()
            .unwrap()
            .and_where(xvc_rel::ScalarExpr::eq(
                xvc_rel::ScalarExpr::col("no_such_column"),
                xvc_rel::ScalarExpr::int(1),
            ));
        let ds = check_composed(&composed, &cat);
        assert!(ds.iter().any(|d| d.code == Code::Xvc301), "{ds:?}");
    }
}
