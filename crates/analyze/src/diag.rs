//! Diagnostic model: stable codes, severities, spans, help text.
//!
//! Every problem `xvc check` can report has a stable code (`XVC001`…)
//! so fixtures, scripts and documentation can match on it. Codes are
//! grouped by pipeline stage: `0xx` stylesheet/dialect, `1xx` view
//! definition, `2xx` CTG-level, `3xx` composed output, `4xx`
//! predicate-dataflow findings over the TVQ, `5xx` cardinality-analysis
//! findings (row bounds, fan-out, growth), `6xx` table-to-view dependency
//! (lineage) findings over the static [`xvc_core::deps::DependencyMap`].

use std::fmt;

use xvc_xml::Span;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The workload still composes (possibly after the §5 rewrites).
    Warning,
    /// Composition or execution will definitely fail or be wrong.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which input artifact a diagnostic (and its span) refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The XSLT stylesheet source.
    Stylesheet,
    /// The view-definition source.
    View,
    /// The composed stylesheet view (no source text; spans are absent).
    Composed,
    /// Workload-level (neither input file specifically).
    General,
}

/// Stable diagnostic codes. See `DIAGNOSTICS.md` for the catalogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[allow(missing_docs)] // the variant name *is* the code; summaries below
pub enum Code {
    Xvc001,
    Xvc002,
    Xvc003,
    Xvc004,
    Xvc005,
    Xvc006,
    Xvc007,
    Xvc008,
    Xvc009,
    Xvc010,
    Xvc101,
    Xvc102,
    Xvc103,
    Xvc104,
    Xvc105,
    Xvc106,
    Xvc107,
    Xvc110,
    Xvc120,
    Xvc201,
    Xvc202,
    Xvc203,
    Xvc204,
    Xvc301,
    Xvc302,
    Xvc401,
    Xvc402,
    Xvc403,
    Xvc404,
    Xvc405,
    Xvc406,
    Xvc407,
    Xvc501,
    Xvc502,
    Xvc503,
    Xvc504,
    Xvc505,
    Xvc601,
    Xvc602,
    Xvc603,
    Xvc604,
}

impl Code {
    /// The stable code string, e.g. `"XVC001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Xvc001 => "XVC001",
            Code::Xvc002 => "XVC002",
            Code::Xvc003 => "XVC003",
            Code::Xvc004 => "XVC004",
            Code::Xvc005 => "XVC005",
            Code::Xvc006 => "XVC006",
            Code::Xvc007 => "XVC007",
            Code::Xvc008 => "XVC008",
            Code::Xvc009 => "XVC009",
            Code::Xvc010 => "XVC010",
            Code::Xvc101 => "XVC101",
            Code::Xvc102 => "XVC102",
            Code::Xvc103 => "XVC103",
            Code::Xvc104 => "XVC104",
            Code::Xvc105 => "XVC105",
            Code::Xvc106 => "XVC106",
            Code::Xvc107 => "XVC107",
            Code::Xvc110 => "XVC110",
            Code::Xvc120 => "XVC120",
            Code::Xvc201 => "XVC201",
            Code::Xvc202 => "XVC202",
            Code::Xvc203 => "XVC203",
            Code::Xvc204 => "XVC204",
            Code::Xvc301 => "XVC301",
            Code::Xvc302 => "XVC302",
            Code::Xvc401 => "XVC401",
            Code::Xvc402 => "XVC402",
            Code::Xvc403 => "XVC403",
            Code::Xvc404 => "XVC404",
            Code::Xvc405 => "XVC405",
            Code::Xvc406 => "XVC406",
            Code::Xvc407 => "XVC407",
            Code::Xvc501 => "XVC501",
            Code::Xvc502 => "XVC502",
            Code::Xvc503 => "XVC503",
            Code::Xvc504 => "XVC504",
            Code::Xvc505 => "XVC505",
            Code::Xvc601 => "XVC601",
            Code::Xvc602 => "XVC602",
            Code::Xvc603 => "XVC603",
            Code::Xvc604 => "XVC604",
        }
    }

    /// One-line summary of what the code means.
    pub fn summary(self) -> &'static str {
        match self {
            Code::Xvc001 => "pattern contains predicates (XSLT_basic restriction 4)",
            Code::Xvc002 => "flow-control element (XSLT_basic restriction 5)",
            Code::Xvc003 => "potentially conflicting template rules (XSLT_basic restriction 6)",
            Code::Xvc004 => "variables or parameters (XSLT_basic restriction 8)",
            Code::Xvc005 => "descendant axis in a pattern (XSLT_basic restriction 9)",
            Code::Xvc006 => "non-basic value-of/copy-of select (XSLT_basic restriction 10)",
            Code::Xvc007 => "apply-templates targets a mode with no template rules",
            Code::Xvc008 => "no default-mode rule matches the document root",
            Code::Xvc009 => "stylesheet is not composable over this view",
            Code::Xvc010 => "stylesheet failed to parse",
            Code::Xvc101 => "tag query references an unknown table",
            Code::Xvc102 => "tag query references an unknown column",
            Code::Xvc103 => "comparison between incompatible column types",
            Code::Xvc104 => "tag query references an unbound view parameter",
            Code::Xvc105 => "parameter column not produced by the ancestor's tag query",
            Code::Xvc106 => "non-aggregated select item outside GROUP BY",
            Code::Xvc107 => "duplicate view-node id or binding variable",
            Code::Xvc110 => "view definition failed to parse",
            Code::Xvc120 => "declared index is never usable by any tag query",
            Code::Xvc201 => "template rule can never fire over this view",
            Code::Xvc202 => "view node is never visited by the stylesheet",
            Code::Xvc203 => "stylesheet is recursive over this view (CTG cycle)",
            Code::Xvc204 => "TVQ duplication blowup predicted (§4.5)",
            Code::Xvc301 => "composed tag query is not well-typed",
            Code::Xvc302 => "composed tag query parameter is out of scope",
            Code::Xvc401 => "TVQ subtree is provably dead (unsatisfiable tag query)",
            Code::Xvc402 => "contradictory predicate (query still yields its aggregate row)",
            Code::Xvc403 => "conjunct is redundant (entailed by facts in force)",
            Code::Xvc404 => "EXISTS condition is tautological",
            Code::Xvc405 => "comparison with NULL never holds",
            Code::Xvc406 => "key-implied duplicate join candidate",
            Code::Xvc407 => "predicate-dataflow prune report",
            Code::Xvc501 => "tag query is provably empty (cardinality bound: 0 rows)",
            Code::Xvc502 => "cross-product join makes the per-parent fan-out unbounded",
            Code::Xvc503 => "recursive expansion has no finite growth bound",
            Code::Xvc504 => "rebind guard probe is not provably single-row",
            Code::Xvc505 => "static cardinality report (document bound is finite)",
            Code::Xvc601 => "write-amplifying column (feeds many view nodes)",
            Code::Xvc602 => "recompute-required dependency through a recursion cycle",
            Code::Xvc603 => "catalog table is never read by any tag query",
            Code::Xvc604 => "table-to-view dependency impact report",
        }
    }

    /// The severity this code carries unless escalated.
    pub fn default_severity(self) -> Severity {
        match self {
            // Lowerable dialect deviations (§5.1/§5.2), constructs the
            // composer handles beyond XSLT_basic (unambiguous descendant
            // steps), advisory CTG findings, and the cardinality/index
            // advisories are warnings; everything else definitely breaks
            // composition or execution.
            Code::Xvc001
            | Code::Xvc002
            | Code::Xvc003
            | Code::Xvc004
            | Code::Xvc005
            | Code::Xvc006
            | Code::Xvc007
            | Code::Xvc120
            | Code::Xvc201
            | Code::Xvc202
            | Code::Xvc203
            | Code::Xvc204
            | Code::Xvc401
            | Code::Xvc402
            | Code::Xvc403
            | Code::Xvc404
            | Code::Xvc405
            | Code::Xvc406
            | Code::Xvc407
            | Code::Xvc501
            | Code::Xvc502
            | Code::Xvc503
            | Code::Xvc504
            | Code::Xvc505
            | Code::Xvc601
            | Code::Xvc602
            | Code::Xvc603
            | Code::Xvc604 => Severity::Warning,
            Code::Xvc008
            | Code::Xvc009
            | Code::Xvc010
            | Code::Xvc101
            | Code::Xvc102
            | Code::Xvc103
            | Code::Xvc104
            | Code::Xvc105
            | Code::Xvc106
            | Code::Xvc107
            | Code::Xvc110
            | Code::Xvc301
            | Code::Xvc302 => Severity::Error,
        }
    }

    /// All codes, in catalogue order (for documentation and tests).
    pub fn all() -> &'static [Code] {
        &[
            Code::Xvc001,
            Code::Xvc002,
            Code::Xvc003,
            Code::Xvc004,
            Code::Xvc005,
            Code::Xvc006,
            Code::Xvc007,
            Code::Xvc008,
            Code::Xvc009,
            Code::Xvc010,
            Code::Xvc101,
            Code::Xvc102,
            Code::Xvc103,
            Code::Xvc104,
            Code::Xvc105,
            Code::Xvc106,
            Code::Xvc107,
            Code::Xvc110,
            Code::Xvc120,
            Code::Xvc201,
            Code::Xvc202,
            Code::Xvc203,
            Code::Xvc204,
            Code::Xvc301,
            Code::Xvc302,
            Code::Xvc401,
            Code::Xvc402,
            Code::Xvc403,
            Code::Xvc404,
            Code::Xvc405,
            Code::Xvc406,
            Code::Xvc407,
            Code::Xvc501,
            Code::Xvc502,
            Code::Xvc503,
            Code::Xvc504,
            Code::Xvc505,
            Code::Xvc601,
            Code::Xvc602,
            Code::Xvc603,
            Code::Xvc604,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (usually [`Code::default_severity`], sometimes escalated).
    pub severity: Severity,
    /// Which artifact the span points into.
    pub stage: Stage,
    /// Human-readable message (the line after `error[XVC...]:`).
    pub message: String,
    /// Byte-offset span into that artifact's source, when known.
    pub span: Option<Span>,
    /// Optional suggestion line.
    pub help: Option<String>,
    /// Fact chain justifying the finding, oldest fact first (XVC4xx/XVC5xx
    /// carry these; rendered as `note:` lines and as a JSON array).
    pub justification: Vec<String>,
}

impl Diagnostic {
    /// A diagnostic at the code's default severity.
    pub fn new(code: Code, stage: Stage, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.default_severity(),
            stage,
            message: message.into(),
            span: None,
            help: None,
            justification: Vec::new(),
        }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Attaches a help line.
    #[must_use]
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Attaches the justifying fact chain.
    #[must_use]
    pub fn with_justification(mut self, chain: Vec<String>) -> Self {
        self.justification = chain;
        self
    }

    /// Escalates the diagnostic to an error.
    #[must_use]
    pub fn as_error(mut self) -> Self {
        self.severity = Severity::Error;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::all();
        for (i, c) in all.iter().enumerate() {
            assert!(c.as_str().starts_with("XVC"));
            assert!(!c.summary().is_empty());
            for other in &all[i + 1..] {
                assert_ne!(c.as_str(), other.as_str());
            }
        }
    }

    #[test]
    fn severity_escalation() {
        let d = Diagnostic::new(Code::Xvc204, Stage::General, "big");
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.as_error().severity, Severity::Error);
    }

    #[test]
    fn display_is_rustc_shaped() {
        let d = Diagnostic::new(Code::Xvc101, Stage::View, "unknown table `htel`");
        assert_eq!(d.to_string(), "error[XVC101]: unknown table `htel`");
    }
}
