//! Pass 5: predicate dataflow over the TVQ (the `XVC4xx` codes).
//!
//! Re-runs the [`xvc_core::prune`] abstract-interpretation pass that
//! `ComposeOptions::prune` uses and converts its verdicts into
//! diagnostics: dead TVQ subtrees (XVC401), contradictions that survive
//! as empty aggregate rows (XVC402), redundant conjuncts (XVC403),
//! tautological `EXISTS` conditions (XVC404), comparisons that can never
//! bind because of NULL (XVC405), key-implied duplicate joins (XVC406)
//! and the overall prune-size report (XVC407). Every finding carries the
//! fact chain that justifies it, so the report doubles as an explanation
//! of what `--prune` would do.

use xvc_core::prune::{analyze_tvq, prune_tvq};
use xvc_core::tvq::{build_tvq, Tvq};
use xvc_core::unbind::UnboundQuery;
use xvc_rel::Catalog;
use xvc_view::SchemaTree;
use xvc_xslt::Stylesheet;

use crate::diag::{Code, Diagnostic, Stage};

/// Runs the dataflow pass. The stylesheet must already be lowered (the
/// caller mirrors pass 4's `lower_to_basic` decision). CTG/TVQ build
/// failures yield no diagnostics here — pass 4 reports those.
pub fn check_dataflow(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    catalog: &Catalog,
    tvq_limit: usize,
) -> Vec<Diagnostic> {
    let Ok(ctg) = xvc_core::build_ctg(view, stylesheet) else {
        return Vec::new();
    };
    let Ok(tvq) = build_tvq(view, stylesheet, &ctg, catalog, tvq_limit) else {
        return Vec::new();
    };

    let mut out = Vec::new();
    let analysis = analyze_tvq(&tvq, catalog);
    for (idx, verdict) in analysis.verdicts.iter().enumerate() {
        let label = node_label(view, &tvq, idx);
        if verdict.dead {
            let n = subtree_size(&tvq, idx);
            let what = if n == 1 {
                "the node is dead".to_owned()
            } else {
                format!("its {n}-node subtree is dead")
            };
            out.push(
                Diagnostic::new(
                    Code::Xvc401,
                    Stage::Composed,
                    format!("{label}: the tag query can never yield a row; {what}"),
                )
                .with_help(fact_chain(&verdict.chain))
                .with_justification(verdict.chain.clone()),
            );
            for nc in verdict.analysis.iter().flat_map(|a| &a.null_compares) {
                out.push(Diagnostic::new(
                    Code::Xvc405,
                    Stage::Composed,
                    format!("{label}: {nc}"),
                ));
            }
            continue;
        }
        let Some(a) = &verdict.analysis else { continue };
        if let Some(c) = &a.contradiction {
            out.push(
                Diagnostic::new(
                    Code::Xvc402,
                    Stage::Composed,
                    format!(
                        "{label}: conjunct `{}` is provably false, but the implicit \
                         aggregation still yields one row (aggregates over no tuples)",
                        c.conjunct
                    ),
                )
                .with_help(fact_chain(&c.chain))
                .with_justification(c.chain.clone()),
            );
            for nc in &a.null_compares {
                out.push(Diagnostic::new(
                    Code::Xvc405,
                    Stage::Composed,
                    format!("{label}: {nc}"),
                ));
            }
            continue;
        }
        for r in &a.redundant {
            let (code, what) = if r.tautological_exists {
                (Code::Xvc404, "is a tautological existence condition")
            } else {
                (Code::Xvc403, "is entailed by the facts in force")
            };
            out.push(
                Diagnostic::new(
                    code,
                    Stage::Composed,
                    format!("{label}: conjunct `{}` {what}", r.conjunct),
                )
                .with_help(fact_chain(&r.chain))
                .with_justification(r.chain.clone()),
            );
        }
        for nc in &a.null_compares {
            out.push(Diagnostic::new(
                Code::Xvc405,
                Stage::Composed,
                format!("{label}: {nc}"),
            ));
        }
        for dj in &a.dup_joins {
            out.push(Diagnostic::new(
                Code::Xvc406,
                Stage::Composed,
                format!("{label}: {dj}"),
            ));
        }
    }

    // The prune-size report: what `--prune` would actually do.
    let total = tvq.nodes.len();
    let mut pruned = tvq.clone();
    let stats = prune_tvq(&mut pruned, catalog);
    if stats.nodes_removed > 0 || stats.conjuncts_eliminated > 0 {
        out.push(
            Diagnostic::new(
                Code::Xvc407,
                Stage::General,
                format!(
                    "predicate-dataflow prune would remove {} of {total} TVQ nodes and drop \
                     {} redundant conjunct(s)",
                    stats.nodes_removed, stats.conjuncts_eliminated
                ),
            )
            .with_help("compose with pruning enabled (ComposeOptions::prune / `--prune`) to apply"),
        );
    }
    out
}

pub(crate) fn fact_chain(chain: &[String]) -> String {
    if chain.is_empty() {
        "no recorded facts (structurally impossible)".to_owned()
    } else {
        format!("fact chain: {}", chain.join("  ->  "))
    }
}

pub(crate) fn node_label(view: &SchemaTree, tvq: &Tvq, idx: usize) -> String {
    let w = &tvq.nodes[idx];
    let tag = if view.is_root(w.view) {
        "root".to_owned()
    } else {
        view.node(w.view)
            .map_or_else(|| "?".to_owned(), |n| n.tag.clone())
    };
    let binding = match &w.binding {
        UnboundQuery::Query(_) => format!(", ${}", w.bv),
        UnboundQuery::Rebind { source, .. } if !source.is_empty() => {
            format!(", rebinds ${source}")
        }
        _ => String::new(),
    };
    format!("TVQ node <{tag}> (rule R{}{binding})", w.rule + 1)
}

fn subtree_size(tvq: &Tvq, idx: usize) -> usize {
    1 + tvq.nodes[idx]
        .children
        .iter()
        .map(|&(c, _)| subtree_size(tvq, c))
        .sum::<usize>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_core::tvq::DEFAULT_TVQ_LIMIT;
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    #[test]
    fn clean_workload_reports_nothing() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ds = check_dataflow(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        assert!(ds.is_empty(), "{ds:?}");
    }

    #[test]
    fn contradictory_match_predicate_is_dead_with_chain() {
        // Figure 4 extended: a template demanding starrating < 3 on hotel
        // instances, which the view restricts to starrating > 4.
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>
                 <xsl:template match="metro">
                   <m><xsl:apply-templates select="hotel[@starrating &lt; 3]"/></m>
                 </xsl:template>
                 <xsl:template match="hotel"><h/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ds = check_dataflow(&v, &x, &figure2_catalog(), DEFAULT_TVQ_LIMIT);
        let codes: Vec<_> = ds.iter().map(|d| d.code).collect();
        assert!(codes.contains(&Code::Xvc401), "{ds:?}");
        assert!(codes.contains(&Code::Xvc407), "{ds:?}");
        let dead = ds.iter().find(|d| d.code == Code::Xvc401).unwrap();
        let help = dead.help.as_deref().unwrap_or("");
        assert!(
            help.contains("starrating"),
            "chain should cite the starrating facts: {help}"
        );
    }
}
