//! Property tests for the XPath layer: display/parse round-trips on
//! generated paths and expressions, and evaluation laws over random
//! documents.

use proptest::prelude::*;
use xvc_xpath::ast::BinOp;
use xvc_xpath::{
    eval_path, parse_expr, parse_path, pattern_matches, Axis, Expr, NodeTest, PathExpr, Step,
    VarBindings,
};

/// Case count: the in-tree default, overridable via `PROPTEST_CASES` for
/// heavier offline fuzzing runs.
fn cases(default: u32) -> proptest::test_runner::Config {
    let n = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default);
    proptest::test_runner::Config::with_cases(n)
}

// ---------------------------------------------------------------------------
// AST generators
// ---------------------------------------------------------------------------

fn name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}"
}

fn pred_strategy() -> impl Strategy<Value = Expr> {
    let attr = name().prop_map(|a| {
        Expr::Path(PathExpr {
            absolute: false,
            steps: vec![Step {
                axis: Axis::Attribute,
                test: NodeTest::Name(a),
                predicates: vec![],
            }],
        })
    });
    let op = prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Lt),
        Just(BinOp::Gt),
        Just(BinOp::Le),
        Just(BinOp::Ge),
        Just(BinOp::Ne),
    ];
    (attr, op, 0i64..1000).prop_map(|(a, op, n)| Expr::Binary {
        op,
        lhs: Box::new(a),
        rhs: Box::new(Expr::Number(n as f64)),
    })
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let axis = prop_oneof![
        4 => Just(Axis::Child),
        1 => Just(Axis::Parent),
        1 => Just(Axis::SelfAxis),
    ];
    (axis, name(), prop::collection::vec(pred_strategy(), 0..2)).prop_map(
        |(axis, n, predicates)| {
            let test = match axis {
                Axis::Child => NodeTest::Name(n),
                _ => NodeTest::Wildcard,
            };
            Step {
                axis,
                test,
                predicates,
            }
        },
    )
}

fn path_strategy() -> impl Strategy<Value = PathExpr> {
    (any::<bool>(), prop::collection::vec(step_strategy(), 1..5))
        .prop_map(|(absolute, steps)| PathExpr { absolute, steps })
}

/// Nested boolean predicates: and/or/not over comparison atoms — display
/// must parenthesize so the round-trip preserves the tree.
fn bool_expr_strategy() -> impl Strategy<Value = Expr> {
    pred_strategy().prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Expr::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(cases(256))]

    /// display → parse is the identity on generated paths.
    #[test]
    fn path_display_parse_roundtrip(p in path_strategy()) {
        let text = p.to_string();
        let reparsed = parse_path(&text).unwrap();
        prop_assert_eq!(&p, &reparsed, "{}", text);
        prop_assert_eq!(text.clone(), reparsed.to_string());
    }

    /// display → parse is the identity on generated predicates.
    #[test]
    fn expr_display_parse_roundtrip(e in pred_strategy()) {
        let text = e.to_string();
        let reparsed = parse_expr(&text).unwrap();
        prop_assert_eq!(&e, &reparsed, "{}", text);
    }

    /// ... including arbitrarily nested and/or/not trees (the display must
    /// parenthesize `a and (b or c)` correctly).
    #[test]
    fn boolean_tree_display_parse_roundtrip(e in bool_expr_strategy()) {
        let text = e.to_string();
        let reparsed = parse_expr(&text).unwrap();
        prop_assert_eq!(&e, &reparsed, "{}", text);
    }
}

// ---------------------------------------------------------------------------
// Evaluation laws over random documents
// ---------------------------------------------------------------------------

fn doc_strategy() -> impl Strategy<Value = xvc_xml::Document> {
    // Random three-level documents: <root><a x=..><b y=../></a>...</root>.
    prop::collection::vec((0i64..10, prop::collection::vec(0i64..10, 0..3)), 0..4).prop_map(
        |tops| {
            let mut b = xvc_xml::TreeBuilder::new();
            b.open("root");
            for (x, kids) in tops {
                b.open("a");
                b.attr("x", x.to_string());
                for y in kids {
                    b.open("b");
                    b.attr("y", y.to_string());
                    b.close();
                }
                b.close();
            }
            b.close();
            b.finish()
        },
    )
}

proptest! {
    #![proptest_config(cases(128))]

    /// `a/b` from the root equals the union of `b` from each `a`.
    #[test]
    fn path_composition_law(doc in doc_strategy()) {
        let vars = VarBindings::new();
        let root = doc.root();
        let composed = eval_path(&doc, root, &parse_path("root/a/b").unwrap(), &vars).unwrap();
        let mut stepwise = Vec::new();
        for a in eval_path(&doc, root, &parse_path("root/a").unwrap(), &vars).unwrap() {
            stepwise.extend(eval_path(&doc, a, &parse_path("b").unwrap(), &vars).unwrap());
        }
        prop_assert_eq!(composed, stepwise);
    }

    /// `b/..` from the root's `a/b` children lands back on their parents.
    #[test]
    fn down_up_law(doc in doc_strategy()) {
        let vars = VarBindings::new();
        let root = doc.root();
        for b in eval_path(&doc, root, &parse_path("root/a/b").unwrap(), &vars).unwrap() {
            let up = eval_path(&doc, b, &parse_path("..").unwrap(), &vars).unwrap();
            prop_assert_eq!(up, vec![doc.parent(b).unwrap()]);
        }
    }

    /// Every node selected by `root/a[pred]` satisfies the pattern
    /// `a[pred]` (select/match agreement — the invariant the CTG is
    /// built on).
    #[test]
    fn select_match_agreement(doc in doc_strategy(), threshold in 0i64..10) {
        let vars = VarBindings::new();
        let root = doc.root();
        let select = parse_path(&format!("root/a[@x>{threshold}]")).unwrap();
        let pattern = xvc_xpath::parse_pattern(&format!("a[@x>{threshold}]")).unwrap();
        let all = eval_path(&doc, root, &parse_path("root/a").unwrap(), &vars).unwrap();
        let selected = eval_path(&doc, root, &select, &vars).unwrap();
        for node in all {
            let matched = pattern_matches(&doc, node, &pattern, &vars).unwrap();
            prop_assert_eq!(matched, selected.contains(&node));
        }
    }

    /// Predicates filter monotonically: `a[p]` ⊆ `a`.
    #[test]
    fn predicates_shrink(doc in doc_strategy(), threshold in 0i64..10) {
        let vars = VarBindings::new();
        let root = doc.root();
        let all = eval_path(&doc, root, &parse_path("root/a").unwrap(), &vars).unwrap();
        let filtered = eval_path(
            &doc,
            root,
            &parse_path(&format!("root/a[@x&gt;{threshold}]").replace("&gt;", ">")).unwrap(),
            &vars,
        )
        .unwrap();
        prop_assert!(filtered.iter().all(|n| all.contains(n)));
        prop_assert!(filtered.len() <= all.len());
    }
}
