//! Tokenizer for the XPath dialect.

use crate::error::{Error, Result};

/// Lexical tokens of the XPath dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*` — either wildcard node test or multiplication, decided by parser.
    Star,
    /// `$`
    Dollar,
    /// `::`
    ColonColon,
    /// `,`
    Comma,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// An NCName (also carries keywords `and`/`or`/`not`/`div`/`mod`,
    /// disambiguated by the parser based on position).
    Name(String),
    /// A quoted string literal (quotes removed).
    Literal(String),
    /// A numeric literal.
    Number(f64),
}

impl std::fmt::Display for Token {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Token::Slash => write!(f, "'/'"),
            Token::DoubleSlash => write!(f, "'//'"),
            Token::Dot => write!(f, "'.'"),
            Token::DotDot => write!(f, "'..'"),
            Token::At => write!(f, "'@'"),
            Token::LBracket => write!(f, "'['"),
            Token::RBracket => write!(f, "']'"),
            Token::LParen => write!(f, "'('"),
            Token::RParen => write!(f, "')'"),
            Token::Star => write!(f, "'*'"),
            Token::Dollar => write!(f, "'$'"),
            Token::ColonColon => write!(f, "'::'"),
            Token::Comma => write!(f, "','"),
            Token::Eq => write!(f, "'='"),
            Token::Ne => write!(f, "'!='"),
            Token::Lt => write!(f, "'<'"),
            Token::Le => write!(f, "'<='"),
            Token::Gt => write!(f, "'>'"),
            Token::Ge => write!(f, "'>='"),
            Token::Plus => write!(f, "'+'"),
            Token::Minus => write!(f, "'-'"),
            Token::Name(n) => write!(f, "name '{n}'"),
            Token::Literal(s) => write!(f, "literal \"{s}\""),
            Token::Number(n) => write!(f, "number {n}"),
        }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

/// Tokenizes an XPath expression.
///
/// Note on names: XPath names may contain `-` and `.`, which conflicts with
/// subtraction and the self step. The standard resolution (which we follow)
/// is maximal-munch *within* a name only when the `-`/`.` is followed by a
/// name character and preceded by name characters without intervening
/// whitespace — i.e. `a-b` is one name, `a - b` or `a -b` is a subtraction.
/// `$idx-1` therefore lexes as `$`, `idx-1`... which is wrong for the
/// paper's examples, so like several real engines we treat `-` after a name
/// as part of the name only if the next char is a letter or `_`.
pub fn tokenize(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(offset, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('/') {
                    chars.next();
                    out.push(Token::DoubleSlash);
                } else {
                    out.push(Token::Slash);
                }
            }
            '.' => {
                chars.next();
                match chars.peek().map(|&(_, c)| c) {
                    Some('.') => {
                        chars.next();
                        out.push(Token::DotDot);
                    }
                    Some(d) if d.is_ascii_digit() => {
                        // .5 style number
                        let mut text = String::from("0.");
                        while matches!(chars.peek(), Some(&(_, d)) if d.is_ascii_digit()) {
                            text.push(chars.next().unwrap().1);
                        }
                        let n = text
                            .parse::<f64>()
                            .map_err(|_| Error::BadNumber { text: text.clone() })?;
                        out.push(Token::Number(n));
                    }
                    _ => out.push(Token::Dot),
                }
            }
            '@' => {
                chars.next();
                out.push(Token::At);
            }
            '[' => {
                chars.next();
                out.push(Token::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Token::RBracket);
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            '*' => {
                chars.next();
                out.push(Token::Star);
            }
            '$' => {
                chars.next();
                out.push(Token::Dollar);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '=' => {
                chars.next();
                out.push(Token::Eq);
            }
            '!' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    out.push(Token::Ne);
                } else {
                    return Err(Error::UnexpectedChar { found: '!', offset });
                }
            }
            '<' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    out.push(Token::Le);
                } else {
                    out.push(Token::Lt);
                }
            }
            '>' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some('=') {
                    chars.next();
                    out.push(Token::Ge);
                } else {
                    out.push(Token::Gt);
                }
            }
            '+' => {
                chars.next();
                out.push(Token::Plus);
            }
            '-' => {
                chars.next();
                out.push(Token::Minus);
            }
            ':' => {
                chars.next();
                if chars.peek().map(|&(_, c)| c) == Some(':') {
                    chars.next();
                    out.push(Token::ColonColon);
                } else {
                    return Err(Error::UnexpectedChar { found: ':', offset });
                }
            }
            '"' | '\'' => {
                let quote = c;
                chars.next();
                let mut lit = String::new();
                loop {
                    match chars.next() {
                        Some((_, c)) if c == quote => break,
                        Some((_, c)) => lit.push(c),
                        None => return Err(Error::UnterminatedLiteral),
                    }
                }
                out.push(Token::Literal(lit));
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while matches!(chars.peek(), Some(&(_, d)) if d.is_ascii_digit() || d == '.') {
                    text.push(chars.next().unwrap().1);
                }
                let n = text
                    .parse::<f64>()
                    .map_err(|_| Error::BadNumber { text: text.clone() })?;
                out.push(Token::Number(n));
            }
            c if is_name_start(c) => {
                let mut name = String::new();
                name.push(c);
                chars.next();
                loop {
                    match chars.peek() {
                        Some(&(_, d)) if is_name_start(d) || d.is_ascii_digit() => {
                            name.push(d);
                            chars.next();
                        }
                        // `-` continues a name only when followed by a
                        // letter/underscore (see function docs).
                        Some(&(i, '-')) => {
                            let next_is_name =
                                input[i + 1..].chars().next().is_some_and(is_name_start);
                            if next_is_name {
                                name.push('-');
                                chars.next();
                            } else {
                                break;
                            }
                        }
                        _ => break,
                    }
                }
                out.push(Token::Name(name));
            }
            _ => return Err(Error::UnexpectedChar { found: c, offset }),
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_path() {
        assert_eq!(
            tokenize("hotel/confstat").unwrap(),
            vec![
                Token::Name("hotel".into()),
                Token::Slash,
                Token::Name("confstat".into())
            ]
        );
    }

    #[test]
    fn tokenizes_parent_steps() {
        assert_eq!(
            tokenize("../a/../b").unwrap(),
            vec![
                Token::DotDot,
                Token::Slash,
                Token::Name("a".into()),
                Token::Slash,
                Token::DotDot,
                Token::Slash,
                Token::Name("b".into())
            ]
        );
    }

    #[test]
    fn tokenizes_predicate_with_comparison() {
        assert_eq!(
            tokenize("[@sum<200]").unwrap(),
            vec![
                Token::LBracket,
                Token::At,
                Token::Name("sum".into()),
                Token::Lt,
                Token::Number(200.0),
                Token::RBracket
            ]
        );
    }

    #[test]
    fn hyphen_names_vs_subtraction() {
        assert_eq!(
            tokenize("hotel_available").unwrap(),
            vec![Token::Name("hotel_available".into())]
        );
        assert_eq!(
            tokenize("result-metro").unwrap(),
            vec![Token::Name("result-metro".into())]
        );
        assert_eq!(
            tokenize("$idx - 1").unwrap(),
            vec![
                Token::Dollar,
                Token::Name("idx".into()),
                Token::Minus,
                Token::Number(1.0)
            ]
        );
        assert_eq!(
            tokenize("$idx-1").unwrap(),
            vec![
                Token::Dollar,
                Token::Name("idx".into()),
                Token::Minus,
                Token::Number(1.0)
            ]
        );
    }

    #[test]
    fn tokenizes_operators() {
        assert_eq!(
            tokenize("<= >= != = < >").unwrap(),
            vec![
                Token::Le,
                Token::Ge,
                Token::Ne,
                Token::Eq,
                Token::Lt,
                Token::Gt
            ]
        );
    }

    #[test]
    fn tokenizes_literals_both_quotes() {
        assert_eq!(
            tokenize("'chicago' \"nyc\"").unwrap(),
            vec![
                Token::Literal("chicago".into()),
                Token::Literal("nyc".into())
            ]
        );
    }

    #[test]
    fn tokenizes_axis_syntax() {
        assert_eq!(
            tokenize("self::node").unwrap(),
            vec![
                Token::Name("self".into()),
                Token::ColonColon,
                Token::Name("node".into())
            ]
        );
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(matches!(
            tokenize("a ! b"),
            Err(Error::UnexpectedChar { found: '!', .. })
        ));
        assert!(matches!(
            tokenize("a : b"),
            Err(Error::UnexpectedChar { .. })
        ));
        assert!(matches!(tokenize("'abc"), Err(Error::UnterminatedLiteral)));
    }

    #[test]
    fn tokenizes_decimal_numbers() {
        assert_eq!(tokenize("3.25").unwrap(), vec![Token::Number(3.25)]);
        assert_eq!(tokenize(".5").unwrap(), vec![Token::Number(0.5)]);
    }
}
