//! Abstract syntax for the XPath dialect.
//!
//! The same [`PathExpr`] type serves select expressions and match patterns;
//! patterns are additionally validated by [`crate::parser::parse_pattern`]
//! to contain only forward axes (child / descendant / attribute), as the
//! paper requires (§2.2).

use std::fmt;

/// Navigation axis of a location step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// `child::` (the default axis).
    Child,
    /// `parent::` — written `..` in abbreviated form.
    Parent,
    /// `self::` — written `.` in abbreviated form.
    SelfAxis,
    /// `descendant::`.
    Descendant,
    /// `descendant-or-self::node()` — what `//` abbreviates.
    DescendantOrSelf,
    /// `attribute::` — written `@name`.
    Attribute,
}

impl Axis {
    /// The axis name in unabbreviated XPath syntax.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Parent => "parent",
            Axis::SelfAxis => "self",
            Axis::Descendant => "descendant",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::Attribute => "attribute",
        }
    }
}

/// Node test of a location step.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeTest {
    /// A name test, e.g. `hotel`.
    Name(String),
    /// The wildcard test `*` (any element; any attribute on the
    /// attribute axis).
    Wildcard,
}

impl NodeTest {
    /// True if this test accepts the given element/attribute name.
    pub fn accepts(&self, name: &str) -> bool {
        match self {
            NodeTest::Name(n) => n == name,
            NodeTest::Wildcard => true,
        }
    }
}

/// One location step: `axis::test[pred1][pred2]...`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Navigation axis.
    pub axis: Axis,
    /// Node test applied to candidates on the axis.
    pub test: NodeTest,
    /// Zero or more predicates, applied conjunctively.
    pub predicates: Vec<Expr>,
}

impl Step {
    /// A child step with a name test and no predicates.
    pub fn child(name: impl Into<String>) -> Step {
        Step {
            axis: Axis::Child,
            test: NodeTest::Name(name.into()),
            predicates: Vec::new(),
        }
    }

    /// A parent step (`..`).
    pub fn parent() -> Step {
        Step {
            axis: Axis::Parent,
            test: NodeTest::Wildcard,
            predicates: Vec::new(),
        }
    }

    /// A self step (`.`).
    pub fn self_step() -> Step {
        Step {
            axis: Axis::SelfAxis,
            test: NodeTest::Wildcard,
            predicates: Vec::new(),
        }
    }
}

/// A location path: optional leading `/` plus a sequence of steps.
///
/// The empty relative path (no steps) denotes the context node itself; the
/// empty absolute path denotes the document root (pattern `/`).
#[derive(Debug, Clone, PartialEq)]
pub struct PathExpr {
    /// True if the path starts at the document root (`/...`).
    pub absolute: bool,
    /// The location steps, outermost first.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// The root pattern `/`.
    pub fn root() -> PathExpr {
        PathExpr {
            absolute: true,
            steps: Vec::new(),
        }
    }

    /// A relative path of child steps with the given names.
    pub fn children(names: &[&str]) -> PathExpr {
        PathExpr {
            absolute: false,
            steps: names.iter().map(|n| Step::child(*n)).collect(),
        }
    }

    /// True if any step (or nested predicate path) uses the given axis.
    pub fn uses_axis(&self, axis: Axis) -> bool {
        self.steps
            .iter()
            .any(|s| s.axis == axis || s.predicates.iter().any(|p| p.uses_axis(axis)))
    }

    /// True if any step carries a predicate (incl. nested paths).
    pub fn has_predicates(&self) -> bool {
        self.steps
            .iter()
            .any(|s| !s.predicates.is_empty() || s.predicates.iter().any(Expr::has_path_predicates))
    }
}

/// Comparison and arithmetic operators usable in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
}

impl BinOp {
    /// The operator in XPath source syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
        }
    }

    /// True for `= != < <= > >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// A predicate (or general) expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A path used as a value or existence test, e.g. `../confstat` or `@sum`.
    Path(PathExpr),
    /// A string literal.
    Literal(String),
    /// A numeric literal.
    Number(f64),
    /// A variable reference `$name`.
    Var(String),
    /// Binary operation (comparison or arithmetic).
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Conjunction `a and b`.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction `a or b`.
    Or(Box<Expr>, Box<Expr>),
    /// Negation `not(a)`.
    Not(Box<Expr>),
}

impl Expr {
    /// True if this expression contains a nested path with its own
    /// predicates (used to detect constructs outside `XSLT_basic`).
    pub fn has_path_predicates(&self) -> bool {
        match self {
            Expr::Path(p) => p.has_predicates(),
            Expr::Binary { lhs, rhs, .. } => lhs.has_path_predicates() || rhs.has_path_predicates(),
            Expr::And(a, b) | Expr::Or(a, b) => a.has_path_predicates() || b.has_path_predicates(),
            Expr::Not(a) => a.has_path_predicates(),
            _ => false,
        }
    }

    /// True if this expression references the given axis anywhere.
    pub fn uses_axis(&self, axis: Axis) -> bool {
        match self {
            Expr::Path(p) => p.uses_axis(axis),
            Expr::Binary { lhs, rhs, .. } => lhs.uses_axis(axis) || rhs.uses_axis(axis),
            Expr::And(a, b) | Expr::Or(a, b) => a.uses_axis(axis) || b.uses_axis(axis),
            Expr::Not(a) => a.uses_axis(axis),
            _ => false,
        }
    }

    /// True if this expression references any `$variable`.
    pub fn uses_variables(&self) -> bool {
        match self {
            Expr::Var(_) => true,
            Expr::Path(p) => p
                .steps
                .iter()
                .any(|s| s.predicates.iter().any(Expr::uses_variables)),
            Expr::Binary { lhs, rhs, .. } => lhs.uses_variables() || rhs.uses_variables(),
            Expr::And(a, b) | Expr::Or(a, b) => a.uses_variables() || b.uses_variables(),
            Expr::Not(a) => a.uses_variables(),
            _ => false,
        }
    }
}

// ---------------------------------------------------------------------------
// Display: round-trippable source rendering.
// ---------------------------------------------------------------------------

impl fmt::Display for PathExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            write!(f, "/")?;
        }
        let mut first = true;
        for step in &self.steps {
            if !first {
                write!(f, "/")?;
            }
            first = false;
            write!(f, "{step}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.axis, &self.test) {
            (Axis::Child, NodeTest::Name(n)) => write!(f, "{n}")?,
            (Axis::Child, NodeTest::Wildcard) => write!(f, "*")?,
            (Axis::Parent, NodeTest::Wildcard) if self.predicates.is_empty() => write!(f, "..")?,
            (Axis::SelfAxis, NodeTest::Wildcard) => write!(f, ".")?,
            (Axis::Attribute, NodeTest::Name(n)) => write!(f, "@{n}")?,
            (Axis::Attribute, NodeTest::Wildcard) => write!(f, "@*")?,
            (axis, NodeTest::Name(n)) => write!(f, "{}::{n}", axis.name())?,
            (axis, NodeTest::Wildcard) => write!(f, "{}::*", axis.name())?,
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(self, 0, f)
    }
}

/// Precedence levels for parenthesization: or < and < comparison <
/// additive < multiplicative.
fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Or(..) => 1,
        Expr::And(..) => 2,
        Expr::Binary { op, .. } if op.is_comparison() => 3,
        Expr::Binary {
            op: BinOp::Add | BinOp::Sub,
            ..
        } => 4,
        Expr::Binary { .. } => 5,
        _ => 6,
    }
}

fn write_expr(e: &Expr, parent_prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let my = expr_prec(e);
    let parens = my < parent_prec;
    if parens {
        write!(f, "(")?;
    }
    match e {
        Expr::Path(p) => write!(f, "{p}")?,
        Expr::Literal(s) => {
            // XPath convention: prefer single quotes (friendlier inside
            // XML attribute values), fall back to double quotes.
            if s.contains('\'') {
                write!(f, "\"{s}\"")?
            } else {
                write!(f, "'{s}'")?
            }
        }
        Expr::Number(n) => {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                write!(f, "{}", *n as i64)?
            } else {
                write!(f, "{n}")?
            }
        }
        Expr::Var(v) => write!(f, "${v}")?,
        Expr::Binary { op, lhs, rhs } => {
            write_expr(lhs, my, f)?;
            write!(f, " {} ", op.symbol())?;
            write_expr(rhs, my + 1, f)?;
        }
        Expr::And(a, b) => {
            write_expr(a, my, f)?;
            write!(f, " and ")?;
            write_expr(b, my + 1, f)?;
        }
        Expr::Or(a, b) => {
            write_expr(a, my, f)?;
            write!(f, " or ")?;
            write_expr(b, my + 1, f)?;
        }
        Expr::Not(a) => {
            write!(f, "not(")?;
            write_expr(a, 0, f)?;
            write!(f, ")")?;
        }
    }
    if parens {
        write!(f, ")")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_simple_paths() {
        assert_eq!(
            PathExpr::children(&["hotel", "confstat"]).to_string(),
            "hotel/confstat"
        );
        assert_eq!(PathExpr::root().to_string(), "/");
    }

    #[test]
    fn display_abbreviated_steps() {
        let p = PathExpr {
            absolute: false,
            steps: vec![
                Step::parent(),
                Step::child("hotel_available"),
                Step::parent(),
                Step::child("confroom"),
            ],
        };
        assert_eq!(p.to_string(), "../hotel_available/../confroom");
    }

    #[test]
    fn display_predicates() {
        let p = PathExpr {
            absolute: false,
            steps: vec![Step {
                axis: Axis::SelfAxis,
                test: NodeTest::Wildcard,
                predicates: vec![Expr::Binary {
                    op: BinOp::Lt,
                    lhs: Box::new(Expr::Path(PathExpr {
                        absolute: false,
                        steps: vec![Step {
                            axis: Axis::Attribute,
                            test: NodeTest::Name("sum".into()),
                            predicates: vec![],
                        }],
                    })),
                    rhs: Box::new(Expr::Number(200.0)),
                }],
            }],
        };
        assert_eq!(p.to_string(), ".[@sum < 200]");
    }

    #[test]
    fn uses_axis_detects_nested() {
        let p = PathExpr {
            absolute: false,
            steps: vec![Step {
                axis: Axis::Child,
                test: NodeTest::Name("a".into()),
                predicates: vec![Expr::Path(PathExpr {
                    absolute: false,
                    steps: vec![Step::parent()],
                })],
            }],
        };
        assert!(p.uses_axis(Axis::Parent));
        assert!(!p.uses_axis(Axis::Descendant));
    }

    #[test]
    fn node_test_accepts() {
        assert!(NodeTest::Name("hotel".into()).accepts("hotel"));
        assert!(!NodeTest::Name("hotel".into()).accepts("metro"));
        assert!(NodeTest::Wildcard.accepts("anything"));
    }
}
