//! Evaluation of the XPath dialect over `xvc-xml` documents.
//!
//! This implements the `SELECT` function of the paper's processing model
//! (§2.2.1): given a document context node and a select expression, produce
//! the set of selected nodes. General expressions (predicates, `xsl:if`
//! tests) evaluate to [`Value`]s with XPath-1.0-style coercions.

use std::collections::HashMap;

use xvc_xml::{Document, NodeId};

use crate::ast::{Axis, BinOp, Expr, NodeTest, PathExpr, Step};
use crate::error::{Error, Result};

/// Variable bindings in scope during evaluation (`xsl:param`s, §5.3).
pub type VarBindings = HashMap<String, Value>;

/// An XPath value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A set of element (or root) nodes, in document order, deduplicated.
    Nodes(Vec<NodeId>),
    /// A set of attribute string values (result of an attribute step).
    Strs(Vec<String>),
    /// A number.
    Num(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// XPath boolean coercion: non-empty node/string sets, non-zero
    /// non-NaN numbers and non-empty strings are true.
    pub fn to_bool(&self) -> bool {
        match self {
            Value::Nodes(ns) => !ns.is_empty(),
            Value::Strs(ss) => !ss.is_empty(),
            Value::Num(n) => *n != 0.0 && !n.is_nan(),
            Value::Str(s) => !s.is_empty(),
            Value::Bool(b) => *b,
        }
    }

    /// XPath string coercion: first node's string-value / first string /
    /// formatted number.
    pub fn to_str(&self, doc: &Document) -> String {
        match self {
            Value::Nodes(ns) => ns.first().map(|&n| doc.text_content(n)).unwrap_or_default(),
            Value::Strs(ss) => ss.first().cloned().unwrap_or_default(),
            Value::Num(n) => format_number(*n),
            Value::Str(s) => s.clone(),
            Value::Bool(b) => b.to_string(),
        }
    }

    /// XPath number coercion (NaN when not numeric).
    pub fn to_num(&self, doc: &Document) -> f64 {
        match self {
            Value::Num(n) => *n,
            Value::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            other => other.to_str(doc).trim().parse::<f64>().unwrap_or(f64::NAN),
        }
    }
}

/// Formats a number the XPath way: integers without a decimal point.
pub fn format_number(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Evaluates a location path from `ctx`, returning the selected node set.
///
/// Errors with [`Error::TypeMismatch`] if the path ends on the attribute
/// axis — apply-templates selects must yield nodes, not atomic values
/// (Definition 3).
pub fn eval_path(
    doc: &Document,
    ctx: NodeId,
    path: &PathExpr,
    vars: &VarBindings,
) -> Result<Vec<NodeId>> {
    match eval_path_value(doc, ctx, path, vars)? {
        Value::Nodes(ns) => Ok(ns),
        _ => Err(Error::TypeMismatch {
            reason: format!("path {path} selects attribute values, not nodes"),
        }),
    }
}

/// Evaluates a location path to a [`Value`] (nodes, or attribute strings if
/// the final step is on the attribute axis).
pub fn eval_path_value(
    doc: &Document,
    ctx: NodeId,
    path: &PathExpr,
    vars: &VarBindings,
) -> Result<Value> {
    let mut current: Vec<NodeId> = if path.absolute {
        vec![doc.root()]
    } else {
        vec![ctx]
    };
    for (i, step) in path.steps.iter().enumerate() {
        let last = i + 1 == path.steps.len();
        if step.axis == Axis::Attribute {
            if !last {
                return Err(Error::TypeMismatch {
                    reason: "attribute step must be the final step".into(),
                });
            }
            let mut out = Vec::new();
            for &n in &current {
                match &step.test {
                    NodeTest::Name(name) => {
                        if let Some(v) = doc.attr(n, name) {
                            out.push(v.to_owned());
                        }
                    }
                    NodeTest::Wildcard => {
                        out.extend(doc.attrs(n).iter().map(|(_, v)| v.clone()));
                    }
                }
            }
            return Ok(Value::Strs(out));
        }
        let mut next: Vec<NodeId> = Vec::new();
        for &n in &current {
            collect_axis(doc, n, step, &mut next);
        }
        dedup_preserving_order(&mut next);
        // Apply predicates with each candidate as the context node.
        let mut filtered = Vec::with_capacity(next.len());
        for cand in next {
            let mut keep = true;
            for pred in &step.predicates {
                if !eval_expr(doc, cand, pred, vars)?.to_bool() {
                    keep = false;
                    break;
                }
            }
            if keep {
                filtered.push(cand);
            }
        }
        current = filtered;
    }
    Ok(Value::Nodes(current))
}

fn collect_axis(doc: &Document, n: NodeId, step: &Step, out: &mut Vec<NodeId>) {
    match step.axis {
        Axis::Child => {
            for c in doc.child_elements(n) {
                if test_accepts(doc, c, &step.test) {
                    out.push(c);
                }
            }
        }
        Axis::Parent => {
            if let Some(p) = doc.parent(n) {
                if matches!(step.test, NodeTest::Wildcard) || test_accepts(doc, p, &step.test) {
                    out.push(p);
                }
            }
        }
        Axis::SelfAxis => {
            if matches!(step.test, NodeTest::Wildcard) || test_accepts(doc, n, &step.test) {
                out.push(n);
            }
        }
        Axis::Descendant => {
            for d in doc.descendants(n) {
                if doc.is_element(d) && test_accepts(doc, d, &step.test) {
                    out.push(d);
                }
            }
        }
        Axis::DescendantOrSelf => {
            for d in doc.descendants_or_self(n) {
                if doc.is_element(d) && test_accepts(doc, d, &step.test) {
                    out.push(d);
                }
            }
        }
        Axis::Attribute => unreachable!("handled by caller"),
    }
}

fn test_accepts(doc: &Document, n: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::Wildcard => doc.is_element(n),
        NodeTest::Name(name) => doc.is_element_named(n, name),
    }
}

fn dedup_preserving_order(v: &mut Vec<NodeId>) {
    let mut seen = std::collections::HashSet::new();
    v.retain(|id| seen.insert(*id));
}

/// Evaluates a general expression with `ctx` as the context node.
pub fn eval_expr(doc: &Document, ctx: NodeId, expr: &Expr, vars: &VarBindings) -> Result<Value> {
    match expr {
        Expr::Path(p) => eval_path_value(doc, ctx, p, vars),
        Expr::Literal(s) => Ok(Value::Str(s.clone())),
        Expr::Number(n) => Ok(Value::Num(*n)),
        Expr::Var(name) => vars
            .get(name)
            .cloned()
            .ok_or_else(|| Error::UnboundVariable { name: name.clone() }),
        Expr::Binary { op, lhs, rhs } => {
            let l = eval_expr(doc, ctx, lhs, vars)?;
            let r = eval_expr(doc, ctx, rhs, vars)?;
            if op.is_comparison() {
                Ok(Value::Bool(compare(doc, *op, &l, &r)))
            } else {
                let ln = l.to_num(doc);
                let rn = r.to_num(doc);
                let v = match op {
                    BinOp::Add => ln + rn,
                    BinOp::Sub => ln - rn,
                    BinOp::Mul => ln * rn,
                    BinOp::Div => ln / rn,
                    BinOp::Mod => ln % rn,
                    _ => unreachable!("comparisons handled above"),
                };
                Ok(Value::Num(v))
            }
        }
        Expr::And(a, b) => {
            let av = eval_expr(doc, ctx, a, vars)?.to_bool();
            // Short-circuit.
            if !av {
                return Ok(Value::Bool(false));
            }
            Ok(Value::Bool(eval_expr(doc, ctx, b, vars)?.to_bool()))
        }
        Expr::Or(a, b) => {
            let av = eval_expr(doc, ctx, a, vars)?.to_bool();
            if av {
                return Ok(Value::Bool(true));
            }
            Ok(Value::Bool(eval_expr(doc, ctx, b, vars)?.to_bool()))
        }
        Expr::Not(a) => Ok(Value::Bool(!eval_expr(doc, ctx, a, vars)?.to_bool())),
    }
}

/// Convenience: evaluate an expression as a boolean (`xsl:if` test).
pub fn eval_expr_bool(
    doc: &Document,
    ctx: NodeId,
    expr: &Expr,
    vars: &VarBindings,
) -> Result<bool> {
    Ok(eval_expr(doc, ctx, expr, vars)?.to_bool())
}

/// Convenience: evaluate an expression as a string (`xsl:value-of`).
pub fn eval_string(doc: &Document, ctx: NodeId, expr: &Expr, vars: &VarBindings) -> Result<String> {
    Ok(eval_expr(doc, ctx, expr, vars)?.to_str(doc))
}

/// XPath 1.0 comparison: if either side is a set, the comparison is
/// existential over its members; numeric comparison is used when both sides
/// coerce to numbers, string comparison otherwise.
fn compare(doc: &Document, op: BinOp, l: &Value, r: &Value) -> bool {
    let ls = scalars(doc, l);
    let rs = scalars(doc, r);
    ls.iter()
        .any(|a| rs.iter().any(|b| compare_scalar(op, a, b)))
}

fn scalars(doc: &Document, v: &Value) -> Vec<String> {
    match v {
        Value::Nodes(ns) => ns.iter().map(|&n| doc.text_content(n)).collect(),
        Value::Strs(ss) => ss.clone(),
        Value::Num(n) => vec![format_number(*n)],
        Value::Str(s) => vec![s.clone()],
        Value::Bool(b) => vec![b.to_string()],
    }
}

fn compare_scalar(op: BinOp, a: &str, b: &str) -> bool {
    let an = a.trim().parse::<f64>();
    let bn = b.trim().parse::<f64>();
    match (an, bn) {
        (Ok(x), Ok(y)) => match op {
            BinOp::Eq => x == y,
            BinOp::Ne => x != y,
            BinOp::Lt => x < y,
            BinOp::Le => x <= y,
            BinOp::Gt => x > y,
            BinOp::Ge => x >= y,
            _ => unreachable!(),
        },
        _ => match op {
            BinOp::Eq => a == b,
            BinOp::Ne => a != b,
            // Relational operators on non-numbers are false in XPath 1.0
            // (both sides are converted to numbers, yielding NaN).
            _ => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_path};
    use xvc_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<metro metroname="chicago">
                 <hotel hotelname="palmer" starrating="5">
                   <confstat sum="150"/>
                   <hotel_available count="12"/>
                   <confroom capacity="300"/>
                   <confroom capacity="100"/>
                 </hotel>
                 <hotel hotelname="drake" starrating="4">
                   <confstat sum="250"/>
                 </hotel>
               </metro>"#,
        )
        .unwrap()
    }

    fn sel(d: &Document, ctx: NodeId, path: &str) -> Vec<NodeId> {
        eval_path(d, ctx, &parse_path(path).unwrap(), &VarBindings::new()).unwrap()
    }

    #[test]
    fn child_steps() {
        let d = doc();
        let hotels = sel(&d, d.root(), "metro/hotel");
        assert_eq!(hotels.len(), 2);
        let stats = sel(&d, d.root(), "metro/hotel/confstat");
        assert_eq!(stats.len(), 2);
    }

    #[test]
    fn parent_steps() {
        let d = doc();
        let stat = sel(&d, d.root(), "metro/hotel/confstat")[0];
        let rooms = sel(&d, stat, "../hotel_available/../confroom");
        assert_eq!(rooms.len(), 2);
        // The second hotel has no hotel_available, so from its confstat the
        // same path yields nothing.
        let stat2 = sel(&d, d.root(), "metro/hotel/confstat")[1];
        assert!(sel(&d, stat2, "../hotel_available/../confroom").is_empty());
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        assert_eq!(sel(&d, d.root(), "//confroom").len(), 2);
        assert_eq!(sel(&d, d.root(), "metro//confstat").len(), 2);
    }

    #[test]
    fn self_axis_with_predicate() {
        let d = doc();
        let stats = sel(&d, d.root(), "metro/hotel/confstat");
        assert_eq!(sel(&d, stats[0], ".[@sum<200]").len(), 1);
        assert_eq!(sel(&d, stats[1], ".[@sum<200]").len(), 0);
    }

    #[test]
    fn attribute_value_path() {
        let d = doc();
        let hotel = sel(&d, d.root(), "metro/hotel")[0];
        let v = eval_path_value(
            &d,
            hotel,
            &parse_path("@hotelname").unwrap(),
            &VarBindings::new(),
        )
        .unwrap();
        assert_eq!(v, Value::Strs(vec!["palmer".into()]));
    }

    #[test]
    fn attribute_path_rejected_as_node_select() {
        let d = doc();
        let hotel = sel(&d, d.root(), "metro/hotel")[0];
        assert!(matches!(
            eval_path(
                &d,
                hotel,
                &parse_path("@hotelname").unwrap(),
                &VarBindings::new()
            ),
            Err(Error::TypeMismatch { .. })
        ));
    }

    #[test]
    fn predicates_with_comparisons() {
        let d = doc();
        assert_eq!(sel(&d, d.root(), "metro/hotel[@starrating>4]").len(), 1);
        assert_eq!(sel(&d, d.root(), "metro/hotel[@starrating>=4]").len(), 2);
        assert_eq!(
            sel(&d, d.root(), "metro/hotel[@hotelname='drake']").len(),
            1
        );
        assert_eq!(
            sel(&d, d.root(), "metro/hotel/confroom[@capacity>250]").len(),
            1
        );
    }

    #[test]
    fn predicates_with_nested_paths() {
        let d = doc();
        // Hotels that have an available-count child with count > 10.
        assert_eq!(
            sel(&d, d.root(), "metro/hotel[hotel_available[@count>10]]").len(),
            1
        );
        // Existence test without comparison.
        assert_eq!(sel(&d, d.root(), "metro/hotel[confroom]").len(), 1);
        assert_eq!(sel(&d, d.root(), "metro/hotel[not(confroom)]").len(), 1);
    }

    #[test]
    fn the_paper_figure17_predicate_path() {
        let d = doc();
        let stats = sel(&d, d.root(), "metro/hotel/confstat");
        let path =
            ".[@sum<200]/../hotel_available/../confroom[../confstat[@sum>100]][@capacity>250]";
        let rooms = sel(&d, stats[0], path);
        assert_eq!(rooms.len(), 1);
        assert_eq!(d.attr(rooms[0], "capacity"), Some("300"));
    }

    #[test]
    fn variables_in_predicates() {
        let d = doc();
        let mut vars = VarBindings::new();
        vars.insert("idx".into(), Value::Num(200.0));
        let stats = eval_path(
            &d,
            d.root(),
            &parse_path("metro/hotel/confstat[@sum<$idx]").unwrap(),
            &vars,
        )
        .unwrap();
        assert_eq!(stats.len(), 1);
    }

    #[test]
    fn unbound_variable_errors() {
        let d = doc();
        assert!(matches!(
            eval_path(
                &d,
                d.root(),
                &parse_path("metro[@x=$nope]").unwrap(),
                &VarBindings::new()
            ),
            Err(Error::UnboundVariable { .. })
        ));
    }

    #[test]
    fn arithmetic_and_boolean_exprs() {
        let d = doc();
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(
            eval_expr(&d, d.root(), &e, &VarBindings::new()).unwrap(),
            Value::Num(7.0)
        );
        let e = parse_expr("$idx - 1").unwrap();
        let mut vars = VarBindings::new();
        vars.insert("idx".into(), Value::Num(10.0));
        assert_eq!(eval_expr(&d, d.root(), &e, &vars).unwrap(), Value::Num(9.0));
        let e = parse_expr("$idx<=1").unwrap();
        assert_eq!(
            eval_expr(&d, d.root(), &e, &vars).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn existential_set_comparison() {
        let d = doc();
        // Some confroom has capacity > 250 — existential over the set.
        let e = parse_expr("metro/hotel/confroom/@capacity > 250").unwrap();
        assert!(eval_expr_bool(&d, d.root(), &e, &VarBindings::new()).unwrap());
        let e = parse_expr("metro/hotel/confroom/@capacity > 500").unwrap();
        assert!(!eval_expr_bool(&d, d.root(), &e, &VarBindings::new()).unwrap());
    }

    #[test]
    fn string_vs_numeric_equality() {
        let d = doc();
        let e = parse_expr("@metroname = 'chicago'").unwrap();
        let metro = sel(&d, d.root(), "metro")[0];
        assert!(eval_expr_bool(&d, metro, &e, &VarBindings::new()).unwrap());
        // Numeric comparison when both sides are numeric: "5" = 5.0.
        let hotel = sel(&d, d.root(), "metro/hotel")[0];
        let e = parse_expr("@starrating = 5.0").unwrap();
        assert!(eval_expr_bool(&d, hotel, &e, &VarBindings::new()).unwrap());
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(5.0), "5");
        assert_eq!(format_number(5.5), "5.5");
        assert_eq!(format_number(-3.0), "-3");
    }

    #[test]
    fn deduplicates_nodes() {
        let d = doc();
        let hotel = sel(&d, d.root(), "metro/hotel")[0];
        // Going down then up twice yields the hotel once.
        let back = sel(&d, hotel, "confroom/..");
        assert_eq!(back.len(), 1);
    }
}
