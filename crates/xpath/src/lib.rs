//! # `xvc-xpath` — the XPath dialect of the SIGMOD'03 composition paper
//!
//! XSLT uses XPath in two roles, and this crate models both:
//!
//! * **select expressions** (`select=` of `<xsl:apply-templates>` /
//!   `<xsl:value-of>`) — location paths whose results are node sets, e.g.
//!   `hotel/confstat` or `../hotel_available/../confroom`;
//! * **match patterns** (`match=` of `<xsl:template>`) — path patterns with
//!   *suffix* semantics per Wadler's formal semantics \[17\]: a pattern
//!   matches a node if it matches some suffix of the node's incoming path.
//!
//! Both share the same [`ast::PathExpr`] representation. Steps may carry
//! predicates (`§5.1 XSLT_expression`): relational tests on attributes,
//! nested relative paths (existence tests), `and`/`or`/`not(...)`, and
//! variable references (`$idx`, needed for the §5.3 recursion examples).
//!
//! The [`eval`] module evaluates expressions over [`xvc_xml::Document`]s —
//! this powers the reference XSLT interpreter in `xvc-xslt`. The *abstract*
//! evaluation over schema-tree queries (`SELECTQ` / `MATCHQ`) lives in
//! `xvc-core` and reuses the ASTs defined here.

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod eval;
pub mod lexer;
pub mod parser;
pub mod pattern;

pub use ast::{Axis, BinOp, Expr, NodeTest, PathExpr, Step};
pub use error::{Error, Result};
pub use eval::{
    eval_expr, eval_expr_bool, eval_path, eval_path_value, eval_string, Value, VarBindings,
};
pub use parser::{parse_expr, parse_path, parse_pattern};
pub use pattern::{default_priority, pattern_matches};
