//! Error type for XPath lexing, parsing and evaluation.

use std::fmt;

/// Result alias used throughout `xvc-xpath`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while lexing, parsing or evaluating XPath expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A character the lexer does not recognize.
    UnexpectedChar {
        /// The offending character.
        found: char,
        /// Byte offset in the expression source.
        offset: usize,
    },
    /// The expression ended prematurely.
    UnexpectedEnd {
        /// What the parser expected next.
        expected: &'static str,
    },
    /// A token that is not legal at this position.
    UnexpectedToken {
        /// Rendering of the offending token.
        found: String,
        /// What the parser expected instead.
        expected: &'static str,
    },
    /// Unterminated string literal.
    UnterminatedLiteral,
    /// A malformed number literal.
    BadNumber {
        /// The text that failed to parse.
        text: String,
    },
    /// The expression parsed but extra tokens followed.
    TrailingTokens {
        /// Rendering of the first extra token.
        found: String,
    },
    /// An axis name that this dialect does not support.
    UnsupportedAxis {
        /// The axis as written.
        axis: String,
    },
    /// A function call that this dialect does not support.
    UnsupportedFunction {
        /// The function name.
        name: String,
    },
    /// A variable reference `$name` was not bound at evaluation time.
    UnboundVariable {
        /// The variable name (without `$`).
        name: String,
    },
    /// A pattern used a construct patterns do not allow (e.g. parent axis).
    InvalidPattern {
        /// Human-readable explanation.
        reason: String,
    },
    /// Evaluation needed a node set but got a scalar (or vice versa).
    TypeMismatch {
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnexpectedChar { found, offset } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            Error::UnexpectedEnd { expected } => {
                write!(f, "unexpected end of expression; expected {expected}")
            }
            Error::UnexpectedToken { found, expected } => {
                write!(f, "unexpected token {found}; expected {expected}")
            }
            Error::UnterminatedLiteral => write!(f, "unterminated string literal"),
            Error::BadNumber { text } => write!(f, "malformed number {text:?}"),
            Error::TrailingTokens { found } => {
                write!(f, "trailing tokens after expression, starting at {found}")
            }
            Error::UnsupportedAxis { axis } => write!(f, "unsupported axis {axis:?}"),
            Error::UnsupportedFunction { name } => {
                write!(f, "unsupported function {name}()")
            }
            Error::UnboundVariable { name } => write!(f, "unbound variable ${name}"),
            Error::InvalidPattern { reason } => write!(f, "invalid pattern: {reason}"),
            Error::TypeMismatch { reason } => write!(f, "type mismatch: {reason}"),
        }
    }
}

impl std::error::Error for Error {}
