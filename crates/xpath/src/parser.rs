//! Recursive-descent parser for the XPath dialect.
//!
//! Entry points:
//! * [`parse_path`] — a location path (select expressions);
//! * [`parse_expr`] — a general expression (predicates, `xsl:if` tests,
//!   `xsl:with-param` selects);
//! * [`parse_pattern`] — a match pattern: a path restricted to the child,
//!   descendant and attribute axes (per §2.2 the paper's match patterns
//!   contain only child, descendant (`//`) and attribute axes).

use crate::ast::{Axis, BinOp, Expr, NodeTest, PathExpr, Step};
use crate::error::{Error, Result};
use crate::lexer::{tokenize, Token};

/// Parses a location path, e.g. `../hotel_available/../confroom`.
pub fn parse_path(input: &str) -> Result<PathExpr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let path = p.path()?;
    p.expect_end()?;
    Ok(path)
}

/// Parses a general expression, e.g. `@sum < 200 and ../confstat`.
pub fn parse_expr(input: &str) -> Result<Expr> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_end()?;
    Ok(e)
}

/// Parses a match pattern and validates the pattern restrictions.
pub fn parse_pattern(input: &str) -> Result<PathExpr> {
    let path = parse_path(input)?;
    validate_pattern(&path)?;
    Ok(path)
}

fn validate_pattern(path: &PathExpr) -> Result<()> {
    for (i, step) in path.steps.iter().enumerate() {
        match step.axis {
            Axis::Child | Axis::Descendant | Axis::DescendantOrSelf => {}
            Axis::Attribute if i + 1 == path.steps.len() => {}
            axis => {
                return Err(Error::InvalidPattern {
                    reason: format!(
                        "patterns may only use child, descendant and attribute axes, found {}",
                        axis.name()
                    ),
                })
            }
        }
    }
    Ok(())
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(Error::TrailingTokens {
                found: t.to_string(),
            }),
        }
    }

    // -- paths ------------------------------------------------------------

    fn path(&mut self) -> Result<PathExpr> {
        let mut absolute = false;
        let mut pending_descendant = false;
        if self.eat(&Token::Slash) {
            absolute = true;
        } else if self.eat(&Token::DoubleSlash) {
            absolute = true;
            pending_descendant = true;
        }
        let mut steps = Vec::new();
        // Absolute path `/` with nothing after it is the root pattern.
        if absolute && self.at_path_end() {
            return Ok(PathExpr { absolute, steps });
        }
        loop {
            let mut step = self.step()?;
            if pending_descendant {
                // `//name` abbreviates descendant-or-self::node()/child::name,
                // which selects exactly the `descendant::name` nodes.
                step.axis = match step.axis {
                    Axis::Child => Axis::Descendant,
                    other => other,
                };
            }
            steps.push(step);
            if self.eat(&Token::DoubleSlash) {
                pending_descendant = true;
            } else if self.eat(&Token::Slash) {
                pending_descendant = false;
            } else {
                break;
            }
        }
        Ok(PathExpr { absolute, steps })
    }

    fn at_path_end(&self) -> bool {
        !matches!(
            self.peek(),
            Some(Token::Name(_) | Token::Dot | Token::DotDot | Token::At | Token::Star)
        )
    }

    fn step(&mut self) -> Result<Step> {
        let step = match self.peek() {
            Some(Token::Dot) => {
                self.bump();
                Step {
                    axis: Axis::SelfAxis,
                    test: NodeTest::Wildcard,
                    predicates: Vec::new(),
                }
            }
            Some(Token::DotDot) => {
                self.bump();
                Step {
                    axis: Axis::Parent,
                    test: NodeTest::Wildcard,
                    predicates: Vec::new(),
                }
            }
            Some(Token::At) => {
                self.bump();
                let test = self.node_test()?;
                Step {
                    axis: Axis::Attribute,
                    test,
                    predicates: Vec::new(),
                }
            }
            Some(Token::Star) => {
                self.bump();
                Step {
                    axis: Axis::Child,
                    test: NodeTest::Wildcard,
                    predicates: Vec::new(),
                }
            }
            Some(Token::Name(_)) => {
                // Either `axis::test` or a plain child name test.
                if self.peek2() == Some(&Token::ColonColon) {
                    let axis_name = match self.bump() {
                        Some(Token::Name(n)) => n,
                        _ => unreachable!("peeked a name"),
                    };
                    self.bump(); // ::
                    let axis = match axis_name.as_str() {
                        "child" => Axis::Child,
                        "parent" => Axis::Parent,
                        "self" => Axis::SelfAxis,
                        "descendant" => Axis::Descendant,
                        "descendant-or-self" => Axis::DescendantOrSelf,
                        "attribute" => Axis::Attribute,
                        other => {
                            return Err(Error::UnsupportedAxis {
                                axis: other.to_owned(),
                            })
                        }
                    };
                    // The node test may be omitted when predicates follow
                    // (the paper writes `self::[@count>50]` in Figure 25).
                    let test = match self.peek() {
                        Some(Token::LBracket)
                        | None
                        | Some(Token::Slash)
                        | Some(Token::DoubleSlash) => NodeTest::Wildcard,
                        _ => self.node_test()?,
                    };
                    Step {
                        axis,
                        test,
                        predicates: Vec::new(),
                    }
                } else {
                    let name = match self.bump() {
                        Some(Token::Name(n)) => n,
                        _ => unreachable!("peeked a name"),
                    };
                    Step {
                        axis: Axis::Child,
                        test: NodeTest::Name(name),
                        predicates: Vec::new(),
                    }
                }
            }
            Some(t) => {
                return Err(Error::UnexpectedToken {
                    found: t.to_string(),
                    expected: "a location step",
                })
            }
            None => {
                return Err(Error::UnexpectedEnd {
                    expected: "a location step",
                })
            }
        };
        let mut step = step;
        while self.eat(&Token::LBracket) {
            let pred = self.expr()?;
            if !self.eat(&Token::RBracket) {
                return match self.peek() {
                    Some(t) => Err(Error::UnexpectedToken {
                        found: t.to_string(),
                        expected: "']'",
                    }),
                    None => Err(Error::UnexpectedEnd { expected: "']'" }),
                };
            }
            step.predicates.push(pred);
        }
        Ok(step)
    }

    fn node_test(&mut self) -> Result<NodeTest> {
        match self.bump() {
            Some(Token::Name(n)) => Ok(NodeTest::Name(n)),
            Some(Token::Star) => Ok(NodeTest::Wildcard),
            Some(t) => Err(Error::UnexpectedToken {
                found: t.to_string(),
                expected: "a name test or '*'",
            }),
            None => Err(Error::UnexpectedEnd {
                expected: "a name test",
            }),
        }
    }

    // -- expressions --------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at_keyword("or") {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.cmp_expr()?;
        while self.at_keyword("and") {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            Some(Token::Eq) => BinOp::Eq,
            Some(Token::Ne) => BinOp::Ne,
            Some(Token::Lt) => BinOp::Lt,
            Some(Token::Le) => BinOp::Le,
            Some(Token::Gt) => BinOp::Gt,
            Some(Token::Ge) => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        })
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinOp::Add,
                Some(Token::Minus) => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                // `*` here is multiplication: a path step would not follow a
                // complete operand.
                Some(Token::Star) => BinOp::Mul,
                Some(Token::Name(n)) if n == "div" => BinOp::Div,
                Some(Token::Name(n)) if n == "mod" => BinOp::Mod,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            let inner = self.unary_expr()?;
            return Ok(Expr::Binary {
                op: BinOp::Sub,
                lhs: Box::new(Expr::Number(0.0)),
                rhs: Box::new(inner),
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek() {
            Some(Token::Literal(_)) => {
                let Some(Token::Literal(s)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Literal(s))
            }
            Some(Token::Number(_)) => {
                let Some(Token::Number(n)) = self.bump() else {
                    unreachable!()
                };
                Ok(Expr::Number(n))
            }
            Some(Token::Dollar) => {
                self.bump();
                match self.bump() {
                    Some(Token::Name(n)) => Ok(Expr::Var(n)),
                    Some(t) => Err(Error::UnexpectedToken {
                        found: t.to_string(),
                        expected: "a variable name after '$'",
                    }),
                    None => Err(Error::UnexpectedEnd {
                        expected: "a variable name after '$'",
                    }),
                }
            }
            Some(Token::LParen) => {
                self.bump();
                let e = self.expr()?;
                if !self.eat(&Token::RParen) {
                    return Err(Error::UnexpectedEnd { expected: "')'" });
                }
                Ok(e)
            }
            Some(Token::Name(n)) if n == "not" && self.peek2() == Some(&Token::LParen) => {
                self.bump();
                self.bump();
                let e = self.expr()?;
                if !self.eat(&Token::RParen) {
                    return Err(Error::UnexpectedEnd { expected: "')'" });
                }
                Ok(Expr::Not(Box::new(e)))
            }
            Some(Token::Name(n)) if self.peek2() == Some(&Token::LParen) => {
                Err(Error::UnsupportedFunction { name: n.clone() })
            }
            Some(
                Token::Name(_)
                | Token::Dot
                | Token::DotDot
                | Token::At
                | Token::Star
                | Token::Slash
                | Token::DoubleSlash,
            ) => {
                let p = self.path()?;
                Ok(Expr::Path(p))
            }
            Some(t) => Err(Error::UnexpectedToken {
                found: t.to_string(),
                expected: "an expression",
            }),
            None => Err(Error::UnexpectedEnd {
                expected: "an expression",
            }),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Name(n)) if n == kw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_select_expressions() {
        // All select expressions appearing in the paper's figures.
        for src in [
            "metro",
            "hotel/confstat",
            "../hotel_available/../confroom",
            ".",
            ".[@sum<200]/../hotel_available/../confroom[../confstat[@sum>100]][@capacity>250]",
            "hotel/hotel_available[@count>10]/metro_available[@count<$idx]",
            "self::[@count>50]/../../..",
            "../metroavail_up",
            "../metroavail_down[@count<$idx]",
            ".[expression]",
        ] {
            parse_path(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn parses_paper_match_patterns() {
        for src in [
            "/",
            "metro",
            "confstat",
            "metro/hotel/confroom",
            "metro[@metroname=\"chicago\"]/hotel/confroom",
            "/metro",
            "metro_available",
        ] {
            parse_pattern(src).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn pattern_rejects_parent_axis() {
        assert!(matches!(
            parse_pattern("../metro"),
            Err(Error::InvalidPattern { .. })
        ));
        assert!(matches!(
            parse_pattern("a/./b"),
            Err(Error::InvalidPattern { .. })
        ));
    }

    #[test]
    fn pattern_allows_descendant() {
        let p = parse_pattern("metro//confroom").unwrap();
        assert_eq!(p.steps[1].axis, Axis::Descendant);
        let p = parse_pattern("//confroom").unwrap();
        assert!(p.absolute);
        assert_eq!(p.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn root_path() {
        let p = parse_path("/").unwrap();
        assert!(p.absolute);
        assert!(p.steps.is_empty());
    }

    #[test]
    fn predicates_attach_to_steps() {
        let p = parse_path("a[@x>1][@y<2]/b").unwrap();
        assert_eq!(p.steps[0].predicates.len(), 2);
        assert_eq!(p.steps[1].predicates.len(), 0);
    }

    #[test]
    fn self_with_predicate_shorthand() {
        let p = parse_path(".[@sum<200]").unwrap();
        assert_eq!(p.steps.len(), 1);
        assert_eq!(p.steps[0].axis, Axis::SelfAxis);
        assert_eq!(p.steps[0].predicates.len(), 1);
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let e = parse_expr("@a = 1 or @b = 2 and @c = 3").unwrap();
        // `and` binds tighter than `or`.
        assert!(matches!(e, Expr::Or(..)));
        let e = parse_expr("1 + 2 * 3").unwrap();
        let Expr::Binary { op, rhs, .. } = e else {
            panic!()
        };
        assert_eq!(op, BinOp::Add);
        assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_not_and_nested_paths() {
        let e = parse_expr("not(@a) and ../confstat[@sum>100]").unwrap();
        assert!(matches!(e, Expr::And(..)));
    }

    #[test]
    fn parses_variable_arithmetic() {
        let e = parse_expr("$idx - 1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Sub, .. }));
        let e = parse_expr("$idx<=1").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Le, .. }));
    }

    #[test]
    fn unary_minus() {
        let e = parse_expr("-5").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Sub, .. }));
    }

    #[test]
    fn rejects_unknown_functions_and_axes() {
        assert!(matches!(
            parse_expr("count(a)"),
            Err(Error::UnsupportedFunction { .. })
        ));
        assert!(matches!(
            parse_path("following-sibling::a"),
            Err(Error::UnsupportedAxis { .. })
        ));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(matches!(
            parse_path("a b"),
            Err(Error::TrailingTokens { .. })
        ));
    }

    #[test]
    fn display_roundtrip() {
        for src in [
            "hotel/confstat",
            "../hotel_available/../confroom",
            "/metro",
            "metro//confroom",
            ".",
        ] {
            let p = parse_path(src).unwrap();
            let p2 = parse_path(&p.to_string()).unwrap();
            assert_eq!(p, p2, "{src}");
        }
    }
}
