//! Match-pattern semantics (the paper's `MATCH` function, §2.2.1).
//!
//! Following Wadler's formal semantics of XSLT patterns \[17\]: a pattern
//! `p1/p2/.../pn` matches a document node `d` if `pn` matches `d` and the
//! preceding steps match a chain of ancestors — i.e. the pattern matches
//! "some suffix of the incoming path from the document root" to `d`.
//! An absolute pattern (`/p1/...`) anchors that chain at the document root,
//! and the bare pattern `/` matches only the root itself.

use xvc_xml::{Document, NodeId};

use crate::ast::{Axis, NodeTest, PathExpr, Step};
use crate::error::{Error, Result};
use crate::eval::{eval_expr, VarBindings};

/// True if `pattern` matches `node` (the paper's `MATCH(dcon, r)`).
pub fn pattern_matches(
    doc: &Document,
    node: NodeId,
    pattern: &PathExpr,
    vars: &VarBindings,
) -> Result<bool> {
    if pattern.steps.is_empty() {
        // Pattern "/" — matches only the document root; a relative empty
        // pattern is degenerate and matches nothing.
        return Ok(pattern.absolute && doc.is_root(node));
    }
    matches_suffix(doc, node, pattern, pattern.steps.len() - 1, vars)
}

/// Checks that steps `0..=idx` of `pattern` match a chain ending at `node`.
fn matches_suffix(
    doc: &Document,
    node: NodeId,
    pattern: &PathExpr,
    idx: usize,
    vars: &VarBindings,
) -> Result<bool> {
    let step = &pattern.steps[idx];
    if !step_accepts(doc, node, step, vars)? {
        return Ok(false);
    }
    if idx == 0 {
        return match (pattern.absolute, step.axis) {
            // `/name...`: the first step's parent must be the root.
            (true, Axis::Child) => Ok(doc.parent(node) == Some(doc.root())),
            // `//name...`: anywhere below the root — always true.
            (true, _) => Ok(true),
            // Relative pattern: suffix semantics, any position is fine.
            (false, _) => Ok(true),
        };
    }
    // Find the node(s) the previous step must match.
    match step.axis {
        Axis::Child => match doc.parent(node) {
            Some(p) => matches_suffix(doc, p, pattern, idx - 1, vars),
            None => Ok(false),
        },
        Axis::Descendant | Axis::DescendantOrSelf => {
            let start = if step.axis == Axis::DescendantOrSelf {
                Some(node)
            } else {
                doc.parent(node)
            };
            let mut cur = start;
            while let Some(n) = cur {
                if matches_suffix(doc, n, pattern, idx - 1, vars)? {
                    return Ok(true);
                }
                cur = doc.parent(n);
            }
            Ok(false)
        }
        Axis::Attribute => Err(Error::InvalidPattern {
            reason: "attribute step inside a pattern must be final".into(),
        }),
        axis => Err(Error::InvalidPattern {
            reason: format!("axis {} not allowed in patterns", axis.name()),
        }),
    }
}

fn step_accepts(doc: &Document, node: NodeId, step: &Step, vars: &VarBindings) -> Result<bool> {
    let name_ok = match &step.test {
        NodeTest::Wildcard => doc.is_element(node),
        NodeTest::Name(n) => doc.is_element_named(node, n),
    };
    if !name_ok {
        return Ok(false);
    }
    for pred in &step.predicates {
        if !eval_expr(doc, node, pred, vars)?.to_bool() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Default priority of a match pattern, per the XSLT specification:
///
/// * a single name test with no predicates → `0.0`;
/// * a single wildcard with no predicates → `-0.5`;
/// * anything more specific (multiple steps, predicates, absolute) → `0.5`.
///
/// Used by the conflict-resolution rewrite (§5.2.3) when templates carry no
/// explicit priority.
pub fn default_priority(pattern: &PathExpr) -> f64 {
    if !pattern.absolute && pattern.steps.len() == 1 {
        let step = &pattern.steps[0];
        if step.predicates.is_empty() && step.axis == Axis::Child {
            return match step.test {
                NodeTest::Name(_) => 0.0,
                NodeTest::Wildcard => -0.5,
            };
        }
    }
    0.5
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_pattern;
    use xvc_xml::parse;

    fn doc() -> Document {
        parse(
            r#"<metro metroname="chicago">
                 <hotel><confroom capacity="300"/></hotel>
               </metro>"#,
        )
        .unwrap()
    }

    fn node(d: &Document, path: &[&str]) -> NodeId {
        let mut cur = d.root();
        for name in path {
            cur = d
                .child_elements(cur)
                .find(|&c| d.is_element_named(c, name))
                .unwrap();
        }
        cur
    }

    fn m(d: &Document, n: NodeId, pat: &str) -> bool {
        pattern_matches(d, n, &parse_pattern(pat).unwrap(), &VarBindings::new()).unwrap()
    }

    #[test]
    fn root_pattern_matches_only_root() {
        let d = doc();
        assert!(m(&d, d.root(), "/"));
        assert!(!m(&d, node(&d, &["metro"]), "/"));
    }

    #[test]
    fn single_name_suffix_semantics() {
        let d = doc();
        let room = node(&d, &["metro", "hotel", "confroom"]);
        assert!(m(&d, room, "confroom"));
        assert!(m(&d, room, "hotel/confroom"));
        assert!(m(&d, room, "metro/hotel/confroom"));
        assert!(!m(&d, room, "hotel"));
        assert!(!m(&d, room, "metro/confroom"));
    }

    #[test]
    fn absolute_patterns_anchor_at_root() {
        let d = doc();
        let metro = node(&d, &["metro"]);
        let hotel = node(&d, &["metro", "hotel"]);
        assert!(m(&d, metro, "/metro"));
        assert!(!m(&d, hotel, "/hotel"));
        assert!(m(&d, hotel, "/metro/hotel"));
    }

    #[test]
    fn descendant_patterns() {
        let d = doc();
        let room = node(&d, &["metro", "hotel", "confroom"]);
        assert!(m(&d, room, "metro//confroom"));
        assert!(m(&d, room, "//confroom"));
        // No skipping needed also works.
        assert!(m(&d, room, "hotel//confroom"));
        // Wrong anchor fails.
        assert!(!m(&d, room, "confstat//confroom"));
    }

    #[test]
    fn predicates_in_patterns() {
        let d = doc();
        let room = node(&d, &["metro", "hotel", "confroom"]);
        assert!(m(&d, room, "metro[@metroname=\"chicago\"]/hotel/confroom"));
        assert!(!m(&d, room, "metro[@metroname=\"nyc\"]/hotel/confroom"));
        assert!(m(&d, room, "confroom[@capacity>250]"));
        assert!(!m(&d, room, "confroom[@capacity>500]"));
    }

    #[test]
    fn wildcard_pattern() {
        let d = doc();
        let hotel = node(&d, &["metro", "hotel"]);
        assert!(m(&d, hotel, "*"));
        assert!(m(&d, hotel, "metro/*"));
        assert!(!m(&d, d.root(), "*"));
    }

    #[test]
    fn default_priorities() {
        assert_eq!(default_priority(&parse_pattern("metro").unwrap()), 0.0);
        assert_eq!(default_priority(&parse_pattern("*").unwrap()), -0.5);
        assert_eq!(
            default_priority(&parse_pattern("metro/hotel").unwrap()),
            0.5
        );
        assert_eq!(
            default_priority(&parse_pattern("metro[@x=1]").unwrap()),
            0.5
        );
        assert_eq!(default_priority(&parse_pattern("/").unwrap()), 0.5);
    }
}
