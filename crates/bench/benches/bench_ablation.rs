//! Ablations of the relational engine's design choices (DESIGN.md §4.3):
//! hash equi-joins vs nested-loop + filter, and per-query caching of
//! row-independent EXISTS subqueries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xvc_bench::workload::{generate, WorkloadConfig};
use xvc_rel::{eval_query_with, parse_query, EvalOptions, ParamEnv};

fn bench_join_strategies(c: &mut Criterion) {
    let db = generate(&WorkloadConfig::scale(2));
    let q = parse_query(
        "SELECT metroname, hotelname, capacity \
         FROM metroarea, hotel, confroom \
         WHERE metro_id = metroid AND chotel_id = hotelid AND starrating > 2",
    )
    .unwrap();
    let mut group = c.benchmark_group("ablation/join");
    for (name, hash) in [("hash_join", true), ("nested_loop", false)] {
        let opts = EvalOptions {
            hash_joins: hash,
            ..EvalOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| eval_query_with(&db, &q, &ParamEnv::new(), opts).unwrap());
        });
    }
    group.finish();
}

fn bench_exists_caching(c: &mut Criterion) {
    let db = generate(&WorkloadConfig::scale(2));
    // An EXISTS that never reads the outer row: cacheable.
    let q = parse_query(
        "SELECT hotelname FROM hotel \
         WHERE EXISTS (SELECT * FROM confroom WHERE capacity > 100)",
    )
    .unwrap();
    let mut group = c.benchmark_group("ablation/exists_cache");
    for (name, cache) in [("cached", true), ("per_row", false)] {
        let opts = EvalOptions {
            cache_uncorrelated_exists: cache,
            ..EvalOptions::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(name), &opts, |b, &opts| {
            b.iter(|| eval_query_with(&db, &q, &ParamEnv::new(), opts).unwrap());
        });
    }
    group.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    use xvc_core::{ComposeOptions, Composer};
    use xvc_view::{Engine, SchemaTree, ViewNode};
    use xvc_xslt::parse_stylesheet;

    // A composition where unnesting actually fires: the level-skipping
    // select `hotel/confroom` makes UNBIND wrap the hotel query as a
    // (non-preserved, SELECT *) derived table, which the optimizer folds
    // back into a plain `hotel AS TEMP` scan. (The paper-figure
    // compositions keep their derived tables: they are preserved-side or
    // projecting, which the conservative rule leaves alone.)
    let db = generate(&WorkloadConfig::scale(2));
    let mut view = SchemaTree::new();
    let hotel = view
        .add_root_node(ViewNode::new(
            1,
            "hotel",
            "h",
            xvc_rel::parse_query("SELECT * FROM hotel WHERE starrating > 2").unwrap(),
        ))
        .unwrap();
    view.add_child(
        hotel,
        ViewNode::new(
            2,
            "confroom",
            "c",
            xvc_rel::parse_query("SELECT * FROM confroom WHERE chotel_id = $h.hotelid").unwrap(),
        ),
    )
    .unwrap();
    let x = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="/"><r><xsl:apply-templates select="hotel/confroom"/></r></xsl:template>
             <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
           </xsl:stylesheet>"#,
    )
    .unwrap();
    let plain = Composer::new(&view, &x, &db.catalog()).run().unwrap().view;
    let optimized = Composer::new(&view, &x, &db.catalog())
        .with_options(ComposeOptions {
            optimize: true,
            ..ComposeOptions::default()
        })
        .run()
        .unwrap()
        .view;
    assert_ne!(
        plain.render(),
        optimized.render(),
        "the optimizer must change this composition"
    );
    let mut group = c.benchmark_group("ablation/kim_optimizer");
    group.bench_function("as_generated", |b| {
        b.iter(|| Engine::new(&plain).session().publish(&db).unwrap())
    });
    group.bench_function("optimized", |b| {
        b.iter(|| Engine::new(&optimized).session().publish(&db).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_join_strategies,
    bench_exists_caching,
    bench_optimizer
);
criterion_main!(benches);
