//! E4: microbenchmarks of the substrate layers.

use criterion::{criterion_group, criterion_main, Criterion};
use xvc_bench::workload::{generate, WorkloadConfig};
use xvc_core::paper_fixtures::figure1_view;
use xvc_rel::{eval_query, parse_query, ParamEnv};
use xvc_view::Engine;
use xvc_xpath::{eval_path, parse_path, VarBindings};

fn bench_xml(c: &mut Criterion) {
    let db = generate(&WorkloadConfig::scale(2));
    let doc = Engine::new(&figure1_view())
        .session()
        .publish(&db)
        .unwrap()
        .document;
    let xml = doc.to_xml();
    let mut group = c.benchmark_group("substrate/xml");
    group.bench_function("parse", |b| b.iter(|| xvc_xml::parse(&xml).unwrap()));
    group.bench_function("serialize", |b| b.iter(|| doc.to_xml()));
    group.bench_function("canonicalize", |b| {
        b.iter(|| xvc_xml::canonical_string(&doc, doc.root()))
    });
    group.finish();
}

fn bench_xpath(c: &mut Criterion) {
    let db = generate(&WorkloadConfig::scale(2));
    let doc = Engine::new(&figure1_view())
        .session()
        .publish(&db)
        .unwrap()
        .document;
    let paths = [
        "metro/hotel/confstat",
        "metro/hotel/confroom[@capacity>250]",
    ];
    let mut group = c.benchmark_group("substrate/xpath");
    for p in paths {
        let parsed = parse_path(p).unwrap();
        group.bench_function(p, |b| {
            b.iter(|| eval_path(&doc, doc.root(), &parsed, &VarBindings::new()).unwrap())
        });
    }
    group.bench_function("parse_figure17_select", |b| {
        b.iter(|| {
            parse_path(
                ".[@sum<200]/../hotel_available/../confroom[../confstat[@sum>100]][@capacity>250]",
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_sql(c: &mut Criterion) {
    let db = generate(&WorkloadConfig::scale(2));
    let queries = [
        ("scan_filter", "SELECT * FROM hotel WHERE starrating > 4"),
        (
            "hash_join_3way",
            "SELECT metroname, hotelname, capacity FROM metroarea, hotel, confroom \
             WHERE metro_id = metroid AND chotel_id = hotelid",
        ),
        (
            "group_aggregate",
            "SELECT chotel_id, SUM(capacity) FROM confroom GROUP BY chotel_id",
        ),
        (
            "correlated_exists",
            "SELECT hotelname FROM hotel WHERE EXISTS \
             (SELECT * FROM confroom WHERE chotel_id = hotelid AND capacity > 400)",
        ),
    ];
    let mut group = c.benchmark_group("substrate/sql");
    for (name, sql) in queries {
        let q = parse_query(sql).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| eval_query(&db, &q, &ParamEnv::new()).unwrap())
        });
    }
    group.finish();
}

fn bench_publish(c: &mut Criterion) {
    let db = generate(&WorkloadConfig::scale(2));
    let v = figure1_view();
    c.bench_function("substrate/publish_figure1", |b| {
        b.iter(|| Engine::new(&v).session().publish(&db).unwrap())
    });
}

criterion_group!(benches, bench_xml, bench_xpath, bench_sql, bench_publish);
criterion_main!(benches);
