//! The deferred evaluation (E1) as a Criterion benchmark: full-view
//! publish + XSLT engine vs composed-view publish.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xvc_bench::workload::{generate, WorkloadConfig};
use xvc_core::paper_fixtures::figure1_view;
use xvc_core::Composer;
use xvc_view::Engine;
use xvc_xslt::parse::FIGURE4_XSLT;
use xvc_xslt::{parse_stylesheet, process};

fn bench_naive_vs_composed(c: &mut Criterion) {
    let view = figure1_view();
    let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
    let mut group = c.benchmark_group("e1");
    group.sample_size(10);
    for scale in [1usize, 2, 4] {
        let db = generate(&WorkloadConfig::scale(scale));
        let composed = Composer::new(&view, &x, &db.catalog()).run().unwrap().view;
        group.bench_with_input(
            BenchmarkId::new("naive_publish_then_xslt", scale),
            &scale,
            |b, _| {
                b.iter(|| {
                    let full = Engine::new(&view).session().publish(&db).unwrap().document;
                    process(&x, &full).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("composed_view", scale), &scale, |b, _| {
            b.iter(|| Engine::new(&composed).session().publish(&db).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_naive_vs_composed);
criterion_main!(benches);
