//! C1/C2 scaling studies as Criterion benchmarks (the §4.5 bounds).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xvc_bench::synthetic::{chain_catalog, chain_view, fan_stylesheet};
use xvc_core::{ComposeOptions, Composer};

fn bench_fan(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/fan_depth6");
    group.sample_size(10);
    for fan in [1usize, 2, 3] {
        let v = chain_view(6);
        let x = fan_stylesheet(6, fan);
        let catalog = chain_catalog(6);
        group.bench_with_input(BenchmarkId::from_parameter(fan), &fan, |b, _| {
            b.iter(|| {
                Composer::new(&v, &x, &catalog)
                    .with_options(ComposeOptions {
                        tvq_limit: 1_000_000,
                        ..ComposeOptions::default()
                    })
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fan);
criterion_main!(benches);
