//! Composition-time benchmarks: the Figure 9 algorithm itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use xvc_bench::synthetic::{chain_catalog, chain_stylesheet, chain_view};
use xvc_core::paper_fixtures::{figure1_view, figure2_catalog, FIGURE15_XSLT, FIGURE17_XSLT};
use xvc_core::{compose_recursive, Composer};
use xvc_xslt::parse::FIGURE4_XSLT;
use xvc_xslt::parse_stylesheet;

fn bench_paper_fixtures(c: &mut Criterion) {
    let v = figure1_view();
    let catalog = figure2_catalog();
    let mut group = c.benchmark_group("compose/paper");
    for (name, xslt) in [
        ("figure4", FIGURE4_XSLT),
        ("figure15_forced_unbinding", FIGURE15_XSLT),
        ("figure17_predicates", FIGURE17_XSLT),
    ] {
        let x = parse_stylesheet(xslt).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| Composer::new(&v, &x, &catalog).run().unwrap());
        });
    }
    let x25 = parse_stylesheet(xvc_core::paper_fixtures::FIGURE25_XSLT).unwrap();
    group.bench_function("figure25_recursive_pushdown", |b| {
        b.iter(|| compose_recursive(&v, &x25, &catalog).unwrap());
    });
    group.finish();
}

fn bench_chain_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("compose/chain_depth");
    for depth in [4usize, 8, 16, 32] {
        let v = chain_view(depth);
        let x = chain_stylesheet(depth);
        let catalog = chain_catalog(depth);
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| Composer::new(&v, &x, &catalog).run().unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paper_fixtures, bench_chain_depth);
criterion_main!(benches);
