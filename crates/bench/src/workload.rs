//! Hotel-schema workload generator (Figure 2 at scale).
//!
//! The paper defers experimental evaluation; this generator provides the
//! testbed it would have needed: seeded, deterministic instances of the
//! hotel-reservation schema with tunable size and selectivity knobs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xvc_core::paper_fixtures::figure2_database;
use xvc_rel::{Database, Value};

/// Knobs for one generated instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of metro areas.
    pub metros: usize,
    /// Hotels per metro.
    pub hotels_per_metro: usize,
    /// Fraction of hotels with `starrating > 4` (the Figure 1 view's
    /// hotel-level selectivity).
    pub luxury_fraction: f64,
    /// Guest rooms per hotel.
    pub rooms_per_hotel: usize,
    /// Conference rooms per hotel.
    pub conf_rooms_per_hotel: usize,
    /// Distinct start dates in the availability horizon.
    pub dates: usize,
    /// Availability records per guest room.
    pub avail_per_room: usize,
    /// RNG seed (generation is deterministic given the config).
    pub seed: u64,
}

impl WorkloadConfig {
    /// A linear scale family: `scale(1)` ≈ 600 rows, `scale(s)` grows
    /// proportionally in metros (and therefore everything beneath them).
    pub fn scale(s: usize) -> Self {
        WorkloadConfig {
            metros: 2 * s.max(1),
            hotels_per_metro: 8,
            luxury_fraction: 0.5,
            rooms_per_hotel: 5,
            conf_rooms_per_hotel: 2,
            dates: 5,
            avail_per_room: 3,
            seed: 0x5157_2003,
        }
    }

    /// Same sizes, different hotel-level selectivity.
    pub fn with_luxury_fraction(mut self, f: f64) -> Self {
        self.luxury_fraction = f;
        self
    }

    /// Approximate total row count of the generated instance.
    pub fn approx_rows(&self) -> usize {
        let hotels = self.metros * self.hotels_per_metro;
        self.metros
            + hotels * (1 + self.rooms_per_hotel + self.conf_rooms_per_hotel)
            + hotels * self.rooms_per_hotel * self.avail_per_room
    }
}

/// Generates a database instance for the given config.
pub fn generate(cfg: &WorkloadConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = figure2_database();
    let i = Value::Int;
    let s = |x: String| Value::Str(x);

    db.insert(
        "hotelchain",
        vec![i(1), s("Grand Chain".into()), s("IL".into())],
    )
    .expect("schema matches");

    let mut hotel_id = 0i64;
    let mut room_id = 0i64;
    let mut conf_id = 0i64;
    let mut avail_id = 0i64;

    for m in 0..cfg.metros {
        let metro_id = m as i64 + 1;
        db.insert(
            "metroarea",
            vec![i(metro_id), s(format!("metro{metro_id}"))],
        )
        .expect("schema matches");
        for h in 0..cfg.hotels_per_metro {
            hotel_id += 1;
            let luxury = (h as f64 + 0.5) / cfg.hotels_per_metro as f64 <= cfg.luxury_fraction;
            let stars = if luxury { 5 } else { rng.gen_range(1..=4) };
            db.insert(
                "hotel",
                vec![
                    i(hotel_id),
                    s(format!("hotel{hotel_id}")),
                    i(stars),
                    i(1),
                    i(metro_id),
                    i(1),
                    s(format!("city{metro_id}")),
                    s(if rng.gen_bool(0.5) { "yes" } else { "no" }.into()),
                    s(if rng.gen_bool(0.5) { "yes" } else { "no" }.into()),
                ],
            )
            .expect("schema matches");
            for r in 0..cfg.rooms_per_hotel {
                room_id += 1;
                db.insert(
                    "guestroom",
                    vec![
                        i(room_id),
                        i(hotel_id),
                        i(100 + r as i64),
                        s(if rng.gen_bool(0.3) { "suite" } else { "king" }.into()),
                        i(rng.gen_range(80..400)),
                    ],
                )
                .expect("schema matches");
                for _ in 0..cfg.avail_per_room {
                    avail_id += 1;
                    let d = rng.gen_range(0..cfg.dates.max(1)) as i64;
                    db.insert(
                        "availability",
                        vec![
                            i(avail_id),
                            i(room_id),
                            s(format!("2003-06-{:02}", 9 + d)),
                            s(format!("2003-06-{:02}", 12 + d)),
                            i(rng.gen_range(90..300)),
                        ],
                    )
                    .expect("schema matches");
                }
            }
            for c in 0..cfg.conf_rooms_per_hotel {
                conf_id += 1;
                db.insert(
                    "confroom",
                    vec![
                        i(conf_id),
                        i(hotel_id),
                        i(c as i64 + 1),
                        i(rng.gen_range(50..600)),
                        i(rng.gen_range(300..1500)),
                    ],
                )
                .expect("schema matches");
            }
        }
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = WorkloadConfig::scale(1);
        assert_eq!(generate(&cfg), generate(&cfg));
    }

    #[test]
    fn scale_grows_linearly() {
        let r1 = generate(&WorkloadConfig::scale(1)).total_rows();
        let r4 = generate(&WorkloadConfig::scale(4)).total_rows();
        assert!(r4 > 3 * r1 && r4 < 5 * r1, "r1={r1} r4={r4}");
    }

    #[test]
    fn approx_rows_matches_actual() {
        let cfg = WorkloadConfig::scale(2);
        let actual = generate(&cfg).total_rows();
        // approx_rows omits only the single hotelchain row.
        assert_eq!(cfg.approx_rows() + 1, actual);
    }

    #[test]
    fn luxury_fraction_controls_selectivity() {
        let db = generate(&WorkloadConfig::scale(1).with_luxury_fraction(0.25));
        let lux = xvc_rel::eval_query(
            &db,
            &xvc_rel::parse_query("SELECT * FROM hotel WHERE starrating > 4").unwrap(),
            &Default::default(),
        )
        .unwrap()
        .len();
        let total = db.table("hotel").unwrap().len();
        let f = lux as f64 / total as f64;
        assert!((f - 0.25).abs() < 0.05, "fraction {f}");
    }

    #[test]
    fn generated_instance_publishes_figure1() {
        let db = generate(&WorkloadConfig::scale(1));
        let v = xvc_core::paper_fixtures::figure1_view();
        let stats = xvc_view::Engine::new(&v)
            .session()
            .publish(&db)
            .unwrap()
            .stats;
        assert!(stats.elements > 50);
    }
}
