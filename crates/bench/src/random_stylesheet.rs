//! A seeded generator of random `XSLT_basic` stylesheets over a given
//! schema-tree view — the fuzzing companion to the equivalence property:
//! whatever composable stylesheet the generator produces, the composed
//! view must agree with the reference engine on every instance.
//!
//! The generator builds a random *rule tree*: starting from the root rule,
//! each rule targets a view node and fires apply-templates at
//! schema-reachable nodes (child descents, optionally with a parent-axis
//! zigzag through a sibling), each in a fresh mode — fresh modes make the
//! stylesheet conflict-free by construction (`XSLT_basic` restriction
//! (6)). Bodies wrap results in literal elements and end in
//! `value-of "."` copies or `@column` projections drawn from the target's
//! actual output columns.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use xvc_rel::eval::output_columns;
use xvc_rel::{Catalog, ColumnType, ScalarExpr, SelectItem, TableRef};
use xvc_view::{SchemaTree, ViewNodeId};
use xvc_xpath::{Axis, Expr, NodeTest, PathExpr, Step};
use xvc_xslt::{ApplyTemplates, OutputNode, Stylesheet, TemplateRule};

/// Tuning knobs for the generator.
#[derive(Debug, Clone, Copy)]
pub struct StylesheetConfig {
    /// Maximum rule-tree depth below the root rule.
    pub max_depth: usize,
    /// Maximum apply-templates per rule.
    pub max_fanout: usize,
    /// Probability of a parent-axis zigzag (`../sibling`) in a select.
    pub zigzag_prob: f64,
    /// Probability that a leaf body is a `value-of "."` copy (vs. a
    /// `@column` projection).
    pub copy_prob: f64,
    /// Probability of a descendant-axis (`.//tag`) select.
    pub descendant_prob: f64,
    /// Probability of a comparison predicate on a select's endpoint.
    pub predicate_prob: f64,
}

impl Default for StylesheetConfig {
    fn default() -> Self {
        StylesheetConfig {
            max_depth: 3,
            max_fanout: 2,
            zigzag_prob: 0.25,
            copy_prob: 0.5,
            descendant_prob: 0.2,
            predicate_prob: 0.3,
        }
    }
}

impl StylesheetConfig {
    /// Recursion-heavy preset: deep rule trees with frequent parent-axis
    /// zigzags and descendant jumps, so the same view region is
    /// re-expanded over and over down a long rule chain — the closest
    /// `XSLT_basic`'s conflict-free fragment gets to recursion, and the
    /// worst case for the TVQ's duplication and the cardinality
    /// analysis's bound propagation.
    pub fn recursion_heavy() -> Self {
        StylesheetConfig {
            max_depth: 6,
            max_fanout: 2,
            zigzag_prob: 0.6,
            copy_prob: 0.5,
            descendant_prob: 0.35,
            predicate_prob: 0.3,
        }
    }

    /// Wide-fanout preset: shallow rule trees firing many sibling
    /// apply-templates per rule, so frontier waves carry many bindings —
    /// the stress case for the set-oriented batcher and the per-wave
    /// batch-size bounds.
    pub fn wide_fanout() -> Self {
        StylesheetConfig {
            max_depth: 2,
            max_fanout: 6,
            zigzag_prob: 0.1,
            copy_prob: 0.5,
            descendant_prob: 0.1,
            predicate_prob: 0.4,
        }
    }
}

/// Generates a random composable stylesheet over `view`.
pub fn random_stylesheet(
    view: &SchemaTree,
    catalog: &Catalog,
    seed: u64,
    cfg: StylesheetConfig,
) -> Stylesheet {
    let mut g = Gen {
        view,
        catalog,
        rng: StdRng::seed_from_u64(seed),
        cfg,
        rules: Vec::new(),
        mode_counter: 0,
    };
    // Root rule: fire at 1..=max_fanout top-level nodes.
    let mut root_body = Vec::new();
    let tops: Vec<ViewNodeId> = g.view.children(g.view.root()).to_vec();
    let fires = g.rng.gen_range(1..=g.cfg.max_fanout.max(1));
    for _ in 0..fires {
        let target = tops[g.rng.gen_range(0..tops.len())];
        let select = PathExpr {
            absolute: false,
            steps: vec![Step::child(g.view.tag(target).expect("non-root"))],
        };
        let mode = g.fresh_mode();
        root_body.push(OutputNode::ApplyTemplates(ApplyTemplates {
            select,
            mode: mode.clone(),
            with_params: Vec::new(),
            select_span: Default::default(),
        }));
        g.emit_rule(target, mode, 0);
    }
    let mut rules = vec![TemplateRule::new(
        PathExpr::root(),
        vec![OutputNode::Element {
            name: "gen_root".into(),
            attrs: Vec::new(),
            children: root_body,
        }],
    )];
    rules.extend(g.rules);
    Stylesheet { rules }
}

struct Gen<'a> {
    view: &'a SchemaTree,
    catalog: &'a Catalog,
    rng: StdRng,
    cfg: StylesheetConfig,
    rules: Vec<TemplateRule>,
    mode_counter: usize,
}

impl Gen<'_> {
    fn fresh_mode(&mut self) -> String {
        self.mode_counter += 1;
        format!("g{}", self.mode_counter)
    }

    /// Emits a rule matching `target`'s tag in `mode`, with a random body.
    fn emit_rule(&mut self, target: ViewNodeId, mode: String, depth: usize) {
        let tag = self.view.tag(target).expect("non-root").to_owned();
        let mut children: Vec<OutputNode> = Vec::new();

        // Terminal payload.
        if self.rng.gen_bool(self.cfg.copy_prob) {
            children.push(OutputNode::ValueOf {
                select: Expr::Path(PathExpr {
                    absolute: false,
                    steps: vec![Step::self_step()],
                }),
                span: Default::default(),
            });
        } else if let Some(col) = self.random_column(target) {
            children.push(OutputNode::ValueOf {
                select: Expr::Path(PathExpr {
                    absolute: false,
                    steps: vec![Step {
                        axis: Axis::Attribute,
                        test: NodeTest::Name(col),
                        predicates: Vec::new(),
                    }],
                }),
                span: Default::default(),
            });
        }

        // Recursive applies.
        if depth < self.cfg.max_depth {
            let fanout = self.rng.gen_range(0..=self.cfg.max_fanout);
            for _ in 0..fanout {
                if let Some((select, next)) = self.random_select(target) {
                    let mode = self.fresh_mode();
                    children.push(OutputNode::ApplyTemplates(ApplyTemplates {
                        select,
                        mode: mode.clone(),
                        with_params: Vec::new(),
                        select_span: Default::default(),
                    }));
                    self.emit_rule(next, mode, depth + 1);
                }
            }
        }

        let body = vec![OutputNode::Element {
            name: format!("out_{tag}"),
            attrs: Vec::new(),
            children,
        }];
        let mut rule = TemplateRule::new(
            PathExpr {
                absolute: false,
                steps: vec![Step::child(tag)],
            },
            body,
        );
        rule.mode = mode;
        self.rules.push(rule);
    }

    /// A random output column of the target's tag query (for `@col`
    /// projections); `None` when the columns cannot be determined
    /// statically.
    fn random_column(&mut self, target: ViewNodeId) -> Option<String> {
        let node = self.view.node(target)?;
        let q = node.query.as_ref()?;
        let cols = output_columns(q, self.catalog).ok()?;
        if cols.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..cols.len());
        Some(cols[i].clone())
    }

    /// A random endpoint predicate (`@col OP const`) over the node's
    /// *numeric* columns — comparing a string column against a number is
    /// type coercion, which `XSLT_basic` restriction (1) excludes (XPath
    /// would coerce through NaN while SQL yields NULL). Constants are
    /// small so both branches occur in practice.
    fn random_predicate(&mut self, target: ViewNodeId) -> Option<Expr> {
        if !self.rng.gen_bool(self.cfg.predicate_prob) {
            return None;
        }
        let numeric = self.numeric_columns(target);
        if numeric.is_empty() {
            return None;
        }
        let col = numeric[self.rng.gen_range(0..numeric.len())].clone();
        let ops = [
            xvc_xpath::ast::BinOp::Gt,
            xvc_xpath::ast::BinOp::Le,
            xvc_xpath::ast::BinOp::Ne,
        ];
        let op = ops[self.rng.gen_range(0..ops.len())];
        let bound = [0i64, 1, 2, 5, 100, 1000][self.rng.gen_range(0..6usize)];
        Some(Expr::Binary {
            op,
            lhs: Box::new(Expr::Path(PathExpr {
                absolute: false,
                steps: vec![Step {
                    axis: Axis::Attribute,
                    test: NodeTest::Name(col),
                    predicates: Vec::new(),
                }],
            })),
            rhs: Box::new(Expr::Number(bound as f64)),
        })
    }

    /// The target's output columns that are statically numeric: plain
    /// columns of INT/FLOAT type, or aggregate outputs.
    fn numeric_columns(&self, target: ViewNodeId) -> Vec<String> {
        let Some(node) = self.view.node(target) else {
            return Vec::new();
        };
        let Some(q) = &node.query else {
            return Vec::new();
        };
        // Column name → type across the FROM tables.
        let mut types: Vec<(String, ColumnType)> = Vec::new();
        for t in &q.from {
            if let TableRef::Named { name, .. } = t {
                if let Ok(schema) = self.catalog.get(name) {
                    for c in &schema.columns {
                        types.push((c.name.clone(), c.ty));
                    }
                }
            }
        }
        let numeric_base = |name: &str| {
            types
                .iter()
                .any(|(n, ty)| n == name && matches!(ty, ColumnType::Int | ColumnType::Float))
        };
        let mut out = Vec::new();
        for item in &q.select {
            match item {
                SelectItem::Star => {
                    for (n, ty) in &types {
                        if matches!(ty, ColumnType::Int | ColumnType::Float) && !out.contains(n) {
                            out.push(n.clone());
                        }
                    }
                }
                SelectItem::QualifiedStar(_) => {}
                SelectItem::Expr { expr, alias } => {
                    let (name, numeric) = match expr {
                        ScalarExpr::Column { name, .. } => (name.clone(), numeric_base(name)),
                        ScalarExpr::Aggregate { func, .. } => {
                            (func.default_column_name().to_owned(), true)
                        }
                        _ => continue,
                    };
                    let name = alias.clone().unwrap_or(name);
                    if numeric && !out.contains(&name) {
                        out.push(name);
                    }
                }
            }
        }
        out
    }

    /// A random schema-navigable select from `target`: a 1–2-step child
    /// descent, a `../sibling` zigzag, or a `.//descendant` jump (the
    /// lifted restriction (9)); endpoints may carry a value predicate.
    /// Returns the path and its (unique) endpoint; `None` when the node
    /// has nowhere to go.
    fn random_select(&mut self, target: ViewNodeId) -> Option<(PathExpr, ViewNodeId)> {
        if self.rng.gen_bool(self.cfg.descendant_prob) {
            if let Some(hit) = self.random_descendant_select(target) {
                return Some(hit);
            }
        }
        let zigzag = self.rng.gen_bool(self.cfg.zigzag_prob);
        if zigzag {
            // ../sibling (a sibling with a tag unique among siblings, so
            // the walk is deterministic).
            let parent = self.view.parent(target)?;
            if self.view.is_root(parent) {
                return None;
            }
            let siblings: Vec<ViewNodeId> = self
                .view
                .children(parent)
                .iter()
                .copied()
                .filter(|&s| s != target)
                .filter(|&s| {
                    let tag = self.view.tag(s);
                    self.view
                        .children(parent)
                        .iter()
                        .filter(|&&x| self.view.tag(x) == tag)
                        .count()
                        == 1
                })
                .collect();
            if siblings.is_empty() {
                return None;
            }
            let sib = siblings[self.rng.gen_range(0..siblings.len())];
            let mut last = Step::child(self.view.tag(sib).expect("non-root"));
            if let Some(pred) = self.random_predicate(sib) {
                last.predicates.push(pred);
            }
            let path = PathExpr {
                absolute: false,
                steps: vec![Step::parent(), last],
            };
            return Some((path, sib));
        }
        // Child descent of length 1 or 2.
        let kids: Vec<ViewNodeId> = self.view.children(target).to_vec();
        if kids.is_empty() {
            return None;
        }
        let first = kids[self.rng.gen_range(0..kids.len())];
        let mut steps = vec![Step::child(self.view.tag(first).expect("non-root"))];
        let mut end = first;
        if self.rng.gen_bool(0.4) {
            let grand: Vec<ViewNodeId> = self.view.children(first).to_vec();
            if !grand.is_empty() {
                let g = grand[self.rng.gen_range(0..grand.len())];
                steps.push(Step::child(self.view.tag(g).expect("non-root")));
                end = g;
            }
        }
        if let Some(pred) = self.random_predicate(end) {
            steps.last_mut().expect("non-empty").predicates.push(pred);
        }
        Some((
            PathExpr {
                absolute: false,
                steps,
            },
            end,
        ))
    }

    /// `.//tag` where `tag` is unique among the target's strict
    /// descendants (so the walk has a single endpoint, keeping the
    /// generated stylesheet's rule tree simple).
    fn random_descendant_select(&mut self, target: ViewNodeId) -> Option<(PathExpr, ViewNodeId)> {
        let mut descendants: Vec<ViewNodeId> = Vec::new();
        let mut stack: Vec<ViewNodeId> = self.view.children(target).to_vec();
        while let Some(n) = stack.pop() {
            descendants.push(n);
            stack.extend(self.view.children(n).iter().copied());
        }
        let unique: Vec<ViewNodeId> = descendants
            .iter()
            .copied()
            .filter(|&d| {
                let tag = self.view.tag(d);
                descendants
                    .iter()
                    .filter(|&&x| self.view.tag(x) == tag)
                    .count()
                    == 1
            })
            .collect();
        if unique.is_empty() {
            return None;
        }
        let end = unique[self.rng.gen_range(0..unique.len())];
        let mut step = Step {
            axis: Axis::Descendant,
            test: NodeTest::Name(self.view.tag(end).expect("non-root").to_owned()),
            predicates: Vec::new(),
        };
        if let Some(pred) = self.random_predicate(end) {
            step.predicates.push(pred);
        }
        Some((
            PathExpr {
                absolute: false,
                steps: vec![step],
            },
            end,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::paper_fixtures::{figure1_view, figure2_catalog, sample_database};
    use xvc_core::Composer;
    use xvc_view::Engine;
    use xvc_xml::documents_equal_unordered;
    use xvc_xslt::{check_basic, process};

    #[test]
    fn generated_stylesheets_stay_in_the_composable_fragment() {
        // Predicates (restriction 4) and descendant selects (restriction
        // 9) are the deliberately-exercised extensions; everything else —
        // flow control, conflicts, variables, general value-of — must be
        // absent.
        let v = figure1_view();
        let c = figure2_catalog();
        for seed in 0..20 {
            let s = random_stylesheet(&v, &c, seed, StylesheetConfig::default());
            for violation in check_basic(&s) {
                assert!(
                    matches!(violation.restriction, 4 | 9),
                    "seed {seed}: {violation}"
                );
            }
        }
    }

    #[test]
    fn generated_stylesheets_compose_equivalently() {
        let v = figure1_view();
        let c = figure2_catalog();
        let db = sample_database();
        for seed in 0..40 {
            let s = random_stylesheet(&v, &c, seed, StylesheetConfig::default());
            let composed = Composer::new(&v, &s, &c)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: compose: {e}\n{}", s.to_xslt()))
                .view;
            let full = Engine::new(&v).session().publish(&db).unwrap().document;
            let expected = process(&s, &full).unwrap();
            let actual = Engine::new(&composed)
                .session()
                .publish(&db)
                .unwrap()
                .document;
            assert!(
                documents_equal_unordered(&expected, &actual),
                "seed {seed}:\n{}\nexpected:\n{}\nactual:\n{}",
                s.to_xslt(),
                expected.to_pretty_xml(),
                actual.to_pretty_xml()
            );
        }
    }

    #[test]
    fn preset_configs_compose_equivalently() {
        let v = figure1_view();
        let c = figure2_catalog();
        let db = sample_database();
        let full = Engine::new(&v).session().publish(&db).unwrap().document;
        for cfg in [
            StylesheetConfig::recursion_heavy(),
            StylesheetConfig::wide_fanout(),
        ] {
            for seed in 0..12 {
                let s = random_stylesheet(&v, &c, seed, cfg);
                let composed = Composer::new(&v, &s, &c)
                    .run()
                    .unwrap_or_else(|e| panic!("seed {seed}: compose: {e}\n{}", s.to_xslt()))
                    .view;
                let expected = process(&s, &full).unwrap();
                let actual = Engine::new(&composed)
                    .session()
                    .publish(&db)
                    .unwrap()
                    .document;
                assert!(
                    documents_equal_unordered(&expected, &actual),
                    "cfg {cfg:?} seed {seed}:\n{}",
                    s.to_xslt()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let v = figure1_view();
        let c = figure2_catalog();
        let a = random_stylesheet(&v, &c, 7, StylesheetConfig::default());
        let b = random_stylesheet(&v, &c, 7, StylesheetConfig::default());
        assert_eq!(a, b);
    }
}
