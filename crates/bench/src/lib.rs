//! # `xvc-bench` — workloads, paper figures, and the deferred evaluation
//!
//! The paper publishes no experimental numbers ("We defer experimental
//! evaluation and full consideration of optimized execution strategies ...
//! to future research", §1). This crate builds the evaluation it defers:
//!
//! * [`workload`] — a seeded generator for the Figure 2 hotel schema with
//!   scale and selectivity knobs;
//! * [`synthetic`] — chain and fan view/stylesheet families for the §4.5
//!   complexity studies (polynomial and exponential regimes);
//! * [`experiments`] — the E1/E2/E3 naive-vs-composed comparisons and the
//!   C1/C2 composition-cost sweeps, each verifying `v'(I) = x(v(I))`
//!   before timing anything;
//! * [`figures`] — programmatic regeneration of every paper figure;
//! * [`random_stylesheet`] — a seeded `XSLT_basic` stylesheet fuzzer for
//!   the equivalence property.
//!
//! The `figures` binary prints all artifacts and experiment tables;
//! Criterion benches live under `benches/`.

#![warn(missing_docs)]

pub mod experiments;
pub mod figures;
pub mod random_stylesheet;
pub mod synthetic;
pub mod workload;
