//! Regeneration of every figure in the paper, as text artifacts.
//!
//! Each `fN()` function returns the reproduced artifact for Figure N; the
//! `figures` binary prints them all, and the golden tests in
//! `tests/figures.rs` pin their load-bearing content. Figures 3, 5 and
//! 9–13 are algorithm listings — they are *implemented* (see the module
//! map in DESIGN.md) rather than rendered; Figure 7(b)/14's output tag
//! trees are fused into the stylesheet-view emission and are therefore
//! visible through Figure 7(c).

use xvc_core::paper_fixtures::{
    figure1_view, figure2_catalog, FIGURE15_XSLT, FIGURE17_XSLT, FIGURE25_XSLT,
};
use xvc_core::{build_ctg, combine, compose_recursive, matchq, selectq, Composer};
use xvc_view::SchemaTree;
use xvc_xpath::{parse_path, parse_pattern};
use xvc_xslt::parse::FIGURE4_XSLT;
use xvc_xslt::parse_stylesheet;

fn by_id(view: &SchemaTree, id: u32) -> xvc_view::ViewNodeId {
    view.find_by_paper_id(id).expect("fixture node")
}

/// Figure 1: the example schema-tree view query.
pub fn f1_schema_tree_view() -> String {
    figure1_view().render()
}

/// Figure 2: the hotel reservation schema.
pub fn f2_hotel_schema() -> String {
    let mut out = String::new();
    for t in figure2_catalog().iter() {
        let cols: Vec<&str> = t.columns.iter().map(|c| c.name.as_str()).collect();
        out.push_str(&format!("{}({})\n", t.name, cols.join(", ")));
    }
    out
}

/// Figure 4: the example stylesheet (parsed and re-serialized).
pub fn f4_stylesheet() -> String {
    parse_stylesheet(FIGURE4_XSLT).expect("fixture").to_xslt()
}

/// Figure 6: the context transition graph for Figure 4 over Figure 1.
pub fn f6_ctg() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE4_XSLT).expect("fixture");
    build_ctg(&v, &x).expect("ctg").render(&v, &x)
}

/// Figure 7(a): the traverse view query.
pub fn f7a_tvq() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE4_XSLT).expect("fixture");
    let ctg = build_ctg(&v, &x).expect("ctg");
    xvc_core::build_tvq(&v, &x, &ctg, &figure2_catalog(), 10_000)
        .expect("tvq")
        .render(&v, &x)
}

/// Figure 7(c): the stylesheet view.
pub fn f7c_stylesheet_view() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE4_XSLT).expect("fixture");
    Composer::new(&v, &x, &figure2_catalog())
        .run()
        .expect("compose")
        .view
        .render()
}

/// Figure 8: COMBINE of R3's select pattern with R4's match pattern.
pub fn f8_combine() -> String {
    let v = figure1_view();
    let t = selectq(
        &v,
        by_id(&v, 4),
        &parse_path("../hotel_available/../confroom").expect("path"),
        by_id(&v, 5),
    )
    .expect("selectq")
    .remove(0);
    let p = matchq(
        &v,
        by_id(&v, 5),
        &parse_pattern("metro/hotel/confroom").expect("pattern"),
    )
    .expect("matchq")
    .expect("match");
    let smt = combine(&v, &t, &p).expect("combine");
    format!(
        "select(a in R3) = ../hotel_available/../confroom\n\
         match(R4)       = metro/hotel/confroom\n\n\
         combined select-match subtree:\n{}",
        smt.render(&v)
    )
}

/// Figure 15: the forced-unbinding stylesheet.
pub fn f15_stylesheet() -> String {
    parse_stylesheet(FIGURE15_XSLT).expect("fixture").to_xslt()
}

/// Figure 16: the stylesheet view for Figure 15.
pub fn f16_stylesheet_view() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE15_XSLT).expect("fixture");
    Composer::new(&v, &x, &figure2_catalog())
        .run()
        .expect("compose")
        .view
        .render()
}

/// Figure 17: the predicate stylesheet.
pub fn f17_stylesheet() -> String {
    parse_stylesheet(FIGURE17_XSLT).expect("fixture").to_xslt()
}

/// Figure 18: the select-match subtree with predicates (two confstat
/// pattern nodes).
pub fn f18_smt_with_predicates() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE17_XSLT).expect("fixture");
    let r3_select = x.rules[2].apply_templates()[0].select.clone();
    let t = selectq(&v, by_id(&v, 4), &r3_select, by_id(&v, 5))
        .expect("selectq")
        .remove(0);
    let p = matchq(&v, by_id(&v, 5), &x.rules[3].match_pattern)
        .expect("matchq")
        .expect("match");
    combine(&v, &t, &p).expect("combine").render(&v)
}

/// Figure 20: the unbound query for Figure 18 (the confroom tag query of
/// the Figure 17 composition).
pub fn f20_unbound_query() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE17_XSLT).expect("fixture");
    let composed = Composer::new(&v, &x, &figure2_catalog())
        .run()
        .expect("compose")
        .view;
    // The confroom node of the composed view carries the Figure 20 query.
    for vid in composed.node_ids() {
        let n = composed.node(vid).expect("non-root");
        if n.tag == "confroom" {
            if let Some(q) = &n.query {
                return q.to_sql();
            }
        }
    }
    unreachable!("composed Figure 17 view always has a confroom node")
}

/// Figures 21–23: the §5.2 flow-control and value-of rewrites, shown as
/// before/after stylesheets.
pub fn f21_23_rewrites() -> String {
    let cases: Vec<(&str, &str)> = vec![
        (
            "Figure 21: xsl:if",
            r#"<xsl:stylesheet>
                 <xsl:template match="hotel" mode="m">
                   <xsl:if test="@pool='yes'"><has_pool/></xsl:if>
                 </xsl:template>
               </xsl:stylesheet>"#,
        ),
        (
            "Figure 22: xsl:choose",
            r#"<xsl:stylesheet>
                 <xsl:template match="hotel" mode="m">
                   <xsl:choose>
                     <xsl:when test="@starrating = 5"><five/></xsl:when>
                     <xsl:when test="@starrating = 4"><four/></xsl:when>
                     <xsl:otherwise><rest/></xsl:otherwise>
                   </xsl:choose>
                 </xsl:template>
               </xsl:stylesheet>"#,
        ),
        (
            "Figure 23: general xsl:value-of",
            r#"<xsl:stylesheet>
                 <xsl:template match="metro" mode="m">
                   <m><xsl:value-of select="hotel/confroom"/></m>
                 </xsl:template>
               </xsl:stylesheet>"#,
        ),
    ];
    let mut out = String::new();
    for (title, src) in cases {
        let before = parse_stylesheet(src).expect("case");
        let after = xvc_xslt::rewrite::rewrite_flow_control(&before).expect("rewrite");
        out.push_str(&format!(
            "--- {title} ---\nbefore:\n{}\nafter:\n{}\n",
            before.to_xslt(),
            after.to_xslt()
        ));
    }
    out
}

/// Figure 24: static conflict resolution.
pub fn f24_conflict_rewrite() -> String {
    let before = parse_stylesheet(
        r#"<xsl:stylesheet>
             <xsl:template match="hotel[@starrating&gt;4]/confroom" priority="2">
               <big/>
             </xsl:template>
             <xsl:template match="confroom">
               <plain/>
             </xsl:template>
           </xsl:stylesheet>"#,
    )
    .expect("case");
    let after = xvc_xslt::rewrite::rewrite_conflicts(&before).expect("rewrite");
    format!("before:\n{}\nafter:\n{}", before.to_xslt(), after.to_xslt())
}

/// Figure 25: the recursive stylesheet.
pub fn f25_stylesheet() -> String {
    parse_stylesheet(FIGURE25_XSLT).expect("fixture").to_xslt()
}

/// Figure 26: the materialized view `v'` of the §5.3 pushdown.
pub fn f26_recursive_view() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE25_XSLT).expect("fixture");
    compose_recursive(&v, &x, &figure2_catalog())
        .expect("recursive compose")
        .view
        .render()
}

/// Figure 27: the residual stylesheet `x'`.
pub fn f27_residual_stylesheet() -> String {
    let v = figure1_view();
    let x = parse_stylesheet(FIGURE25_XSLT).expect("fixture");
    compose_recursive(&v, &x, &figure2_catalog())
        .expect("recursive compose")
        .stylesheet
        .to_xslt()
}

/// All figures in order, with headers (what the `figures` binary prints).
pub fn all_figures() -> Vec<(&'static str, String)> {
    vec![
        ("Figure 1: schema-tree view query", f1_schema_tree_view()),
        ("Figure 2: hotel reservation schema", f2_hotel_schema()),
        ("Figure 4: example XSLT stylesheet", f4_stylesheet()),
        ("Figure 6: context transition graph", f6_ctg()),
        ("Figure 7(a): traverse view query", f7a_tvq()),
        ("Figure 7(c): stylesheet view", f7c_stylesheet_view()),
        ("Figure 8: COMBINE", f8_combine()),
        ("Figure 15: forced-unbinding stylesheet", f15_stylesheet()),
        (
            "Figure 16: stylesheet view for Figure 15",
            f16_stylesheet_view(),
        ),
        ("Figure 17: stylesheet with predicates", f17_stylesheet()),
        (
            "Figure 18: select-match subtree with predicates",
            f18_smt_with_predicates(),
        ),
        (
            "Figure 20: unbound query with predicates",
            f20_unbound_query(),
        ),
        ("Figures 21-23: flow-control rewrites", f21_23_rewrites()),
        (
            "Figure 24: conflict-resolution rewrite",
            f24_conflict_rewrite(),
        ),
        ("Figure 25: recursive stylesheet", f25_stylesheet()),
        ("Figure 26: materialized view v'", f26_recursive_view()),
        (
            "Figure 27: residual stylesheet x'",
            f27_residual_stylesheet(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_figures_render_nonempty() {
        for (name, body) in all_figures() {
            assert!(!body.trim().is_empty(), "{name} is empty");
        }
    }
}
