//! Synthetic views and stylesheets for the §4.5 complexity experiments.
//!
//! * **Chains** ([`chain_view`] / [`chain_stylesheet`] / [`chain_database`])
//!   — a view of depth `n` (one table per level, linked by foreign keys)
//!   with a stylesheet of `n` rules, each selecting the next level. CTG and
//!   TVQ stay linear in `n`; composition time should track the paper's
//!   polynomial bound `O(|v|³ · max_a · max_b)` far below its worst case.
//! * **Fans** ([`fan_stylesheet`]) — every rule fires `k` apply-templates
//!   at the *same* child, so each CTG node has `k` incoming edges and the
//!   TVQ duplicates `k^depth` nodes: the §4.5 exponential case that the
//!   composition budget guards against.

use xvc_rel::{parse_query, ColumnDef, ColumnType, Database, TableSchema, Value};
use xvc_view::{SchemaTree, ViewNode};
use xvc_xpath::{parse_path, parse_pattern};
use xvc_xslt::{ApplyTemplates, OutputNode, Stylesheet, TemplateRule, DEFAULT_MODE};

/// Table name for chain level `k` (0-based).
pub(crate) fn level_table(k: usize) -> String {
    format!("t{k}")
}

/// Element tag for chain level `k`.
fn level_tag(k: usize) -> String {
    format!("level{k}")
}

/// A chain view of `depth` levels: `level0` rows at the top, each deeper
/// level keyed to its parent.
pub fn chain_view(depth: usize) -> SchemaTree {
    assert!(depth >= 1);
    let mut v = SchemaTree::new();
    let mut parent = v
        .add_root_node(ViewNode::new(
            1,
            level_tag(0),
            "b0",
            parse_query(&format!("SELECT id, val FROM {}", level_table(0))).unwrap(),
        ))
        .unwrap();
    for k in 1..depth {
        parent = v
            .add_child(
                parent,
                ViewNode::new(
                    (k + 1) as u32,
                    level_tag(k),
                    format!("b{k}"),
                    parse_query(&format!(
                        "SELECT id, val FROM {} WHERE parent_id = $b{}.id",
                        level_table(k),
                        k - 1
                    ))
                    .unwrap(),
                ),
            )
            .unwrap();
    }
    v
}

/// A stylesheet walking the chain: one rule per level, each wrapping its
/// result and applying templates to the next level.
pub fn chain_stylesheet(depth: usize) -> Stylesheet {
    fan_stylesheet(depth, 1)
}

/// Like [`chain_stylesheet`], but each rule fires `fan` identical
/// apply-templates nodes — `fan ≥ 2` triggers TVQ duplication (`fan^depth`
/// nodes).
pub fn fan_stylesheet(depth: usize, fan: usize) -> Stylesheet {
    let mut rules = vec![TemplateRule::new(
        parse_pattern("/").unwrap(),
        vec![OutputNode::Element {
            name: "root_out".into(),
            attrs: vec![],
            children: vec![OutputNode::ApplyTemplates(ApplyTemplates::new(
                parse_path(&level_tag(0)).unwrap(),
            ))],
        }],
    )];
    for k in 0..depth {
        let mut children: Vec<OutputNode> = Vec::new();
        if k + 1 < depth {
            for _ in 0..fan {
                children.push(OutputNode::ApplyTemplates(ApplyTemplates::new(
                    parse_path(&level_tag(k + 1)).unwrap(),
                )));
            }
        } else {
            children.push(OutputNode::ValueOf {
                select: xvc_xpath::parse_expr(".").unwrap(),
                span: Default::default(),
            });
        }
        let mut rule = TemplateRule::new(
            parse_pattern(&level_tag(k)).unwrap(),
            vec![OutputNode::Element {
                name: format!("out{k}"),
                attrs: vec![],
                children,
            }],
        );
        rule.mode = DEFAULT_MODE.to_owned();
        rules.push(rule);
    }
    Stylesheet { rules }
}

/// A database instance for a chain of `depth` levels with `fanout` child
/// rows per parent row (level 0 has `fanout` rows).
pub fn chain_database(depth: usize, fanout: usize) -> Database {
    let mut db = Database::new();
    for k in 0..depth {
        db.create_table(
            TableSchema::new(
                level_table(k),
                vec![
                    ColumnDef::new("id", ColumnType::Int),
                    ColumnDef::new("parent_id", ColumnType::Int),
                    ColumnDef::new("val", ColumnType::Int),
                ],
            )
            .unwrap(),
        );
    }
    let mut next_id = 1i64;
    let mut parents: Vec<i64> = vec![0];
    for k in 0..depth {
        let mut level_ids = Vec::new();
        for &p in &parents {
            for j in 0..fanout {
                let id = next_id;
                next_id += 1;
                db.insert(
                    &level_table(k),
                    vec![
                        Value::Int(id),
                        Value::Int(p),
                        Value::Int((id * 7 + j as i64) % 100),
                    ],
                )
                .unwrap();
                level_ids.push(id);
            }
        }
        parents = level_ids;
    }
    db
}

/// The catalog for [`chain_view`] of the given depth.
pub fn chain_catalog(depth: usize) -> xvc_rel::Catalog {
    chain_database(depth, 0).catalog()
}

/// A three-level "needle" instance for the storage/access-path scale
/// study: `region → customer → orders`, sized by the three fan-outs
/// (total rows = `regions · (1 + customers · (1 + orders))`). The view
/// from [`needle_view`] touches one region's subtree, so a full scan pays
/// for the whole instance while an index lookup pays only for the needle.
pub fn needle_database(
    regions: usize,
    customers_per_region: usize,
    orders_per_customer: usize,
) -> Database {
    let mut db = Database::new();
    db.create_table(
        TableSchema::new(
            "region",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        )
        .unwrap(),
    );
    db.create_table(
        TableSchema::new(
            "customer",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("region_id", ColumnType::Int),
                ColumnDef::new("name", ColumnType::Str),
            ],
        )
        .unwrap(),
    );
    db.create_table(
        TableSchema::new(
            "orders",
            vec![
                ColumnDef::new("id", ColumnType::Int),
                ColumnDef::new("customer_id", ColumnType::Int),
                ColumnDef::new("total", ColumnType::Int),
            ],
        )
        .unwrap(),
    );
    let mut customer_id = 0i64;
    let mut order_id = 0i64;
    for r in 0..regions as i64 {
        db.insert(
            "region",
            vec![Value::Int(r), Value::Str(format!("region-{r}"))],
        )
        .unwrap();
        for _ in 0..customers_per_region {
            let c = customer_id;
            customer_id += 1;
            db.insert(
                "customer",
                vec![
                    Value::Int(c),
                    Value::Int(r),
                    Value::Str(format!("customer-{c}")),
                ],
            )
            .unwrap();
            for _ in 0..orders_per_customer {
                let o = order_id;
                order_id += 1;
                db.insert(
                    "orders",
                    vec![
                        Value::Int(o),
                        Value::Int(c),
                        Value::Int((o * 7 + 13) % 1000),
                    ],
                )
                .unwrap();
            }
        }
    }
    db
}

/// The equality-pushdown view over [`needle_database`]: one region picked
/// by name, its customers by foreign key, their orders by foreign key —
/// every tag query is exactly the shape the planner's index-access
/// selection targets.
pub fn needle_view(region_name: &str) -> SchemaTree {
    let mut v = SchemaTree::new();
    let region = v
        .add_root_node(ViewNode::new(
            1,
            "region",
            "r",
            parse_query(&format!(
                "SELECT id, name FROM region WHERE name = '{region_name}'"
            ))
            .unwrap(),
        ))
        .unwrap();
    let customer = v
        .add_child(
            region,
            ViewNode::new(
                2,
                "customer",
                "c",
                parse_query("SELECT id, name FROM customer WHERE region_id = $r.id").unwrap(),
            ),
        )
        .unwrap();
    v.add_child(
        customer,
        ViewNode::new(
            3,
            "order",
            "o",
            parse_query("SELECT id, total FROM orders WHERE customer_id = $c.id").unwrap(),
        ),
    )
    .unwrap();
    v
}

/// The breadth variant of [`needle_view`] for the streaming-emission
/// study: *every* region, its customers and their orders. Document size
/// scales linearly with the region count while each root-level subtree
/// stays a fixed size — exactly the shape where streamed emission's peak
/// memory (bounded by the largest subtree) stays flat as the materialized
/// document grows.
pub fn all_regions_view() -> SchemaTree {
    let mut v = SchemaTree::new();
    let region = v
        .add_root_node(ViewNode::new(
            1,
            "region",
            "r",
            parse_query("SELECT id, name FROM region").unwrap(),
        ))
        .unwrap();
    let customer = v
        .add_child(
            region,
            ViewNode::new(
                2,
                "customer",
                "c",
                parse_query("SELECT id, name FROM customer WHERE region_id = $r.id").unwrap(),
            ),
        )
        .unwrap();
    v.add_child(
        customer,
        ViewNode::new(
            3,
            "order",
            "o",
            parse_query("SELECT id, total FROM orders WHERE customer_id = $c.id").unwrap(),
        ),
    )
    .unwrap();
    v
}

/// A copy of `db` carrying the scale study's secondary indexes: a btree on
/// the region-name needle and hash indexes on both foreign keys (both
/// index kinds on the hot path).
pub fn needle_indexed(db: &Database) -> Database {
    let mut out = db.clone();
    out.create_index("region", "name", xvc_rel::IndexKind::BTree)
        .unwrap();
    out.create_index("customer", "region_id", xvc_rel::IndexKind::Hash)
        .unwrap();
    out.create_index("orders", "customer_id", xvc_rel::IndexKind::Hash)
        .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_core::{Composer, Error};
    use xvc_view::Engine;
    use xvc_xml::documents_equal_unordered;
    use xvc_xslt::process;

    #[test]
    fn chain_composes_and_is_equivalent() {
        for depth in [1, 3, 6] {
            let v = chain_view(depth);
            let x = chain_stylesheet(depth);
            let db = chain_database(depth, 2);
            let composed = Composer::new(&v, &x, &db.catalog())
                .run()
                .unwrap_or_else(|e| panic!("depth {depth}: {e}"))
                .view;
            let full = Engine::new(&v).session().publish(&db).unwrap().document;
            let expected = process(&x, &full).unwrap();
            let actual = Engine::new(&composed)
                .session()
                .publish(&db)
                .unwrap()
                .document;
            assert!(
                documents_equal_unordered(&expected, &actual),
                "depth {depth}:\n{}\nvs\n{}",
                expected.to_xml(),
                actual.to_xml()
            );
        }
    }

    #[test]
    fn fan_duplicates_tvq_exponentially() {
        // fan 2, depth 3 → 2^0 + 2^1 + 2^2 = 7 level nodes (+1 root entry).
        let v = chain_view(3);
        let x = fan_stylesheet(3, 2);
        let ctg = xvc_core::build_ctg(&v, &x).unwrap();
        let tvq = xvc_core::build_tvq(&v, &x, &ctg, &chain_catalog(3), 10_000).unwrap();
        assert_eq!(tvq.nodes.len(), 1 + 7);
        // CTG itself stays linear.
        assert_eq!(ctg.nodes.len(), 1 + 3);
    }

    #[test]
    fn fan_equivalence_holds_despite_duplication() {
        let v = chain_view(3);
        let x = fan_stylesheet(3, 2);
        let db = chain_database(3, 2);
        let composed = Composer::new(&v, &x, &db.catalog()).run().unwrap().view;
        let full = Engine::new(&v).session().publish(&db).unwrap().document;
        let expected = process(&x, &full).unwrap();
        let actual = Engine::new(&composed)
            .session()
            .publish(&db)
            .unwrap()
            .document;
        assert!(documents_equal_unordered(&expected, &actual));
    }

    #[test]
    fn budget_stops_fan_blowup() {
        let v = chain_view(12);
        let x = fan_stylesheet(12, 2);
        let result = Composer::new(&v, &x, &chain_catalog(12))
            .tvq_limit(500)
            .run();
        assert!(matches!(result, Err(Error::TvqTooLarge { limit: 500 })));
    }

    #[test]
    fn chain_database_sizes() {
        let db = chain_database(3, 2);
        assert_eq!(db.table("t0").unwrap().len(), 2);
        assert_eq!(db.table("t1").unwrap().len(), 4);
        assert_eq!(db.table("t2").unwrap().len(), 8);
    }

    #[test]
    fn needle_workload_sizes_and_backend_agreement() {
        let db = needle_database(5, 4, 3);
        assert_eq!(db.table("region").unwrap().len(), 5);
        assert_eq!(db.table("customer").unwrap().len(), 20);
        assert_eq!(db.table("orders").unwrap().len(), 60);

        let v = needle_view("region-2");
        let doc = Engine::new(&v).session().publish(&db).unwrap().document;
        // One region, its 4 customers, their 12 orders.
        assert_eq!(doc.to_xml().matches("<customer").count(), 4);
        assert_eq!(doc.to_xml().matches("<order").count(), 12);

        // Indexed and paged instances publish the identical document.
        let indexed = needle_indexed(&db);
        let idx_out = Engine::new(&v).session().publish(&indexed).unwrap();
        assert_eq!(doc.to_xml(), idx_out.document.to_xml());
        assert!(idx_out.eval.index_lookups > 0, "{:?}", idx_out.eval);
        let paged = db.to_backend(xvc_rel::Backend::paged()).unwrap();
        let paged_doc = Engine::new(&v).session().publish(&paged).unwrap().document;
        assert_eq!(doc.to_xml(), paged_doc.to_xml());
    }
}
