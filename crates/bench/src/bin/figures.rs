//! Regenerates every paper figure and the deferred-evaluation tables.
//!
//! ```text
//! cargo run -p xvc-bench --bin figures --release            # everything
//! cargo run -p xvc-bench --bin figures --release -- figures # figures only
//! cargo run -p xvc-bench --bin figures --release -- tables  # tables only
//! cargo run -p xvc-bench --bin figures --release -- prune   # BENCH_compose.json only
//! cargo run -p xvc-bench --bin figures --release -- plans   # same, plan-focused report
//! cargo run -p xvc-bench --bin figures --release -- batch   # + set-oriented study
//! cargo run -p xvc-bench --bin figures --release -- scale        # storage/index study
//! cargo run -p xvc-bench --bin figures --release -- scale smoke  # reduced CI sizes
//! cargo run -p xvc-bench --bin figures --release -- incr         # delta-publish study
//! cargo run -p xvc-bench --bin figures --release -- incr smoke   # reduced CI sizes
//! cargo run -p xvc-bench --bin figures --release -- fuzz         # differential gate
//! cargo run -p xvc-bench --bin figures --release -- stream       # emission study
//! cargo run -p xvc-bench --bin figures --release -- stream smoke # reduced CI sizes
//! ```
//!
//! Modes live in a single registry ([`MODES`]) that declares each mode's
//! implications (`batch` → `plans` → `prune`) and whether it belongs to
//! the bare-invocation default set; selection is the transitive closure,
//! and an unknown mode is a hard usage error instead of silently
//! selecting nothing.
//!
//! `plans` runs the same two workloads as `prune` (every row carries both
//! field sets, so BENCH_compose.json is always a superset) but reports the
//! prepared-vs-interpreted comparison and enforces the plan-cache invariant:
//! a warm publish that misses the cache is a hard failure.
//!
//! `batch` implies `plans` and adds the set-oriented publishing study: a
//! deep fan-out chain where the tuple-at-a-time publisher runs `Σ fanout^k`
//! tag queries while the batched publisher runs one per level. Divergence
//! between the two documents, or a batched run slower than scalar on that
//! workload, is a hard failure.
//!
//! `scale` runs the storage/access-path study: the selective needle view
//! published against the same instance in-memory, paged through the buffer
//! pool, and with secondary indexes (10⁵–10⁶ rows; `smoke` shrinks the
//! sizes for CI). Documents must be byte-identical across backends, and at
//! the largest size the index path must beat the full scan — either
//! failure aborts the run. `BENCH_compose.json` collects whichever studies
//! ran, one JSON object per row.
//!
//! `incr` runs the I1 incremental-maintenance study: a single-row insert
//! through the `xvc_rel` write path, absorbed by a full republish and by
//! `Session::republish_delta` over the static dependency map. The delta
//! document must be byte-identical, the re-executed batch count must not
//! grow with instance size, and at the largest size the delta path must
//! re-run under 20% of the full batch count — any failure aborts.
//!
//! `fuzz` runs the recursion-heavy and wide-fanout stylesheet generators
//! differentially: `v'(I)` vs `x(v(I))`, the bound-driven publisher vs
//! the heuristic path (byte-identical documents required), and measured
//! batch sizes vs the static cardinality bounds. Any divergence aborts.
//!
//! `stream` runs the emission study: the same publish delivered by
//! materialize-then-serialize and by `Session::publish_to`, across a 10×
//! document-size sweep at fixed root-subtree size. Streamed bytes must be
//! identical, streamed emission must not be slower at the largest size,
//! and the streamed peak-allocation track must stay flat (within 2×)
//! while the materialized peak grows with the document — any failure
//! aborts.

use std::collections::BTreeSet;

use xvc_bench::experiments::{
    batch_bench, c1_chain_sweep, c2_fan_sweep, differential_fuzz, e1_scale_sweep,
    e3_selectivity_sweep, incr_sweep, prune_bench, render_comparison_table, render_cost_table,
    render_incr_objects, render_json_array, render_prune_objects, render_scale_objects,
    render_stream_objects, scale_sweep, stream_sweep, SCALE_FULL, SCALE_SMOKE, STREAM_FULL,
    STREAM_SMOKE,
};
use xvc_bench::figures::all_figures;

/// One selectable run mode: its name, the modes it transitively implies
/// (a mode's report builds on its implied modes' rows — `batch` extends
/// the `plans` report which extends `prune`), and whether the bare
/// invocation (no argument) runs it.
struct Mode {
    name: &'static str,
    implies: &'static [&'static str],
    default: bool,
}

/// The registry. Implications are declared here — nowhere else — so a new
/// mode composes without touching the selection logic. A default mode's
/// implied modes run with it (closure over the whole set).
const MODES: &[Mode] = &[
    Mode {
        name: "figures",
        implies: &[],
        default: true,
    },
    Mode {
        name: "tables",
        implies: &[],
        default: true,
    },
    Mode {
        name: "prune",
        implies: &[],
        default: false,
    },
    Mode {
        name: "plans",
        implies: &["prune"],
        default: false,
    },
    Mode {
        name: "batch",
        implies: &["plans"],
        default: true,
    },
    Mode {
        name: "scale",
        implies: &[],
        default: true,
    },
    Mode {
        name: "incr",
        implies: &[],
        default: true,
    },
    Mode {
        name: "fuzz",
        implies: &[],
        default: true,
    },
    Mode {
        name: "stream",
        implies: &[],
        default: true,
    },
];

/// Resolves a requested mode (or `""` for the default set) into the
/// transitive closure of active mode names. Unknown names are an error —
/// previously they silently selected nothing and the run "passed".
fn active_modes(arg: &str) -> Result<BTreeSet<&'static str>, String> {
    let mut active: BTreeSet<&'static str> = BTreeSet::new();
    let mut frontier: Vec<&'static str> = if arg.is_empty() {
        MODES.iter().filter(|m| m.default).map(|m| m.name).collect()
    } else {
        let m = MODES.iter().find(|m| m.name == arg).ok_or_else(|| {
            let known: Vec<&str> = MODES.iter().map(|m| m.name).collect();
            format!("unknown mode `{arg}` — known modes: {}", known.join(", "))
        })?;
        vec![m.name]
    };
    while let Some(name) = frontier.pop() {
        if !active.insert(name) {
            continue;
        }
        let m = MODES
            .iter()
            .find(|m| m.name == name)
            .expect("implied modes are registered");
        frontier.extend(m.implies);
    }
    Ok(active)
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_default();
    let smoke = std::env::args().nth(2).as_deref() == Some("smoke");
    let active = match active_modes(&arg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let on = |name: &str| active.contains(name);
    let (figures, tables) = (on("figures"), on("tables"));
    let (prune, plans, batch) = (on("prune"), on("plans"), on("batch"));
    let (scale, incr, fuzz, stream) = (on("scale"), on("incr"), on("fuzz"), on("stream"));

    if figures {
        for (title, body) in all_figures() {
            println!("==== {title} ====");
            println!("{body}");
        }
    }

    if tables {
        println!("==== E1/E2: naive x(v(I)) vs composed v'(I), scale sweep ====\n");
        let rows = e1_scale_sweep(&[1, 2, 4, 8, 16], 3);
        println!(
            "{}",
            render_comparison_table(
                "E1/E2 — Figure 1 view x Figure 4 stylesheet",
                "scale",
                &rows
            )
        );

        println!("==== E3: hotel-level selectivity sweep (scale 4) ====\n");
        let rows = e3_selectivity_sweep(&[10, 25, 50, 75, 100], 3);
        println!(
            "{}",
            render_comparison_table("E3 — luxury fraction (%)", "percent", &rows)
        );

        println!("==== C1: composition cost, chain depth (polynomial regime) ====\n");
        let rows = c1_chain_sweep(&[2, 4, 8, 16, 32, 64], 3);
        println!("{}", render_cost_table("C1 — chain views", "depth", &rows));

        println!("==== C2: TVQ duplication, fan-out (exponential regime, depth 6) ====\n");
        let rows = c2_fan_sweep(6, &[1, 2, 3], 3);
        println!(
            "{}",
            render_cost_table("C2 — fan stylesheets", "fan", &rows)
        );
    }

    let mut json_objects: Vec<String> = Vec::new();

    if prune {
        println!("==== prune: §4.2.1 predicate-dataflow pass (BENCH_compose.json) ====\n");
        let mut rows = prune_bench(4, 3);
        for r in &rows {
            println!(
                "{}: TVQ {} -> {} nodes, {} conjunct(s) dropped; \
                 compose {:.3} -> {:.3} ms, eval {:.3} -> {:.3} ms",
                r.workload,
                r.tvq_nodes_before,
                r.tvq_nodes_after,
                r.conjuncts_eliminated,
                r.compose_plain_ms,
                r.compose_prune_ms,
                r.eval_plain_ms,
                r.eval_prune_ms,
            );
        }
        if plans {
            println!("\n==== plans: prepared vs interpreted publishing ====\n");
            for r in &rows {
                println!(
                    "{}: eval interpreted {:.3} ms vs prepared {:.3} ms ({:.2}x); \
                     warm plan-cache hit rate {:.0}%",
                    r.workload,
                    r.eval_interpreted_ms,
                    r.eval_prepared_ms,
                    r.eval_interpreted_ms / r.eval_prepared_ms,
                    r.plan_cache_hit_rate * 100.0,
                );
                assert!(
                    r.plan_cache_hit_rate > 0.0,
                    "{}: warm publish missed the plan cache — caching is broken",
                    r.workload
                );
            }
        }
        if batch {
            println!("\n==== batch: set-oriented vs tuple-at-a-time publishing ====\n");
            // Depth 5, fan-out 4: the scalar publisher runs 1+4+16+64+256
            // tag queries per publish; the batched one runs one per level.
            let fanout_row = batch_bench(5, 4, 3);
            rows.push(fanout_row);
            for r in &rows {
                println!(
                    "{}: eval scalar {:.3} ms vs batched {:.3} ms ({:.2}x); \
                     {} batches, {} max bindings/batch",
                    r.workload,
                    r.eval_scalar_ms,
                    r.eval_batched_ms,
                    r.eval_scalar_ms / r.eval_batched_ms,
                    r.batches_executed,
                    r.bindings_per_batch_max,
                );
            }
            // The publisher-internal document check already gates on
            // divergence; here, the fan-out workload must also show the
            // set-oriented win the refactor exists for.
            let r = rows.last().expect("fan-out row");
            assert!(
                r.eval_batched_ms <= r.eval_scalar_ms,
                "{}: batched ({:.3} ms) slower than scalar ({:.3} ms) — \
                 set-oriented publishing regressed",
                r.workload,
                r.eval_batched_ms,
                r.eval_scalar_ms
            );
        }

        json_objects.extend(render_prune_objects(&rows));
    }

    if scale {
        let configs = if smoke { SCALE_SMOKE } else { SCALE_FULL };
        println!("\n==== scale: in-memory vs paged vs indexed access paths ====\n");
        let srows = scale_sweep(configs, 3);
        for r in &srows {
            println!(
                "{}: mem {:.3} ms, paged {:.3} ms, indexed {:.3} ms ({:.2}x vs mem), \
                 paged+indexed {:.3} ms; rows scanned {} -> {}, {} index probes",
                r.workload,
                r.eval_mem_ms,
                r.eval_paged_ms,
                r.eval_indexed_ms,
                r.eval_mem_ms / r.eval_indexed_ms,
                r.eval_paged_indexed_ms,
                r.scan_rows_scanned,
                r.indexed_rows_scanned,
                r.index_lookups,
            );
        }
        // `scale_bench` itself gates on cross-backend document divergence;
        // here the largest instance must also show the index win the
        // storage layer exists for.
        let r = srows.last().expect("scale row");
        assert!(
            r.eval_indexed_ms <= r.eval_mem_ms,
            "{}: indexed ({:.3} ms) slower than full scan ({:.3} ms) — \
             index access paths regressed",
            r.workload,
            r.eval_indexed_ms,
            r.eval_mem_ms
        );
        assert!(
            r.indexed_rows_scanned < r.scan_rows_scanned,
            "{}: index path scanned {} rows, full scan {} — no selectivity win",
            r.workload,
            r.indexed_rows_scanned,
            r.scan_rows_scanned
        );
        json_objects.extend(render_scale_objects(&srows));
    }

    if incr {
        println!("\n==== incr: delta publish vs full republish (I1) ====\n");
        // Ascending instance size at fixed structure: the delta path's
        // re-executed batch count is structural (one per affected view
        // node and wave), so it must NOT grow with the document.
        let configs: &[(usize, usize)] = if smoke {
            &[(6, 2), (6, 3)]
        } else {
            &[(6, 3), (6, 4)]
        };
        // incr_bench itself hard-fails on delta/full divergence or a
        // delta that re-runs every batch.
        let irows = incr_sweep(configs, 3);
        for r in &irows {
            println!(
                "{}: full republish {:.3} ms vs delta {:.3} ms ({:.2}x); \
                 {} of {} batches re-executed ({:.0}%), {} nodes respliced",
                r.workload,
                r.eval_full_republish_ms,
                r.eval_delta_ms,
                r.eval_full_republish_ms / r.eval_delta_ms,
                r.batches_delta,
                r.batches_full,
                r.reexecution_fraction() * 100.0,
                r.nodes_respliced,
            );
        }
        let (first, last) = (
            irows.first().expect("incr row"),
            irows.last().expect("incr row"),
        );
        assert!(
            last.batches_delta <= first.batches_delta,
            "delta re-execution grew with document size ({} -> {} batches) — \
             the dependency map stopped bounding the re-publish",
            first.batches_delta,
            last.batches_delta
        );
        assert!(
            last.reexecution_fraction() < 0.2,
            "{}: delta path re-ran {:.0}% of the full batch count — \
             incremental publishing regressed",
            last.workload,
            last.reexecution_fraction() * 100.0
        );
        json_objects.extend(render_incr_objects(&irows));
    }

    if fuzz {
        println!("\n==== fuzz: differential generator gate (v'(I) = x(v(I))) ====\n");
        // 48 seeds per preset; the function itself aborts on divergence,
        // on a bounded/heuristic document mismatch, or on a measured
        // batch exceeding its static cardinality bound.
        let s = differential_fuzz(48);
        println!(
            "{} workloads checked ({} with a finite static batch bound); \
             largest measured batch {}",
            s.workloads, s.finite_batch_bounds, s.max_batch_seen,
        );
        assert!(
            s.max_batch_seen > 1,
            "fuzz corpus never exercised a multi-binding batch — \
             the wide-fanout preset has regressed"
        );
    }

    if stream {
        println!("\n==== stream: materialize-then-serialize vs streamed emission ====\n");
        // Ascending document size at fixed root-subtree size: streamed
        // emission's tracked peak is bounded by the largest subtree, so
        // it must stay (nearly) flat across the 10x sweep while the
        // materialized peak grows with the document. stream_bench itself
        // hard-fails on any byte divergence from Document::to_xml().
        let configs = if smoke { STREAM_SMOKE } else { STREAM_FULL };
        let reps = if smoke { 5 } else { 3 };
        let trows = stream_sweep(configs, reps);
        for r in &trows {
            println!(
                "{}: emit materialized {:.3} ms vs streamed {:.3} ms ({:.2}x); \
                 peak {} -> {} bytes ({:.1}x smaller), document {} bytes",
                r.workload,
                r.emit_materialized_ms,
                r.emit_streamed_ms,
                r.emit_materialized_ms / r.emit_streamed_ms,
                r.peak_track_bytes_materialized,
                r.peak_track_bytes_streamed,
                r.peak_track_bytes_materialized as f64 / r.peak_track_bytes_streamed as f64,
                r.doc_bytes,
            );
        }
        let (first, last) = (
            trows.first().expect("stream row"),
            trows.last().expect("stream row"),
        );
        // Both timings include the identical relational publish (the
        // dominant term at the largest size), so this comparison carries
        // that term's run-to-run noise on a shared box; the gate is an
        // anti-regression tripwire with 25% slack, not the study's claim.
        // The structural claim is the flat peak asserted below.
        assert!(
            last.emit_streamed_ms <= last.emit_materialized_ms * 1.25,
            "{}: streamed emission ({:.3} ms) more than 25% slower than \
             materialize-then-serialize ({:.3} ms) — streaming regressed",
            last.workload,
            last.emit_streamed_ms,
            last.emit_materialized_ms
        );
        assert!(
            last.peak_track_bytes_streamed <= first.peak_track_bytes_streamed.saturating_mul(2),
            "streamed emission peak grew with document size ({} -> {} bytes across a \
             10x sweep) — per-task buffer reuse regressed",
            first.peak_track_bytes_streamed,
            last.peak_track_bytes_streamed
        );
        assert!(
            last.peak_track_bytes_materialized >= first.peak_track_bytes_materialized * 4,
            "materialized peak did not grow with document size ({} -> {} bytes) — \
             the sweep no longer exercises the contrast the study exists for",
            first.peak_track_bytes_materialized,
            last.peak_track_bytes_materialized
        );
        json_objects.extend(render_stream_objects(&trows));
    }

    if !json_objects.is_empty() {
        let json = render_json_array(&json_objects);
        std::fs::write("BENCH_compose.json", &json).expect("write BENCH_compose.json");
        println!("\nwrote BENCH_compose.json");
    }
}
