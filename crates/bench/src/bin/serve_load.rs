//! `serve_load` — load driver for `xvc serve`.
//!
//! Opens `--clients` keep-alive connections against a running server and
//! hammers `GET /publish` for `--seconds`, measuring per-request latency
//! client-side. Every response body is compared (trimmed) against a
//! reference document — `--expected FILE` when given, otherwise the first
//! response — so a single divergent byte under concurrency fails the run.
//! The warm plan-cache hit rate is computed from the server's own
//! `/stats` counters as Δhits / (Δhits + Δprepared) across the timed
//! window; on a warm engine it must be exactly 1.0.
//!
//! Results land in `--out` (default `BENCH_serve.json`):
//!
//! ```json
//! { "clients": 4, "seconds": 2.0, "requests": 1234, "errors": 0,
//!   "divergent": 0, "throughput_rps": 617.0, "p50_ms": 3.1,
//!   "p99_ms": 9.8, "warm_plan_cache_hit_rate": 1.0 }
//! ```
//!
//! Exit code: 0 only when every request succeeded and no response
//! diverged — the CI smoke greps the artifact *and* relies on this.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    clients: usize,
    seconds: f64,
    expected: Option<String>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7070".to_owned(),
        clients: 4,
        seconds: 2.0,
        expected: None,
        out: "BENCH_serve.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs an argument"));
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--clients" => {
                args.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?;
            }
            "--seconds" => {
                args.seconds = value("--seconds")?
                    .parse()
                    .map_err(|e| format!("--seconds: {e}"))?;
            }
            "--expected" => args.expected = Some(value("--expected")?),
            "--out" => args.out = value("--out")?,
            other => {
                return Err(format!(
                    "unknown flag `{other}`\nusage: serve_load [--addr HOST:PORT] [--clients N] \
                     [--seconds S] [--expected FILE] [--out FILE]"
                ))
            }
        }
    }
    if args.clients == 0 {
        return Err("--clients must be at least 1".to_owned());
    }
    Ok(args)
}

/// One keep-alive HTTP/1.1 connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one request, returns (status, body).
    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: xvc\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.writer.write_all(head.as_bytes())?;
        self.writer.write_all(body.as_bytes())?;
        self.writer.flush()?;
        let mut line = String::new();
        self.reader.read_line(&mut line)?;
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line: {line:?}")))?;
        let mut content_length = 0usize;
        let mut chunked = false;
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(std::io::Error::other("connection closed mid-response"));
            }
            let header = header.trim();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value
                        .trim()
                        .parse()
                        .map_err(|e| std::io::Error::other(format!("content-length: {e}")))?;
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    chunked = value.trim().eq_ignore_ascii_case("chunked");
                }
            }
        }
        let buf = if chunked {
            self.read_chunked_body()?
        } else {
            let mut buf = vec![0u8; content_length];
            self.reader.read_exact(&mut buf)?;
            buf
        };
        String::from_utf8(buf)
            .map(|body| (status, body))
            .map_err(|e| std::io::Error::other(format!("non-UTF-8 body: {e}")))
    }

    /// Decodes a `Transfer-Encoding: chunked` body (`GET /publish`
    /// streams). A connection closed before the terminal zero-length chunk
    /// is a truncated response and errors out — counted against the run.
    fn read_chunked_body(&mut self) -> std::io::Result<Vec<u8>> {
        let mut body = Vec::new();
        loop {
            let mut size_line = String::new();
            if self.reader.read_line(&mut size_line)? == 0 {
                return Err(std::io::Error::other("truncated chunked body"));
            }
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|e| std::io::Error::other(format!("chunk size: {e}")))?;
            let mut chunk = vec![0u8; size + 2]; // data + trailing CRLF
            self.reader.read_exact(&mut chunk)?;
            if &chunk[size..] != b"\r\n" {
                return Err(std::io::Error::other("chunk not CRLF-terminated"));
            }
            chunk.truncate(size);
            if size == 0 {
                return Ok(body);
            }
            body.extend_from_slice(&chunk);
        }
    }
}

/// Pulls an integer counter out of the server's flat `/stats` JSON.
fn json_counter(stats: &str, key: &str) -> Option<u64> {
    let start = stats.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = &stats[start..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// What one client thread brings home.
#[derive(Default)]
struct ClientResult {
    latencies_ms: Vec<f64>,
    errors: u64,
    divergent: u64,
}

fn run_client(addr: &str, expected: &str, deadline: Instant, stop: &AtomicBool) -> ClientResult {
    let mut result = ClientResult::default();
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            result.errors += 1;
            return result;
        }
    };
    while Instant::now() < deadline && !stop.load(Ordering::Relaxed) {
        let start = Instant::now();
        match client.request("GET", "/publish", "") {
            Ok((200, body)) => {
                result
                    .latencies_ms
                    .push(start.elapsed().as_secs_f64() * 1e3);
                if body.trim() != expected {
                    result.divergent += 1;
                }
            }
            Ok((_, _)) => result.errors += 1,
            Err(_) => {
                result.errors += 1;
                // One reconnect attempt; a dead server fails fast because
                // connect errors also count.
                match Client::connect(addr) {
                    Ok(c) => client = c,
                    Err(_) => break,
                }
            }
        }
    }
    result
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0) * (sorted_ms.len() - 1) as f64;
    sorted_ms[rank.round() as usize]
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve_load: {e}");
            return ExitCode::from(2);
        }
    };

    // Wait for the server to come up (ci.sh starts it in the background).
    let mut probe = None;
    let wait_deadline = Instant::now() + Duration::from_secs(10);
    while probe.is_none() {
        match Client::connect(&args.addr) {
            Ok(mut c) => match c.request("GET", "/healthz", "") {
                Ok((200, _)) => probe = Some(c),
                _ => std::thread::sleep(Duration::from_millis(100)),
            },
            Err(e) => {
                if Instant::now() > wait_deadline {
                    eprintln!("serve_load: no server at {}: {e}", args.addr);
                    return ExitCode::FAILURE;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    let mut probe = probe.expect("probe connected");

    // Reference document: --expected file, else the first live response.
    // Either way one warming request runs before the stats snapshot, so
    // the timed window measures a warm plan cache.
    let warm = match probe.request("GET", "/publish", "") {
        Ok((200, body)) => body,
        Ok((status, body)) => {
            eprintln!("serve_load: warmup got {status}: {}", body.trim());
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("serve_load: warmup failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let expected = match &args.expected {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s.trim().to_owned(),
            Err(e) => {
                eprintln!("serve_load: --expected {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => warm.trim().to_owned(),
    };
    if warm.trim() != expected {
        eprintln!("serve_load: warmup response diverges from the expected document");
        return ExitCode::FAILURE;
    }

    let stats_before = match probe.request("GET", "/stats", "") {
        Ok((200, body)) => body,
        _ => {
            eprintln!("serve_load: /stats unavailable");
            return ExitCode::FAILURE;
        }
    };

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Instant::now() + Duration::from_secs_f64(args.seconds);
    let started = Instant::now();
    let results: Vec<ClientResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.clients)
            .map(|_| {
                let addr = args.addr.as_str();
                let expected = expected.as_str();
                let stop = Arc::clone(&stop);
                scope.spawn(move || run_client(addr, expected, deadline, &stop))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = started.elapsed().as_secs_f64();

    let stats_after = match probe.request("GET", "/stats", "") {
        Ok((200, body)) => body,
        _ => {
            eprintln!("serve_load: /stats unavailable after the run");
            return ExitCode::FAILURE;
        }
    };
    let delta = |key: &str| {
        json_counter(&stats_after, key)
            .zip(json_counter(&stats_before, key))
            .map(|(after, before)| after.saturating_sub(before))
    };
    let d_hits = delta("plan_cache_hits").unwrap_or(0);
    let d_prepared = delta("plans_prepared").unwrap_or(0);
    let warm_hit_rate = if d_hits + d_prepared == 0 {
        0.0
    } else {
        d_hits as f64 / (d_hits + d_prepared) as f64
    };

    let mut latencies: Vec<f64> = results
        .iter()
        .flat_map(|r| r.latencies_ms.iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let requests = latencies.len() as u64;
    let errors: u64 = results.iter().map(|r| r.errors).sum();
    let divergent: u64 = results.iter().map(|r| r.divergent).sum();
    let throughput = if elapsed > 0.0 {
        requests as f64 / elapsed
    } else {
        0.0
    };
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);

    let json = format!(
        concat!(
            "{{\n",
            "  \"addr\": \"{}\",\n",
            "  \"clients\": {},\n",
            "  \"seconds\": {:.3},\n",
            "  \"requests\": {},\n",
            "  \"errors\": {},\n",
            "  \"divergent\": {},\n",
            "  \"throughput_rps\": {:.1},\n",
            "  \"p50_ms\": {:.3},\n",
            "  \"p99_ms\": {:.3},\n",
            "  \"warm_plan_cache_hit_rate\": {:.6}\n",
            "}}\n"
        ),
        args.addr,
        args.clients,
        elapsed,
        requests,
        errors,
        divergent,
        throughput,
        p50,
        p99,
        warm_hit_rate,
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("serve_load: writing {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    print!("{json}");

    if errors > 0 || divergent > 0 || requests == 0 {
        eprintln!(
            "serve_load: FAILED ({requests} requests, {errors} errors, {divergent} divergent)"
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
