//! The evaluation the paper deferred ("We defer experimental evaluation
//! ... to future research", §1), realized as experiments E1–E3 and the
//! §4.5 complexity studies C1–C2 (see DESIGN.md / EXPERIMENTS.md).
//!
//! Every run first *verifies* `v'(I) = x(v(I))` and only then measures —
//! a benchmark row for unequal results would be meaningless.

use std::time::Instant;

use xvc_core::paper_fixtures::figure1_view;
use xvc_core::Composer;
use xvc_rel::Database;
use xvc_view::{Engine, SchemaTree};
use xvc_xml::documents_equal_unordered;
use xvc_xslt::{process, Stylesheet};

use crate::synthetic::{
    all_regions_view, chain_catalog, chain_stylesheet, chain_view, fan_stylesheet, needle_database,
    needle_indexed, needle_view,
};
use crate::workload::{generate, WorkloadConfig};

/// One measured comparison of the two evaluation strategies.
#[derive(Debug, Clone, Copy)]
pub struct ComparisonRow {
    /// Scale factor (or sweep parameter) of the instance.
    pub param: usize,
    /// Total database rows.
    pub db_rows: usize,
    /// Wall time for `x(v(I))`: publish the full view, run the engine.
    pub naive_ms: f64,
    /// Wall time for `v'(I)`: evaluate the composed view.
    pub composed_ms: f64,
    /// Elements materialized by the naive strategy (the full `v(I)`).
    pub naive_elements: usize,
    /// Elements materialized by the composed strategy (the result only).
    pub composed_elements: usize,
    /// Tag queries run by the naive strategy.
    pub naive_queries: usize,
    /// Tag queries run by the composed strategy.
    pub composed_queries: usize,
    /// Relational rows scanned materializing the full view `v(I)`.
    pub naive_rows_scanned: u64,
    /// Relational rows scanned evaluating the composed view `v'(I)`.
    pub composed_rows_scanned: u64,
}

impl ComparisonRow {
    /// naive / composed wall-time ratio.
    pub fn speedup(&self) -> f64 {
        self.naive_ms / self.composed_ms
    }
}

/// Runs both strategies on one (view, stylesheet, instance) triple,
/// verifying equality. Each strategy runs `reps` times; the best time is
/// reported (standard practice to suppress allocator noise).
pub fn compare(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    db: &Database,
    param: usize,
    reps: usize,
) -> ComparisonRow {
    let composed = Composer::new(view, stylesheet, &db.catalog())
        .run()
        .expect("stylesheet must compose")
        .view;

    // Verify once (the instrumented publish also measures engine work).
    // The same warm sessions serve the timed loops below, so the measured
    // state is the warm plan cache — the deployment steady state.
    let mut naive_pub = Engine::new(view).session();
    let mut composed_pub = Engine::new(&composed).session();
    let naive_out = naive_pub.publish(db).expect("publish v");
    let (full, naive_stats, naive_eval) = (naive_out.document, naive_out.stats, naive_out.eval);
    let expected = process(stylesheet, &full).expect("run x");
    let composed_out = composed_pub.publish(db).expect("publish v'");
    let (actual, composed_stats, composed_eval) =
        (composed_out.document, composed_out.stats, composed_out.eval);
    assert!(
        documents_equal_unordered(&expected, &actual),
        "v'(I) != x(v(I)) — benchmark would be meaningless"
    );

    let naive_ms = best_ms(reps, || {
        let full = naive_pub.publish(db).expect("publish v").document;
        let out = process(stylesheet, &full).expect("run x");
        std::hint::black_box(out);
    });
    let composed_ms = best_ms(reps, || {
        let out = composed_pub.publish(db).expect("publish v'").document;
        std::hint::black_box(out);
    });

    ComparisonRow {
        param,
        db_rows: db.total_rows(),
        naive_ms,
        composed_ms,
        naive_elements: naive_stats.elements,
        composed_elements: composed_stats.elements,
        naive_queries: naive_stats.queries_run,
        composed_queries: composed_stats.queries_run,
        naive_rows_scanned: naive_eval.rows_scanned,
        composed_rows_scanned: composed_eval.rows_scanned,
    }
}

fn best_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// E1/E2: naive vs composed across database scale, on the paper's running
/// example (Figure 1 view × Figure 4 stylesheet).
pub fn e1_scale_sweep(scales: &[usize], reps: usize) -> Vec<ComparisonRow> {
    let view = figure1_view();
    let stylesheet = xvc_xslt::parse_stylesheet(xvc_xslt::parse::FIGURE4_XSLT).expect("fixture");
    scales
        .iter()
        .map(|&s| {
            let db = generate(&WorkloadConfig::scale(s));
            compare(&view, &stylesheet, &db, s, reps)
        })
        .collect()
}

/// E3: stylesheet-selectivity sweep — the luxury fraction controls how
/// much of the document the stylesheet's path (through `hotel`) touches.
/// The naive strategy pays for the whole view regardless; the composed
/// strategy only pays for what the stylesheet selects.
pub fn e3_selectivity_sweep(fractions_percent: &[usize], reps: usize) -> Vec<ComparisonRow> {
    let view = figure1_view();
    let stylesheet = xvc_xslt::parse_stylesheet(xvc_xslt::parse::FIGURE4_XSLT).expect("fixture");
    fractions_percent
        .iter()
        .map(|&pct| {
            let db = generate(&WorkloadConfig::scale(4).with_luxury_fraction(pct as f64 / 100.0));
            compare(&view, &stylesheet, &db, pct, reps)
        })
        .collect()
}

/// One data point of the composition-cost studies.
#[derive(Debug, Clone, Copy)]
pub struct ComposeCostRow {
    /// Sweep parameter (chain depth).
    pub param: usize,
    /// |v| — schema-tree nodes.
    pub view_nodes: usize,
    /// |x| — template rules.
    pub rules: usize,
    /// TVQ nodes produced.
    pub tvq_nodes: usize,
    /// Composition wall time.
    pub compose_ms: f64,
}

/// C1: composition cost over chain depth (the polynomial regime of §4.5).
pub fn c1_chain_sweep(depths: &[usize], reps: usize) -> Vec<ComposeCostRow> {
    depths
        .iter()
        .map(|&d| {
            let v = chain_view(d);
            let x = chain_stylesheet(d);
            let catalog = chain_catalog(d);
            let ctg = xvc_core::build_ctg(&v, &x).expect("ctg");
            let tvq = xvc_core::build_tvq(&v, &x, &ctg, &catalog, 1_000_000).expect("tvq");
            let ms = best_ms(reps, || {
                let out = Composer::new(&v, &x, &catalog).run().expect("compose").view;
                std::hint::black_box(out);
            });
            ComposeCostRow {
                param: d,
                view_nodes: v.len(),
                rules: x.len(),
                tvq_nodes: tvq.nodes.len(),
                compose_ms: ms,
            }
        })
        .collect()
}

/// C2: TVQ duplication over fan-out (the exponential regime of §4.5).
/// Depth is fixed; the fan parameter sweeps; TVQ size is `Σ fan^k`.
pub fn c2_fan_sweep(depth: usize, fans: &[usize], reps: usize) -> Vec<ComposeCostRow> {
    fans.iter()
        .map(|&f| {
            let v = chain_view(depth);
            let x = fan_stylesheet(depth, f);
            let catalog = chain_catalog(depth);
            let ctg = xvc_core::build_ctg(&v, &x).expect("ctg");
            let tvq = xvc_core::build_tvq(&v, &x, &ctg, &catalog, 1_000_000).expect("tvq");
            let ms = best_ms(reps, || {
                let out = Composer::new(&v, &x, &catalog)
                    .tvq_limit(1_000_000)
                    .run()
                    .expect("compose")
                    .view;
                std::hint::black_box(out);
            });
            ComposeCostRow {
                param: f,
                view_nodes: v.len(),
                rules: x.len(),
                tvq_nodes: tvq.nodes.len(),
                compose_ms: ms,
            }
        })
        .collect()
}

/// One measured data point of the §4.2.1 predicate-dataflow prune study:
/// how much of the TVQ the prune pass removes on a workload, and what
/// that does to composition and evaluation wall time.
#[derive(Debug, Clone)]
pub struct PruneBenchRow {
    /// Human-readable workload name.
    pub workload: String,
    /// TVQ nodes without pruning.
    pub tvq_nodes_before: usize,
    /// TVQ nodes after pruning (strictly smaller when anything was dead).
    pub tvq_nodes_after: usize,
    /// Redundant conjuncts dropped from surviving tag queries.
    pub conjuncts_eliminated: usize,
    /// Composition wall time without pruning.
    pub compose_plain_ms: f64,
    /// Composition wall time with the prune pass enabled.
    pub compose_prune_ms: f64,
    /// Wall time evaluating the unpruned composed view.
    pub eval_plain_ms: f64,
    /// Wall time evaluating the pruned composed view.
    pub eval_prune_ms: f64,
    /// Wall time evaluating the pruned view through the tuple-at-a-time
    /// interpreter (`Engine::prepared(false)`).
    pub eval_interpreted_ms: f64,
    /// Wall time evaluating the pruned view through cached prepared plans
    /// (the default publisher path, warm cache).
    pub eval_prepared_ms: f64,
    /// Warm-publish plan-cache hit rate (1.0 when every lookup hits).
    pub plan_cache_hit_rate: f64,
    /// Wall time for the tuple-at-a-time publisher (`.batched(false)`),
    /// warm plan cache — one plan execution per parent binding.
    pub eval_scalar_ms: f64,
    /// Wall time for the set-oriented publisher (the default), warm plan
    /// cache — one `execute_batch` per (view node, frontier wave).
    pub eval_batched_ms: f64,
    /// Batched plan executions per publish (set-oriented path).
    pub batches_executed: usize,
    /// Largest binding relation joined in one batch.
    pub bindings_per_batch_max: usize,
}

/// A Figure-4 variant whose `hotel` branch demands `starrating < 3`
/// against the view's `starrating > 4` restriction (provably dead) and
/// whose surviving branch repeats an entailed conjunct.
const PRUNE_STUDY_XSLT: &str = r#"<xsl:stylesheet>
  <xsl:template match="/">
    <out><xsl:apply-templates select="metro"/></out>
  </xsl:template>
  <xsl:template match="metro">
    <m>
      <xsl:apply-templates select="hotel[@starrating &lt; 3]"/>
      <xsl:apply-templates select="confstat"/>
    </m>
  </xsl:template>
  <xsl:template match="hotel">
    <h><xsl:apply-templates select="confroom"/></h>
  </xsl:template>
  <xsl:template match="confroom"><xsl:value-of select="."/></xsl:template>
  <xsl:template match="confstat"><s/></xsl:template>
</xsl:stylesheet>"#;

/// Measures the prune pass on the clean Figure 4 workload (nothing to
/// remove — the overhead case) and on the dead-branch variant (the win
/// case). Both runs verify `v'(I) = x(v(I))` with pruning on before any
/// timing.
pub fn prune_bench(scale: usize, reps: usize) -> Vec<PruneBenchRow> {
    let view = figure1_view();
    let db = generate(&WorkloadConfig::scale(scale));
    let figure4 = xvc_xslt::parse_stylesheet(xvc_xslt::parse::FIGURE4_XSLT).expect("fixture");
    let dead = xvc_xslt::parse_stylesheet(PRUNE_STUDY_XSLT).expect("fixture");
    [
        ("figure4 (clean)", &figure4),
        ("figure4 + dead hotel branch", &dead),
    ]
    .into_iter()
    .map(|(name, stylesheet)| prune_compare(name, &view, stylesheet, &db, reps))
    .collect()
}

fn prune_compare(
    name: &str,
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    db: &Database,
    reps: usize,
) -> PruneBenchRow {
    let catalog = db.catalog();
    let plain_composition = Composer::new(view, stylesheet, &catalog)
        .run()
        .expect("compose");
    let (unpruned, before) = (plain_composition.view, plain_composition.stats);
    let pruned_composition = Composer::new(view, stylesheet, &catalog)
        .prune(true)
        .run()
        .expect("compose --prune");
    let (pruned, after) = (pruned_composition.view, pruned_composition.stats);

    // Verify before measuring, as everywhere else in this module. The
    // Sessions stay warm for the eval timing loops below.
    let mut view_pub = Engine::new(view).session();
    let mut unpruned_pub = Engine::new(&unpruned).session();
    let mut pruned_pub = Engine::new(&pruned).session();
    let full = view_pub.publish(db).expect("publish v").document;
    let expected = process(stylesheet, &full).expect("run x");
    let actual = pruned_pub.publish(db).expect("publish pruned v'").document;
    assert!(
        documents_equal_unordered(&expected, &actual),
        "pruned v'(I) != x(v(I)) — benchmark would be meaningless"
    );

    let compose_plain_ms = best_ms(reps, || {
        let out = Composer::new(view, stylesheet, &catalog)
            .run()
            .expect("compose")
            .view;
        std::hint::black_box(out);
    });
    let compose_prune_ms = best_ms(reps, || {
        let out = Composer::new(view, stylesheet, &catalog)
            .prune(true)
            .run()
            .expect("compose")
            .view;
        std::hint::black_box(out);
    });
    let eval_plain_ms = best_ms(reps, || {
        let out = unpruned_pub.publish(db).expect("publish v'").document;
        std::hint::black_box(out);
    });
    let eval_prune_ms = best_ms(reps, || {
        let out = pruned_pub.publish(db).expect("publish pruned v'").document;
        std::hint::black_box(out);
    });

    // Prepared vs interpreted execution of the same (pruned) view. The
    // interpreted publisher is warmed and verified like the others, so the
    // two loops differ only in the execution path.
    let mut interp_pub = Engine::new(&pruned).prepared(false).session();
    let interp_doc = interp_pub
        .publish(db)
        .expect("publish interpreted")
        .document;
    assert!(
        documents_equal_unordered(&expected, &interp_doc),
        "interpreted v'(I) != x(v(I)) — benchmark would be meaningless"
    );
    let eval_interpreted_ms = best_ms(reps, || {
        let out = interp_pub
            .publish(db)
            .expect("publish interpreted")
            .document;
        std::hint::black_box(out);
    });
    let eval_prepared_ms = best_ms(reps, || {
        let out = pruned_pub.publish(db).expect("publish prepared").document;
        std::hint::black_box(out);
    });
    // Every plan was compiled during the verification publish above, so
    // this warm publish must be served entirely from the cache.
    let warm = pruned_pub.publish(db).expect("publish warm");
    let plan_cache_hit_rate = warm.stats.plan_cache_hit_rate();
    let batches_executed = warm.stats.batches_executed;
    let bindings_per_batch_max = warm.stats.bindings_per_batch_max;

    // Set-oriented vs tuple-at-a-time publishing of the same pruned view.
    // `pruned_pub` is the batched default; the scalar publisher must emit
    // a byte-identical document or the benchmark would be meaningless.
    let mut scalar_pub = Engine::new(&pruned).batched(false).session();
    let scalar_doc = scalar_pub.publish(db).expect("publish scalar").document;
    assert_eq!(
        scalar_doc.to_xml(),
        warm.document.to_xml(),
        "batched v'(I) != scalar v'(I) — set-oriented publishing diverged"
    );
    let eval_scalar_ms = best_ms(reps, || {
        let out = scalar_pub.publish(db).expect("publish scalar").document;
        std::hint::black_box(out);
    });
    let eval_batched_ms = best_ms(reps, || {
        let out = pruned_pub.publish(db).expect("publish batched").document;
        std::hint::black_box(out);
    });

    PruneBenchRow {
        workload: name.to_owned(),
        tvq_nodes_before: before.tvq_nodes,
        tvq_nodes_after: after.tvq_nodes,
        conjuncts_eliminated: after.conjuncts_eliminated,
        compose_plain_ms,
        compose_prune_ms,
        eval_plain_ms,
        eval_prune_ms,
        eval_interpreted_ms,
        eval_prepared_ms,
        plan_cache_hit_rate,
        eval_scalar_ms,
        eval_batched_ms,
        batches_executed,
        bindings_per_batch_max,
    }
}

/// The set-oriented publishing study: a deep fan-out chain where the
/// tuple-at-a-time publisher runs one tag query per parent binding
/// (`Σ fanout^k` executions per root subtree) while the batched publisher
/// runs one per level. The row carries the same field set as the prune
/// study, so `BENCH_compose.json` stays a single homogeneous array.
pub fn batch_bench(depth: usize, fanout: usize, reps: usize) -> PruneBenchRow {
    let view = chain_view(depth);
    let stylesheet = chain_stylesheet(depth);
    let db = crate::synthetic::chain_database(depth, fanout);
    prune_compare(
        &format!("chain depth {depth} x fan-out {fanout} (batch study)"),
        &view,
        &stylesheet,
        &db,
        reps,
    )
}

/// One data point of the I1 incremental-maintenance study: the same
/// single-row insert absorbed by a full republish and by
/// [`Session::republish_delta`] through the static dependency map —
/// documents verified byte-identical before any timing.
#[derive(Debug, Clone)]
pub struct IncrBenchRow {
    /// Human-readable workload name.
    pub workload: String,
    /// Total database rows *after* the delta.
    pub db_rows: usize,
    /// Rows the delta carried (1 for the single-row study).
    pub delta_rows_in: usize,
    /// Warm wall time republishing the whole document from scratch.
    pub eval_full_republish_ms: f64,
    /// Warm wall time absorbing the delta via `republish_delta`.
    pub eval_delta_ms: f64,
    /// Batched plan executions per full publish.
    pub batches_full: usize,
    /// Batched plan executions the delta path re-ran.
    pub batches_delta: usize,
    /// Stale subtrees spliced out of the previous document.
    pub nodes_respliced: usize,
}

impl IncrBenchRow {
    /// Fraction of the full publish's batch work the delta path re-ran.
    pub fn reexecution_fraction(&self) -> f64 {
        self.batches_delta as f64 / self.batches_full.max(1) as f64
    }
}

/// I1: composes the chain workload, publishes it incrementally, inserts
/// one row into the *deepest* level table through the `xvc_rel` write
/// path, and absorbs the resulting [`xvc_rel::Delta`] both ways. The
/// delta document must be byte-identical to the full republish and must
/// re-execute strictly fewer batches — either failure panics (a benchmark
/// row for a divergent or degenerate delta path would be meaningless).
pub fn incr_bench(depth: usize, fanout: usize, reps: usize) -> IncrBenchRow {
    use crate::synthetic::level_table;

    assert!(depth >= 2, "the study needs a parent level to attach to");
    let view = chain_view(depth);
    let stylesheet = chain_stylesheet(depth);
    let mut db = crate::synthetic::chain_database(depth, fanout);
    let composed = Composer::new(&view, &stylesheet, &db.catalog())
        .run()
        .expect("compose")
        .view;

    let mut publisher = Engine::new(&composed).incremental(true).session();
    let prev = publisher.publish(&db).expect("publish v'");

    // One new leaf row, parented on the first row of the level above.
    // `chain_database` assigns ids breadth-first starting at 1, so the
    // first id of level `k` is `1 + Σ_{j<k} fanout^(j+1)`.
    let parent_id: i64 = 1
        + (0..depth - 2)
            .map(|j| (fanout as i64).pow(j as u32 + 1))
            .sum::<i64>();
    let delta = db
        .execute_dml(&format!(
            "INSERT INTO {} VALUES (999983, {parent_id}, 42)",
            level_table(depth - 1)
        ))
        .expect("single-row insert");

    // Both strategies absorb the same post-delta instance; byte equality
    // is the gate everything downstream rests on.
    let full = publisher.publish(&db).expect("full republish");
    let incr = publisher
        .republish_delta(&db, &prev, &delta)
        .expect("delta republish");
    assert_eq!(
        incr.document.to_xml(),
        full.document.to_xml(),
        "delta republish diverged from the full republish — \
         benchmark would be meaningless"
    );
    assert!(
        incr.stats.batches_reexecuted < full.stats.batches_executed,
        "delta path re-ran {} of {} batches — no incremental win",
        incr.stats.batches_reexecuted,
        full.stats.batches_executed
    );

    let eval_full_republish_ms = best_ms(reps, || {
        let out = publisher.publish(&db).expect("full republish").document;
        std::hint::black_box(out);
    });
    let eval_delta_ms = best_ms(reps, || {
        let out = publisher
            .republish_delta(&db, &prev, &delta)
            .expect("delta republish")
            .document;
        std::hint::black_box(out);
    });

    IncrBenchRow {
        workload: format!("chain depth {depth} x fan-out {fanout} (incr study)"),
        db_rows: db.total_rows(),
        delta_rows_in: incr.stats.delta_rows_in,
        eval_full_republish_ms,
        eval_delta_ms,
        batches_full: full.stats.batches_executed,
        batches_delta: incr.stats.batches_reexecuted,
        nodes_respliced: incr.stats.nodes_respliced,
    }
}

/// Runs [`incr_bench`] over `(depth, fanout)` configurations, ascending
/// instance size.
pub fn incr_sweep(configs: &[(usize, usize)], reps: usize) -> Vec<IncrBenchRow> {
    configs
        .iter()
        .map(|&(d, f)| incr_bench(d, f, reps))
        .collect()
}

/// Serializes incremental-study rows as `BENCH_compose.json` array
/// fragments, combinable with the other studies via [`render_json_array`].
pub fn render_incr_objects(rows: &[IncrBenchRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"db_rows\": {}, \"delta_rows_in\": {}, \
                 \"eval_full_republish_ms\": {:.3}, \"eval_delta_ms\": {:.3}, \
                 \"batches_full\": {}, \"batches_delta\": {}, \"nodes_respliced\": {}}}",
                r.workload,
                r.db_rows,
                r.delta_rows_in,
                r.eval_full_republish_ms,
                r.eval_delta_ms,
                r.batches_full,
                r.batches_delta,
                r.nodes_respliced,
            )
        })
        .collect()
}

/// One data point of the storage/access-path scale study: the same needle
/// view published against the same instance held in-memory, paged through
/// the buffer pool, and indexed — documents verified bit-identical before
/// any timing.
#[derive(Debug, Clone)]
pub struct ScaleBenchRow {
    /// Human-readable workload name.
    pub workload: String,
    /// Total database rows.
    pub db_rows: usize,
    /// Warm publish against the in-memory backend, full scans.
    pub eval_mem_ms: f64,
    /// Warm publish against the paged (buffer-pool) backend, full scans.
    pub eval_paged_ms: f64,
    /// Warm publish against the in-memory backend with secondary indexes.
    pub eval_indexed_ms: f64,
    /// Warm publish against the paged backend with secondary indexes.
    pub eval_paged_indexed_ms: f64,
    /// Engine rows scanned per publish on the full-scan path.
    pub scan_rows_scanned: u64,
    /// Engine rows scanned per publish on the index path (candidates
    /// fetched and rechecked).
    pub indexed_rows_scanned: u64,
    /// Index probes per publish on the index path.
    pub index_lookups: u64,
}

/// Sizing of one scale-study instance.
#[derive(Debug, Clone, Copy)]
pub struct ScaleConfig {
    /// Region (root-table) rows; exactly one is selected by the view.
    pub regions: usize,
    /// Customers per region.
    pub customers_per_region: usize,
    /// Orders per customer.
    pub orders_per_customer: usize,
}

impl ScaleConfig {
    /// Total rows the config generates.
    pub fn total_rows(&self) -> usize {
        self.regions * (1 + self.customers_per_region * (1 + self.orders_per_customer))
    }
}

/// The study's full-size configurations: ~10⁵ and ~10⁶ rows.
pub const SCALE_FULL: &[ScaleConfig] = &[
    ScaleConfig {
        regions: 100,
        customers_per_region: 100,
        orders_per_customer: 9,
    },
    ScaleConfig {
        regions: 200,
        customers_per_region: 250,
        orders_per_customer: 19,
    },
];

/// Reduced configurations for the CI smoke run — small enough to finish in
/// seconds, large enough that an index slower than a scan at the last size
/// is a genuine regression, not noise.
pub const SCALE_SMOKE: &[ScaleConfig] = &[
    ScaleConfig {
        regions: 10,
        customers_per_region: 10,
        orders_per_customer: 8,
    },
    ScaleConfig {
        regions: 50,
        customers_per_region: 40,
        orders_per_customer: 10,
    },
];

/// Runs the needle view against one instance on every backend. The
/// backends are built and dropped one at a time (peak memory stays at two
/// instances), and every backend's document is asserted byte-identical to
/// the in-memory one before its timing loop runs.
pub fn scale_bench(cfg: &ScaleConfig, reps: usize) -> ScaleBenchRow {
    use xvc_rel::Backend;

    // The needle: one mid-range region, so neither the first nor the last
    // scan position is favored.
    let needle = format!("region-{}", cfg.regions / 2);
    let view = needle_view(&needle);
    let base = needle_database(
        cfg.regions,
        cfg.customers_per_region,
        cfg.orders_per_customer,
    );
    let db_rows = base.total_rows();

    let mut mem_pub = Engine::new(&view).session();
    let mem_out = mem_pub.publish(&base).expect("publish mem");
    let reference = mem_out.document.to_xml();
    let scan_rows_scanned = mem_out.eval.rows_scanned;
    let eval_mem_ms = best_ms(reps, || {
        let out = mem_pub.publish(&base).expect("publish mem").document;
        std::hint::black_box(out);
    });

    let eval_paged_ms = {
        let paged = base.to_backend(Backend::paged()).expect("paged backend");
        let mut paged_pub = Engine::new(&view).session();
        let doc = paged_pub.publish(&paged).expect("publish paged").document;
        assert_eq!(
            doc.to_xml(),
            reference,
            "paged backend diverged from in-memory — benchmark would be meaningless"
        );
        best_ms(reps, || {
            let out = paged_pub.publish(&paged).expect("publish paged").document;
            std::hint::black_box(out);
        })
    };

    let indexed = needle_indexed(&base);
    let mut idx_pub = Engine::new(&view).session();
    let idx_out = idx_pub.publish(&indexed).expect("publish indexed");
    assert_eq!(
        idx_out.document.to_xml(),
        reference,
        "indexed backend diverged from full scan — benchmark would be meaningless"
    );
    assert!(
        idx_out.eval.index_lookups > 0,
        "index study never probed an index: {:?}",
        idx_out.eval
    );
    let indexed_rows_scanned = idx_out.eval.rows_scanned;
    let index_lookups = idx_out.eval.index_lookups;
    let eval_indexed_ms = best_ms(reps, || {
        let out = idx_pub.publish(&indexed).expect("publish indexed").document;
        std::hint::black_box(out);
    });

    let eval_paged_indexed_ms = {
        let paged_idx = indexed.to_backend(Backend::paged()).expect("paged backend");
        let mut pub_ = Engine::new(&view).session();
        let doc = pub_
            .publish(&paged_idx)
            .expect("publish paged+indexed")
            .document;
        assert_eq!(
            doc.to_xml(),
            reference,
            "paged+indexed backend diverged — benchmark would be meaningless"
        );
        best_ms(reps, || {
            let out = pub_
                .publish(&paged_idx)
                .expect("publish paged+indexed")
                .document;
            std::hint::black_box(out);
        })
    };

    ScaleBenchRow {
        workload: format!(
            "needle {} rows ({}r x {}c x {}o)",
            db_rows, cfg.regions, cfg.customers_per_region, cfg.orders_per_customer
        ),
        db_rows,
        eval_mem_ms,
        eval_paged_ms,
        eval_indexed_ms,
        eval_paged_indexed_ms,
        scan_rows_scanned,
        indexed_rows_scanned,
        index_lookups,
    }
}

/// Runs [`scale_bench`] over a configuration family, ascending size.
pub fn scale_sweep(configs: &[ScaleConfig], reps: usize) -> Vec<ScaleBenchRow> {
    configs.iter().map(|c| scale_bench(c, reps)).collect()
}

/// Serializes scale-study rows as a `BENCH_compose.json` array fragment:
/// one object per instance size.
pub fn render_scale_objects(rows: &[ScaleBenchRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"db_rows\": {}, \"eval_mem_ms\": {:.3}, \
                 \"eval_paged_ms\": {:.3}, \"eval_indexed_ms\": {:.3}, \
                 \"eval_paged_indexed_ms\": {:.3}, \"scan_rows_scanned\": {}, \
                 \"indexed_rows_scanned\": {}, \"index_lookups\": {}}}",
                r.workload,
                r.db_rows,
                r.eval_mem_ms,
                r.eval_paged_ms,
                r.eval_indexed_ms,
                r.eval_paged_indexed_ms,
                r.scan_rows_scanned,
                r.indexed_rows_scanned,
                r.index_lookups,
            )
        })
        .collect()
}

/// One data point of the streaming-emission study: the same publish
/// delivered by materialize-then-serialize and by
/// [`xvc_view::Session::publish_to`], against an instance whose document
/// grows by adding root-level subtrees of fixed size.
#[derive(Debug, Clone)]
pub struct StreamBenchRow {
    /// Human-readable workload name.
    pub workload: String,
    /// Total database rows.
    pub db_rows: usize,
    /// Serialized document size in bytes.
    pub doc_bytes: u64,
    /// Warm publish + `Document::to_xml` (arena document materialized,
    /// then serialized into a fresh `String`).
    pub emit_materialized_ms: f64,
    /// Warm [`xvc_view::Session::publish_to`] into a byte sink — no
    /// output document.
    pub emit_streamed_ms: f64,
    /// Tracked peak of the materializing path: the arena document's heap
    /// plus the serialized string. Grows linearly with document size.
    pub peak_track_bytes_materialized: u64,
    /// Tracked peak of the streaming path's emission buffers
    /// ([`xvc_view::Streamed::peak_emit_bytes`]): bounded by the largest
    /// root-level subtree, flat as the document grows.
    pub peak_track_bytes_streamed: u64,
}

/// Sizing for the stream study: a ≥10× document-size sweep at fixed
/// subtree size ([`ScaleConfig::regions`] is the only axis that moves).
pub const STREAM_FULL: &[ScaleConfig] = &[
    ScaleConfig {
        regions: 50,
        customers_per_region: 10,
        orders_per_customer: 9,
    },
    ScaleConfig {
        regions: 500,
        customers_per_region: 10,
        orders_per_customer: 9,
    },
];

/// Reduced stream-study sizes for the CI smoke run — still a 10× document
/// sweep, small enough to finish in seconds.
pub const STREAM_SMOKE: &[ScaleConfig] = &[
    ScaleConfig {
        regions: 20,
        customers_per_region: 5,
        orders_per_customer: 4,
    },
    ScaleConfig {
        regions: 200,
        customers_per_region: 5,
        orders_per_customer: 4,
    },
];

/// Publishes one stream-study instance both ways. The streamed bytes are
/// asserted identical to `Document::to_xml()` before either timing loop
/// runs — a benchmark row for divergent output would be meaningless.
pub fn stream_bench(cfg: &ScaleConfig, reps: usize) -> StreamBenchRow {
    let view = all_regions_view();
    let db = needle_database(
        cfg.regions,
        cfg.customers_per_region,
        cfg.orders_per_customer,
    );
    let db_rows = db.total_rows();

    let mut session = Engine::new(&view).session();
    let published = session.publish(&db).expect("publish materialized");
    let reference = published.document.to_xml();
    let peak_track_bytes_materialized =
        (published.document.heap_estimate() + reference.len()) as u64;

    let mut streamed_bytes = Vec::with_capacity(reference.len());
    let streamed = session
        .publish_to(&db, &mut streamed_bytes)
        .expect("publish streamed");
    assert_eq!(
        String::from_utf8(streamed_bytes).expect("utf-8 stream"),
        reference,
        "streamed emission diverged from Document::to_xml() — \
         benchmark would be meaningless"
    );

    let emit_materialized_ms = best_ms(reps, || {
        let xml = session
            .publish(&db)
            .expect("publish materialized")
            .document
            .to_xml();
        std::hint::black_box(xml);
    });
    let emit_streamed_ms = best_ms(reps, || {
        let mut out = Vec::new();
        session.publish_to(&db, &mut out).expect("publish streamed");
        std::hint::black_box(out);
    });

    StreamBenchRow {
        workload: format!(
            "stream {} rows ({}r x {}c x {}o)",
            db_rows, cfg.regions, cfg.customers_per_region, cfg.orders_per_customer
        ),
        db_rows,
        doc_bytes: streamed.bytes_written,
        emit_materialized_ms,
        emit_streamed_ms,
        peak_track_bytes_materialized,
        peak_track_bytes_streamed: streamed.peak_emit_bytes as u64,
    }
}

/// Runs [`stream_bench`] over a configuration family, ascending size.
pub fn stream_sweep(configs: &[ScaleConfig], reps: usize) -> Vec<StreamBenchRow> {
    configs.iter().map(|c| stream_bench(c, reps)).collect()
}

/// Serializes stream-study rows as a `BENCH_compose.json` array fragment.
pub fn render_stream_objects(rows: &[StreamBenchRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"db_rows\": {}, \"doc_bytes\": {}, \
                 \"emit_materialized_ms\": {:.3}, \"emit_streamed_ms\": {:.3}, \
                 \"peak_track_bytes_materialized\": {}, \"peak_track_bytes_streamed\": {}}}",
                r.workload,
                r.db_rows,
                r.doc_bytes,
                r.emit_materialized_ms,
                r.emit_streamed_ms,
                r.peak_track_bytes_materialized,
                r.peak_track_bytes_streamed,
            )
        })
        .collect()
}

/// Joins pre-rendered JSON objects into the `BENCH_compose.json` array.
pub fn render_json_array(objects: &[String]) -> String {
    let mut out = String::from("[\n");
    out.push_str(&objects.join(",\n"));
    out.push_str("\n]\n");
    out
}

/// Serializes prune-bench rows as the `BENCH_compose.json` artifact: a
/// JSON array, one object per workload.
pub fn render_prune_json(rows: &[PruneBenchRow]) -> String {
    render_json_array(&render_prune_objects(rows))
}

/// Serializes prune-bench rows as `BENCH_compose.json` array fragments,
/// combinable with [`render_scale_objects`] via [`render_json_array`].
pub fn render_prune_objects(rows: &[PruneBenchRow]) -> Vec<String> {
    rows.iter()
        .map(|r| {
            format!(
                "  {{\"workload\": \"{}\", \"tvq_nodes_before\": {}, \"tvq_nodes_after\": {}, \
             \"conjuncts_eliminated\": {}, \"compose_plain_ms\": {:.3}, \
             \"compose_prune_ms\": {:.3}, \"eval_plain_ms\": {:.3}, \"eval_prune_ms\": {:.3}, \
             \"eval_interpreted_ms\": {:.3}, \"eval_prepared_ms\": {:.3}, \
             \"plan_cache_hit_rate\": {:.3}, \"eval_scalar_ms\": {:.3}, \
             \"eval_batched_ms\": {:.3}, \"batches_executed\": {}, \
             \"bindings_per_batch_max\": {}}}",
                r.workload,
                r.tvq_nodes_before,
                r.tvq_nodes_after,
                r.conjuncts_eliminated,
                r.compose_plain_ms,
                r.compose_prune_ms,
                r.eval_plain_ms,
                r.eval_prune_ms,
                r.eval_interpreted_ms,
                r.eval_prepared_ms,
                r.plan_cache_hit_rate,
                r.eval_scalar_ms,
                r.eval_batched_ms,
                r.batches_executed,
                r.bindings_per_batch_max,
            )
        })
        .collect()
}

/// Renders comparison rows as an aligned text table.
pub fn render_comparison_table(title: &str, param_name: &str, rows: &[ComparisonRow]) -> String {
    let mut out = format!("## {title}\n\n");
    out.push_str(&format!(
        "{param_name:>10} | {:>8} | {:>11} | {:>11} | {:>8} | {:>10} | {:>10} | {:>8} | {:>8} | {:>9} | {:>9}\n",
        "db rows",
        "naive ms",
        "composed ms",
        "speedup",
        "naive el",
        "comp el",
        "naive q",
        "comp q",
        "naive rs",
        "comp rs"
    ));
    out.push_str(&"-".repeat(128));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>10} | {:>8} | {:>11.3} | {:>11.3} | {:>7.2}x | {:>10} | {:>10} | {:>8} | {:>8} | {:>9} | {:>9}\n",
            r.param,
            r.db_rows,
            r.naive_ms,
            r.composed_ms,
            r.speedup(),
            r.naive_elements,
            r.composed_elements,
            r.naive_queries,
            r.composed_queries,
            r.naive_rows_scanned,
            r.composed_rows_scanned,
        ));
    }
    out
}

/// Renders composition-cost rows as an aligned text table.
pub fn render_cost_table(title: &str, param_name: &str, rows: &[ComposeCostRow]) -> String {
    let mut out = format!("## {title}\n\n");
    out.push_str(&format!(
        "{param_name:>10} | {:>6} | {:>6} | {:>9} | {:>10}\n",
        "|v|", "|x|", "tvq nodes", "compose ms"
    ));
    out.push_str(&"-".repeat(52));
    out.push('\n');
    for r in rows {
        out.push_str(&format!(
            "{:>10} | {:>6} | {:>6} | {:>9} | {:>10.3}\n",
            r.param, r.view_nodes, r.rules, r.tvq_nodes, r.compose_ms,
        ));
    }
    out
}

/// Outcome of one [`differential_fuzz`] run.
#[derive(Debug, Clone, Copy)]
pub struct FuzzSummary {
    /// Random workloads checked (seeds × generator presets).
    pub workloads: usize,
    /// Workloads whose static per-wave batch bound was finite (and was
    /// therefore checked against the measured maximum).
    pub finite_batch_bounds: usize,
    /// Largest measured binding batch across all workloads.
    pub max_batch_seen: usize,
}

/// The CI differential gate over the recursion-heavy and wide-fanout
/// generators: for every seed and preset, `v'(I)` must equal `x(v(I))`,
/// the bound-driven publisher must produce a document byte-identical to
/// the heuristic (unbounded) path, and the measured per-wave batch sizes
/// must stay within the statically predicted cardinality bound. Any
/// violation panics with the offending stylesheet.
pub fn differential_fuzz(seeds_per_config: u64) -> FuzzSummary {
    use crate::random_stylesheet::{random_stylesheet, StylesheetConfig};
    use xvc_view::analyze_view_bounds;

    let view = figure1_view();
    let db = generate(&WorkloadConfig::scale(1));
    let catalog = db.catalog();
    let full = Engine::new(&view)
        .session()
        .publish(&db)
        .expect("publish v")
        .document;
    let mut summary = FuzzSummary {
        workloads: 0,
        finite_batch_bounds: 0,
        max_batch_seen: 0,
    };
    for (name, cfg) in [
        ("recursion_heavy", StylesheetConfig::recursion_heavy()),
        ("wide_fanout", StylesheetConfig::wide_fanout()),
    ] {
        for seed in 0..seeds_per_config {
            let stylesheet = random_stylesheet(&view, &catalog, seed, cfg);
            let composed = Composer::new(&view, &stylesheet, &catalog)
                .run()
                .unwrap_or_else(|e| {
                    panic!("{name} seed {seed}: compose: {e}\n{}", stylesheet.to_xslt())
                })
                .view;
            let expected = process(&stylesheet, &full).expect("engine");
            let bounded = Engine::new(&composed)
                .session()
                .publish(&db)
                .expect("publish v'");
            assert!(
                documents_equal_unordered(&expected, &bounded.document),
                "{name} seed {seed}: v'(I) != x(v(I))\n{}",
                stylesheet.to_xslt()
            );
            let heuristic = Engine::new(&composed)
                .bounded(false)
                .session()
                .publish(&db)
                .expect("publish v' unbounded");
            assert_eq!(
                bounded.document.to_xml(),
                heuristic.document.to_xml(),
                "{name} seed {seed}: bound-driven plans diverged from the heuristic path\n{}",
                stylesheet.to_xslt()
            );
            let bounds = analyze_view_bounds(&composed, &catalog);
            summary.workloads += 1;
            summary.max_batch_seen = summary
                .max_batch_seen
                .max(bounded.stats.bindings_per_batch_max);
            if let Some(limit) = bounds.max_batch.as_limit() {
                summary.finite_batch_bounds += 1;
                assert!(
                    bounded.stats.bindings_per_batch_max as u64 <= limit,
                    "{name} seed {seed}: measured batch {} exceeds static bound {limit}\n{}",
                    bounded.stats.bindings_per_batch_max,
                    stylesheet.to_xslt()
                );
            }
        }
    }
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_small_scales_favor_composition() {
        let rows = e1_scale_sweep(&[1, 2], 1);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            // The composed view materializes strictly fewer elements (the
            // paper's core claim: no unnecessary nodes).
            assert!(
                r.composed_elements < r.naive_elements,
                "composed {} !< naive {}",
                r.composed_elements,
                r.naive_elements
            );
            assert!(r.db_rows > 0);
            // The engine counters flow through: both strategies scan rows.
            assert!(r.naive_rows_scanned > 0);
            assert!(r.composed_rows_scanned > 0);
        }
        // Bigger instance ⇒ more naive elements.
        assert!(rows[1].naive_elements > rows[0].naive_elements);
    }

    #[test]
    fn c1_chain_costs_grow_polynomially() {
        let rows = c1_chain_sweep(&[2, 4, 8], 1);
        assert_eq!(rows[0].tvq_nodes, 1 + 2);
        assert_eq!(rows[2].tvq_nodes, 1 + 8);
    }

    #[test]
    fn c2_fan_grows_exponentially() {
        let rows = c2_fan_sweep(4, &[1, 2, 3], 1);
        // Σ fan^k for k in 0..4 (+1 for the entry node).
        assert_eq!(rows[0].tvq_nodes, 1 + 4);
        assert_eq!(rows[1].tvq_nodes, 1 + 15);
        assert_eq!(rows[2].tvq_nodes, 1 + 40);
    }

    #[test]
    fn batch_bench_engages_set_oriented_execution() {
        let r = batch_bench(4, 3, 1);
        // The batched publisher ran, and at least one wave joined more
        // than one parent binding in a single plan execution.
        assert!(r.batches_executed > 0, "{r:?}");
        assert!(r.bindings_per_batch_max >= 3, "{r:?}");
        assert!(r.eval_scalar_ms > 0.0 && r.eval_batched_ms > 0.0);
        let json = render_prune_json(&[r]);
        assert!(json.contains("\"eval_batched_ms\""));
        assert!(json.contains("\"bindings_per_batch_max\""));
    }

    #[test]
    fn incr_bench_absorbs_a_single_row_delta() {
        // incr_bench itself asserts byte equality and a strict batch win.
        let r = incr_bench(5, 3, 1);
        assert_eq!(r.delta_rows_in, 1);
        assert!(r.batches_delta < r.batches_full, "{r:?}");
        assert!(r.nodes_respliced > 0, "{r:?}");
        assert!(r.reexecution_fraction() < 1.0, "{r:?}");
        let json = render_json_array(&render_incr_objects(&[r.clone()]));
        assert!(json.contains("\"eval_full_republish_ms\""));
        assert!(json.contains("\"eval_delta_ms\""));
        println!("{r:?}");
    }

    #[test]
    fn scale_bench_verifies_backends_and_counts_index_work() {
        let cfg = ScaleConfig {
            regions: 8,
            customers_per_region: 6,
            orders_per_customer: 4,
        };
        // scale_bench itself asserts cross-backend document equality.
        let r = scale_bench(&cfg, 1);
        assert_eq!(r.db_rows, cfg.total_rows());
        assert!(r.index_lookups > 0, "{r:?}");
        assert!(r.indexed_rows_scanned < r.scan_rows_scanned, "{r:?}");
        let json = render_json_array(&render_scale_objects(&[r]));
        assert!(json.contains("\"eval_indexed_ms\""));
        assert!(json.contains("\"eval_paged_ms\""));
    }

    #[test]
    fn tables_render() {
        let rows = e1_scale_sweep(&[1], 1);
        let t = render_comparison_table("E1", "scale", &rows);
        assert!(t.contains("speedup"));
        let rows = c1_chain_sweep(&[2], 1);
        let t = render_cost_table("C1", "depth", &rows);
        assert!(t.contains("tvq nodes"));
    }
}
