//! `UNBIND` and `NEST` — translating a select-match subtree into a
//! parameterized SQL tag query (Figures 10–13, with the Figure 19
//! predicate changes).
//!
//! Given a select-match subtree `smt` with query context node `m` and new
//! query context node `n`:
//!
//! * the **chain** `child_n(nj) → n` below the lowest common ancestor `nj`
//!   is folded into one query bottom-up: each node's tag query has its
//!   ancestor references replaced by a derived table computing the
//!   (recursively unbound) prefix — the paper's
//!   `(SELECT * FROM hotel ...) AS TEMP`. When the node's query
//!   aggregates, `GROUP BY` over all derived columns preserves the
//!   per-tuple aggregation semantics, and `TEMP.*` keeps the ancestors'
//!   attributes flowing (Figure 13 lines 5–6);
//! * **branch nodes** of the subtree (e.g. the `hotel_available` sibling
//!   required by `../hotel_available/../confroom`) become `EXISTS`
//!   conditions built by `NEST` (Figure 11), recursively;
//! * **context-side** nodes (the path root → `m`) contribute `EXISTS`
//!   checks for their non-path children (Figure 13 lines 7–11) and
//!   binding-tuple conditions for their predicates (Figure 19);
//! * a **binding-variable map** is produced per Figure 13 lines 12–18 and
//!   the query's parameters renamed through it (Figure 9 lines 19–22).
//!
//! The degenerate case where `n` is an ancestor-or-self of `m` (selects
//! like `.` or `..`, which arise from the §5.2 flow-control rewrites) has
//! an empty chain: no SQL is generated; instead the caller receives a
//! [`UnboundQuery::Rebind`] telling it to reuse an already-bound tuple,
//! optionally guarded by the subtree's predicates.

use std::collections::HashMap;

use xvc_rel::eval::output_columns;
use xvc_rel::rewrite::{
    binds_alias, fresh_alias, fresh_alias_among, preserve_aggregation, qualify_level_columns,
    refresh_group_by_all, rename_params, unbind_param_nested, visit_exprs,
};
use xvc_rel::{Catalog, ScalarExpr, SelectItem, SelectQuery, TableRef};
use xvc_view::SchemaTree;

use crate::error::{Error, Result};
use crate::predicate;
use crate::tree_pattern::{TpId, TreePattern};

/// Result of unbinding one select-match subtree.
#[derive(Debug, Clone, PartialEq)]
pub enum UnboundQuery {
    /// A real tag query for the new TVQ node.
    Query(SelectQuery),
    /// The new context is an ancestor-or-self of the old one: the new TVQ
    /// node re-uses the tuple already bound to `source` (a TVQ binding
    /// variable), guarded by `guard` (already renamed through the bvmap).
    Rebind {
        /// TVQ binding variable whose tuple is reused.
        source: String,
        /// Conjunctive guard; the element is produced only when it holds.
        guard: Option<ScalarExpr>,
    },
    /// The new context is a *literal* node (no tag query — it occurs
    /// exactly once per parent instance). Arises when re-composing a
    /// stylesheet with an already-composed view, whose literal skeleton
    /// nodes carry no queries.
    Literal,
}

/// Output of [`unbind_smt`].
#[derive(Debug, Clone, PartialEq)]
pub struct UnbindResult {
    /// The generated tag query (or rebind instruction).
    pub query: UnboundQuery,
    /// `bvmap(w2)`: original schema-tree binding variables → TVQ binding
    /// variables, for renaming descendants' parameters.
    pub bvmap: HashMap<String, String>,
}

/// The UNBIND function of Figure 13 (+ Figure 12 nesting and Figure 19
/// predicates). `new_bv` is `bv(w2)`; `parent_bvmap` is `bvmap(w1)`.
pub fn unbind_smt(
    view: &SchemaTree,
    smt: &TreePattern,
    new_bv: &str,
    parent_bvmap: &HashMap<String, String>,
    catalog: &Catalog,
) -> Result<UnbindResult> {
    let m = smt.context;
    let n = smt.new_context;
    let nj = smt.lca(m, n);

    // S: nodes along child_m(nj) → m, whose bvmap entries are dropped
    // (Figure 13 lines 15–18).
    let s_path = smt.path_below(nj, m).unwrap_or_default();
    let mut bvmap = parent_bvmap.clone();
    for &p in &s_path {
        if let Some(bv) = view.bv(smt.view(p)) {
            bvmap.remove(bv);
        }
    }

    // R: nodes along child_n(nj) → n (Figure 13 line 4).
    let Some(r_path) = smt.path_below(nj, n) else {
        // n is an ancestor-or-self of m: empty chain — rebind.
        return rebind(view, smt, n, bvmap, catalog);
    };
    for &p in &r_path {
        if let Some(bv) = view.bv(smt.view(p)) {
            bvmap.insert(bv.to_owned(), new_bv.to_owned());
        }
    }

    // Literal chain nodes (no tag query) occur exactly once per parent
    // instance: they are transparent to the chain. Predicates or guards on
    // them cannot be expressed as data conditions.
    for &p in &r_path {
        let node = view.node(smt.view(p)).expect("non-root chain node");
        if node.query.is_none() {
            if !smt.predicates(p).is_empty() {
                return Err(Error::NotComposable {
                    reason: format!(
                        "predicate on the literal node <{}> (it carries no data)",
                        node.tag
                    ),
                });
            }
            if node.guard.is_some() || node.context_tuple_of.is_some() {
                return Err(Error::NotComposable {
                    reason: format!(
                        "re-composition through the guarded/copied node <{}> is \
                         not supported",
                        node.tag
                    ),
                });
            }
        }
    }
    let chain: Vec<TpId> = r_path
        .iter()
        .copied()
        .filter(|&p| {
            view.node(smt.view(p))
                .map(|n| n.query.is_some())
                .unwrap_or(false)
        })
        .collect();
    if chain.is_empty() {
        // The target (and every chain node) is literal: once per parent.
        return Ok(UnbindResult {
            query: UnboundQuery::Literal,
            bvmap,
        });
    }
    if view
        .node(smt.view(n))
        .map(|x| x.query.is_none())
        .unwrap_or(false)
    {
        return Err(Error::NotComposable {
            reason: "a literal node below query nodes as a transition target \
                     is not yet supported"
                .into(),
        });
    }

    // Fold the chain bottom-up into one query (Figures 10/12).
    let mut q = chain_query(view, smt, &chain, &chain, catalog)?;

    // Context side (Figure 13 lines 7–11 + Figure 19): walk root → m.
    // Binding variables on the S path were just dropped from the bvmap, so
    // context-side conditions pre-map through the *parent* bvmap: the
    // paper's `$s_new.sum < 200` refers to the parent TVQ node's tuple.
    let p_path = smt.path_from_root(m);
    for &p in &p_path {
        let pvid = smt.view(p);
        if !view.is_root(pvid) {
            if let Some(bv) = view.bv(pvid) {
                let mapped = parent_bvmap.get(bv).map(String::as_str).unwrap_or(bv);
                for pred in smt.predicates(p) {
                    q.and_where(predicate::to_param_condition(mapped, pred)?);
                }
            }
        }
        for &c in smt.children(p) {
            if p_path.contains(&c) || r_path.contains(&c) {
                continue;
            }
            // `sub` references $bv(p): p's tuple is a binding parameter
            // here; pre-map S-path variables through the parent bvmap.
            let mut sub = nest(view, smt, c, catalog)?;
            rename_params(&mut sub, parent_bvmap);
            q.and_where(exists_maybe_negated(smt, c, sub));
        }
    }

    // Rename binding variables through bvmap(w2) (Figure 9 lines 21–22).
    rename_params(&mut q, &bvmap);

    Ok(UnbindResult {
        query: UnboundQuery::Query(q),
        bvmap,
    })
}

/// Chain folding: returns the query for the last node of `chain`, with all
/// higher chain nodes folded in as one nested derived table.
fn chain_query(
    view: &SchemaTree,
    smt: &TreePattern,
    chain: &[TpId],
    full_chain: &[TpId],
    catalog: &Catalog,
) -> Result<SelectQuery> {
    let (last, prefix) = chain.split_last().expect("chain is non-empty");
    let mut q = prepared(view, smt, *last, full_chain, catalog)?;
    if prefix.is_empty() {
        return Ok(q);
    }
    let implicit_agg = q.is_aggregating() && q.group_by.is_empty();
    let prefix_query = chain_query(view, smt, prefix, full_chain, catalog)?;
    // Qualify the level's existing column references that the derived
    // table would collide with (the paper's own Figure 26 leaves exactly
    // this `startdate` ambiguity in print).
    let prefix_cols = output_columns(&prefix_query, catalog)?;
    qualify_level_columns(&mut q, catalog, &prefix_cols)?;
    let prefix_bvs: Vec<String> = prefix
        .iter()
        .filter_map(|&p| view.bv(smt.view(p)).map(str::to_owned))
        .collect();

    // Scope classification of the prefix references: the query's own
    // level (select/where/group/having, including EXISTS subqueries, which
    // can correlate to an outer FROM alias) vs. inside FROM derived tables
    // (which cannot see sibling aliases — those embed their own copy of
    // the prefix, the paper's Figure 16 nesting). A variable referenced at
    // both scopes would need two copies joined on tuple identity, which is
    // out of scope.
    let mut top_refs = false;
    visit_scope_params(&q, &mut |var, _| {
        if prefix_bvs.iter().any(|b| b == var) {
            top_refs = true;
        }
    });
    let mut derived_refs: Vec<String> = Vec::new();
    for t in &q.from {
        if let TableRef::Derived { query, .. } = t {
            for var in query.parameters() {
                if prefix_bvs.contains(&var) && !derived_refs.contains(&var) {
                    derived_refs.push(var);
                }
            }
        }
    }
    if top_refs {
        for var in &derived_refs {
            let mut also_top = false;
            visit_scope_params(&q, &mut |v, _| {
                if v == var {
                    also_top = true;
                }
            });
            if also_top {
                return Err(Error::NotComposable {
                    reason: format!(
                        "${var} is referenced both at the query level and inside \
                         a derived table (mixed-scope re-composition)"
                    ),
                });
            }
        }
    }

    if !derived_refs.is_empty() {
        // Embed a prefix copy inside each referencing derived table.
        let mut widened: Vec<String> = Vec::new();
        for t in &mut q.from {
            if let TableRef::Derived { query, alias, .. } = t {
                let mut changed = false;
                for var in &derived_refs {
                    if unbind_param_nested(query, var, &prefix_query, catalog)? {
                        changed = true;
                    }
                }
                if changed {
                    widened.push(alias.clone());
                }
            }
        }
        for alias in widened {
            refresh_group_by_all(&mut q, &alias, catalog)?;
        }
    }

    if top_refs || derived_refs.is_empty() {
        // Shared prefix alias at this level. When no parameter links the
        // levels at all, the derived table still joins in (as a cross
        // product), preserving the per-prefix-tuple multiplicity of the
        // original traversal.
        let alias = fresh_alias(&q);
        replace_scope_params(&mut q, &prefix_bvs, &alias);
        q.from.push(TableRef::Derived {
            query: Box::new(prefix_query),
            alias: alias.clone(),
            // Implicit aggregation ⇒ the original query returns a row per
            // prefix tuple even over empty input; preserve the prefix side.
            preserved: implicit_agg,
        });
        preserve_aggregation(&mut q, &alias, catalog)?;
    }
    Ok(q)
}

/// Visits `$var.col` references at the query's own scope: its level plus
/// EXISTS subqueries (recursively), but *not* FROM derived tables.
fn visit_scope_params(q: &SelectQuery, f: &mut impl FnMut(&str, &str)) {
    fn walk(e: &ScalarExpr, f: &mut impl FnMut(&str, &str)) {
        match e {
            ScalarExpr::Param { var, column } => f(var, column),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, f);
                walk(rhs, f);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, f),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, f),
            ScalarExpr::Exists(sub) => visit_scope_params(sub, f),
            _ => {}
        }
    }
    for item in &q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, f);
        }
    }
    if let Some(w) = &q.where_clause {
        walk(w, f);
    }
    for g in &q.group_by {
        walk(g, f);
    }
    if let Some(h) = &q.having {
        walk(h, f);
    }
}

/// Rewrites `$var.col` (for any var in `vars`) into `alias.col` at the
/// query's own scope (level + EXISTS), leaving FROM derived tables alone.
fn replace_scope_params(q: &mut SelectQuery, vars: &[String], alias: &str) {
    fn walk(e: &mut ScalarExpr, vars: &[String], alias: &str) {
        match e {
            ScalarExpr::Param { var, column } if vars.iter().any(|v| v == var) => {
                *e = ScalarExpr::Column {
                    qualifier: Some(alias.to_owned()),
                    name: column.clone(),
                };
            }
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, vars, alias);
                walk(rhs, vars, alias);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, vars, alias),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, vars, alias),
            ScalarExpr::Exists(sub) => replace_scope_params(sub, vars, alias),
            _ => {}
        }
    }
    for item in &mut q.select {
        if let SelectItem::Expr { expr, .. } = item {
            walk(expr, vars, alias);
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk(w, vars, alias);
    }
    for g in &mut q.group_by {
        walk(g, vars, alias);
    }
    if let Some(h) = &mut q.having {
        walk(h, vars, alias);
    }
}

/// A chain node's tag query with its own predicates pushed in and its
/// branch children turned into EXISTS conditions.
fn prepared(
    view: &SchemaTree,
    smt: &TreePattern,
    p: TpId,
    chain: &[TpId],
    catalog: &Catalog,
) -> Result<SelectQuery> {
    let pvid = smt.view(p);
    let node = view.node(pvid).ok_or_else(|| Error::NotComposable {
        reason: "select-match chain passes through the document root".into(),
    })?;
    let Some(query) = &node.query else {
        return Err(Error::NotComposable {
            reason: format!("view node <{}> has no tag query", node.tag),
        });
    };
    let mut q = query.clone();
    for pred in smt.predicates(p) {
        predicate::push_into_query(&mut q, pred)?;
    }
    for &c in smt.children(p) {
        if chain.contains(&c) {
            continue;
        }
        let mut sub = nest(view, smt, c, catalog)?;
        // The branch query references $bv(p); inside the EXISTS it
        // correlates with the enclosing FROM, so the parameter becomes a
        // qualified column reference resolved through the outer scope.
        if let Some(bv) = view.bv(pvid) {
            correlate_exists(&mut q, &mut sub, bv, catalog)?;
        }
        q.and_where(exists_maybe_negated(smt, c, sub));
    }
    Ok(q)
}

/// `EXISTS (sub)` or `NOT (EXISTS (sub))` depending on the branch flag
/// (negated branches come from `not(path)` predicates, §5.1 extension).
fn exists_maybe_negated(smt: &TreePattern, c: TpId, sub: SelectQuery) -> ScalarExpr {
    let e = ScalarExpr::Exists(Box::new(sub));
    if smt.is_negated(c) {
        ScalarExpr::Not(Box::new(e))
    } else {
        e
    }
}

/// `NEST(p, NULL)` of Figure 11: the existence query for a branch node and
/// all of its required descendants (with the Figure 19 predicate change).
pub fn nest(
    view: &SchemaTree,
    smt: &TreePattern,
    c: TpId,
    catalog: &Catalog,
) -> Result<SelectQuery> {
    let cvid = smt.view(c);
    let node = view.node(cvid).ok_or_else(|| Error::NotComposable {
        reason: "NEST reached the document root".into(),
    })?;
    let Some(query) = &node.query else {
        // Literal node: exists iff its required children exist (it itself
        // occurs once per parent). `SELECT 1` over an empty FROM yields a
        // single row; child conditions attach beneath it.
        if !smt.predicates(c).is_empty() {
            return Err(Error::NotComposable {
                reason: format!(
                    "predicate on the literal node <{}> (it carries no data)",
                    node.tag
                ),
            });
        }
        let mut q = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
        for &cc in smt.children(c) {
            let sub = nest(view, smt, cc, catalog)?;
            q.and_where(exists_maybe_negated(smt, cc, sub));
        }
        return Ok(q);
    };
    let mut q = query.clone();
    for pred in smt.predicates(c) {
        predicate::push_into_query(&mut q, pred)?;
    }
    for &cc in smt.children(c) {
        let mut sub = nest(view, smt, cc, catalog)?;
        if let Some(bv) = view.bv(cvid) {
            correlate_exists(&mut q, &mut sub, bv, catalog)?;
        }
        q.and_where(exists_maybe_negated(smt, cc, sub));
    }
    Ok(q)
}

/// Correlates an EXISTS subquery `sub` (which references the enclosing
/// node's tuple as `$bv.col`) with the enclosing query `outer`.
///
/// Naively rewriting `$bv.col` to a bare column breaks when the subquery's
/// own FROM clause binds the same column name (e.g. Qv's
/// `startdate = $a.startdate` where both queries scan `availability`) —
/// the inner column would shadow the outer one. This is exactly the
/// renaming the paper waves at ("care must be taken in NEST to rename
/// tables during processing to avoid namespace collision", §4.2.1): the
/// outer FROM item providing the column is given a unique alias when
/// needed, and the reference becomes a qualified column that resolves
/// through the outer scope.
fn correlate_exists(
    outer: &mut SelectQuery,
    sub: &mut SelectQuery,
    bv: &str,
    catalog: &Catalog,
) -> Result<()> {
    // Columns of the enclosing tuple referenced by the subquery.
    let mut cols: Vec<String> = Vec::new();
    visit_exprs(sub, &mut |e| {
        if let ScalarExpr::Param { var, column } = e {
            if var == bv && !cols.contains(column) {
                cols.push(column.clone());
            }
        }
    });
    if cols.is_empty() {
        return Ok(());
    }
    let mut mapping: HashMap<String, (String, String)> = HashMap::new();
    for col in &cols {
        let (pref_qualifier, name) = resolve_output_column(outer, col)?;
        let from_idx = find_from_item(outer, pref_qualifier.as_deref(), &name, catalog)?;
        let binding = outer.from[from_idx].binding_name().to_owned();
        let qualifier = if binds_alias(sub, &binding) {
            // The subquery shadows this name: rename the outer FROM item.
            let fresh = fresh_alias_among(&[&*outer, &*sub], "XO");
            rename_from_item(outer, from_idx, &fresh);
            fresh
        } else {
            binding
        };
        mapping.insert(col.clone(), (qualifier, name));
    }
    visit_exprs(sub, &mut |e| {
        if let ScalarExpr::Param { var, column } = e {
            if var == bv {
                let (qual, name) = &mapping[column];
                *e = ScalarExpr::Column {
                    qualifier: Some(qual.clone()),
                    name: name.clone(),
                };
            }
        }
    });
    Ok(())
}

/// Resolves an output column of `outer` to its underlying FROM column:
/// `(preferred qualifier, column name)`. Aggregated outputs cannot be
/// correlated on.
fn resolve_output_column(outer: &SelectQuery, col: &str) -> Result<(Option<String>, String)> {
    for item in &outer.select {
        if let SelectItem::Expr { expr, alias } = item {
            let name = match alias {
                Some(a) => a.clone(),
                None => match expr {
                    ScalarExpr::Column { name, .. } => name.clone(),
                    ScalarExpr::Param { column, .. } => column.clone(),
                    ScalarExpr::Aggregate { func, .. } => func.default_column_name().to_owned(),
                    _ => continue,
                },
            };
            if name == col {
                return match expr {
                    ScalarExpr::Column { qualifier, name } => {
                        Ok((qualifier.clone(), name.clone()))
                    }
                    ScalarExpr::Aggregate { .. } => Err(Error::NotComposable {
                        reason: format!(
                            "EXISTS correlation on aggregated column `{col}`                              (SQL cannot correlate on an outer aggregate)"
                        ),
                    }),
                    _ => Err(Error::NotComposable {
                        reason: format!("EXISTS correlation on computed column `{col}`"),
                    }),
                };
            }
        }
    }
    // Covered by a `*` / `alias.*` item: a plain column of some FROM item.
    Ok((None, col.to_owned()))
}

/// Finds the FROM item of `outer` providing `name` (qualified when
/// `qualifier` is given).
fn find_from_item(
    outer: &SelectQuery,
    qualifier: Option<&str>,
    name: &str,
    catalog: &Catalog,
) -> Result<usize> {
    for (i, t) in outer.from.iter().enumerate() {
        if let Some(q) = qualifier {
            if t.binding_name() == q {
                return Ok(i);
            }
            continue;
        }
        let cols = match t {
            TableRef::Named { name: tn, .. } => catalog.get(tn)?.column_names(),
            TableRef::Derived { query, .. } => output_columns(query, catalog)?,
        };
        if cols.iter().any(|c| c == name) {
            return Ok(i);
        }
    }
    Err(Error::NotComposable {
        reason: format!(
            "EXISTS correlation column `{name}` is not provided by the              enclosing query's FROM clause"
        ),
    })
}

/// Renames a FROM item's binding alias, updating qualified references in
/// the query (shadow-aware: recursion stops at subqueries that re-bind the
/// old name).
fn rename_from_item(q: &mut SelectQuery, idx: usize, new_alias: &str) {
    let old = q.from[idx].binding_name().to_owned();
    match &mut q.from[idx] {
        TableRef::Named { alias, .. } => *alias = Some(new_alias.to_owned()),
        TableRef::Derived { alias, .. } => *alias = new_alias.to_owned(),
    }
    rename_qualifier_shadow_aware(q, &old, new_alias, true);
}

fn rename_qualifier_shadow_aware(q: &mut SelectQuery, old: &str, new: &str, top: bool) {
    fn walk(e: &mut ScalarExpr, old: &str, new: &str) {
        match e {
            ScalarExpr::Column { qualifier, .. } if qualifier.as_deref() == Some(old) => {
                *qualifier = Some(new.to_owned());
            }
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, old, new);
                walk(rhs, old, new);
            }
            ScalarExpr::Not(i) | ScalarExpr::IsNull(i) => walk(i, old, new),
            ScalarExpr::Aggregate { arg: Some(a), .. } => walk(a, old, new),
            ScalarExpr::Exists(sub) => rename_qualifier_shadow_aware(sub, old, new, false),
            _ => {}
        }
    }
    if !top && q.from.iter().any(|t| t.binding_name() == old) {
        return; // shadowed: inner references stay
    }
    for item in &mut q.select {
        match item {
            SelectItem::Expr { expr, .. } => walk(expr, old, new),
            SelectItem::QualifiedStar(qs) => {
                if qs == old {
                    *qs = new.to_owned();
                }
            }
            SelectItem::Star => {}
        }
    }
    if let Some(w) = &mut q.where_clause {
        walk(w, old, new);
    }
    for g in &mut q.group_by {
        walk(g, old, new);
    }
    if let Some(h) = &mut q.having {
        walk(h, old, new);
    }
}

/// Ancestor-or-self transition: no chain, reuse an existing binding.
fn rebind(
    view: &SchemaTree,
    smt: &TreePattern,
    n: TpId,
    bvmap: HashMap<String, String>,
    catalog: &Catalog,
) -> Result<UnbindResult> {
    let nvid = smt.view(n);
    let orig_bv = view.bv(nvid).ok_or_else(|| Error::NotComposable {
        reason: "self/ancestor select targets the document root".into(),
    })?;
    let source = bvmap
        .get(orig_bv)
        .cloned()
        .ok_or_else(|| Error::NotComposable {
            reason: format!(
                "ancestor-or-self select needs ${orig_bv}, which is not carried \
             by the traverse view query at this point"
            ),
        })?;

    // All predicates anywhere in the subtree become guard conditions on
    // already-bound tuples; branch nodes become EXISTS guards.
    let mut guard: Option<ScalarExpr> = None;
    let add = |c: ScalarExpr, guard: &mut Option<ScalarExpr>| {
        *guard = Some(match guard.take() {
            None => c,
            Some(g) => ScalarExpr::binary(xvc_rel::BinOp::And, g, c),
        });
    };
    let main_path = smt.path_from_root(smt.context);
    let n_path = smt.path_from_root(n);
    for id in all_nodes(smt) {
        let vid = smt.view(id);
        if view.is_root(vid) {
            continue;
        }
        let on_path = main_path.contains(&id) || n_path.contains(&id);
        if on_path {
            if let Some(bv) = view.bv(vid) {
                for pred in smt.predicates(id) {
                    add(predicate::to_param_condition(bv, pred)?, &mut guard);
                }
            }
        } else if smt
            .parent(id)
            .map(|p| main_path.contains(&p) || n_path.contains(&p))
            == Some(true)
        {
            // Branch directly off the path: existence guard.
            let sub = nest(view, smt, id, catalog)?;
            add(exists_maybe_negated(smt, id, sub), &mut guard);
        }
        // Deeper branch nodes are folded in by `nest` above.
    }
    if let Some(g) = &mut guard {
        let mut wrapper = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
        wrapper.where_clause = Some(g.clone());
        rename_params(&mut wrapper, &bvmap);
        *g = wrapper.where_clause.take().expect("just set");
    }
    Ok(UnbindResult {
        query: UnboundQuery::Rebind { source, guard },
        bvmap,
    })
}

fn all_nodes(smt: &TreePattern) -> Vec<TpId> {
    let mut out = Vec::new();
    let mut stack = vec![smt.root()];
    while let Some(id) = stack.pop() {
        out.push(id);
        for &c in smt.children(id) {
            stack.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combine::combine;
    use crate::matchq::matchq;
    use crate::paper_fixtures::{figure1_view, figure2_catalog};
    use crate::selectq::selectq;
    use xvc_view::ViewNodeId;
    use xvc_xpath::{parse_path, parse_pattern};

    fn by_id(view: &SchemaTree, id: u32) -> ViewNodeId {
        view.find_by_paper_id(id).unwrap()
    }

    fn smt_for(view: &SchemaTree, from: u32, select: &str, to: u32, pattern: &str) -> TreePattern {
        let n1 = if from == 0 {
            view.root()
        } else {
            by_id(view, from)
        };
        let t = selectq(view, n1, &parse_path(select).unwrap(), by_id(view, to))
            .unwrap()
            .remove(0);
        let p = matchq(view, by_id(view, to), &parse_pattern(pattern).unwrap())
            .unwrap()
            .unwrap();
        combine(view, &t, &p).unwrap()
    }

    #[test]
    fn figure7a_qs_new() {
        // Edge e2: unbinding Qs(h) with Qh(m) — the paper's first example
        // (§4.2.1).
        let v = figure1_view();
        let smt = smt_for(&v, 1, "hotel/confstat", 4, "confstat");
        let mut bvmap = HashMap::new();
        bvmap.insert("m".to_owned(), "m_new".to_owned());
        let r = unbind_smt(&v, &smt, "s_new", &bvmap, &figure2_catalog()).unwrap();
        let UnboundQuery::Query(q) = r.query else {
            panic!("expected a query");
        };
        let sql = q.to_sql();
        // SELECT SUM(capacity), TEMP.* with the hotel subquery derived and
        // GROUP BY over all TEMP columns (Figure 7a).
        assert!(sql.starts_with("SELECT SUM(capacity), TEMP.*"), "{sql}");
        assert!(sql.contains("FROM confroom, OUTER ("), "{sql}");
        assert!(sql.contains("metro_id = $m_new.metroid"), "{sql}");
        assert!(sql.contains("starrating > 4"), "{sql}");
        assert!(sql.contains("chotel_id = TEMP.hotelid"), "{sql}");
        assert!(
            sql.contains("GROUP BY TEMP.hotelid, TEMP.hotelname, TEMP.starrating"),
            "{sql}"
        );
        assert!(sql.contains("TEMP.gym"), "{sql}");
        // bvmap gained h→s_new and s→s_new.
        assert_eq!(r.bvmap.get("h").map(String::as_str), Some("s_new"));
        assert_eq!(r.bvmap.get("s").map(String::as_str), Some("s_new"));
        assert_eq!(r.bvmap.get("m").map(String::as_str), Some("m_new"));
    }

    #[test]
    fn figure7a_qc_new() {
        // Edge e3: the sibling-existence example — Qc plus an EXISTS on
        // the hotel_available branch (§4.2.1's second example).
        let v = figure1_view();
        let smt = smt_for(
            &v,
            4,
            "../hotel_available/../confroom",
            5,
            "metro/hotel/confroom",
        );
        let mut bvmap = HashMap::new();
        bvmap.insert("m".to_owned(), "m_new".to_owned());
        bvmap.insert("h".to_owned(), "s_new".to_owned());
        bvmap.insert("s".to_owned(), "s_new".to_owned());
        let r = unbind_smt(&v, &smt, "c_new", &bvmap, &figure2_catalog()).unwrap();
        let UnboundQuery::Query(q) = r.query else {
            panic!("expected a query");
        };
        let sql = q.to_sql();
        assert!(sql.starts_with("SELECT *\nFROM confroom"), "{sql}");
        assert!(sql.contains("chotel_id = $s_new.hotelid"), "{sql}");
        assert!(sql.contains("EXISTS ("), "{sql}");
        assert!(sql.contains("SELECT COUNT(a_id), startdate"), "{sql}");
        assert!(sql.contains("rhotel_id = $s_new.hotelid"), "{sql}");
        assert!(sql.contains("GROUP BY startdate"), "{sql}");
        // S-path removal: confstat's bv `s` is dropped; c→c_new added.
        assert!(!r.bvmap.contains_key("s"));
        assert_eq!(r.bvmap.get("c").map(String::as_str), Some("c_new"));
    }

    #[test]
    fn root_edge_has_no_parameters() {
        let v = figure1_view();
        let smt = smt_for(&v, 0, "metro", 1, "metro");
        let r = unbind_smt(&v, &smt, "m_new", &HashMap::new(), &figure2_catalog()).unwrap();
        let UnboundQuery::Query(q) = r.query else {
            panic!();
        };
        assert_eq!(q.to_sql(), "SELECT metroid, metroname\nFROM metroarea");
        assert_eq!(r.bvmap.get("m").map(String::as_str), Some("m_new"));
    }

    #[test]
    fn figure20_predicates() {
        // The §5.1 example: value predicates land in WHERE / on binding
        // tuples; existence predicates nest with HAVING.
        let v = figure1_view();
        let select =
            ".[@sum<200]/../hotel_available/../confroom[../confstat[@sum>100]][@capacity>250]";
        let pattern = "metro[@metroname=\"chicago\"]/hotel/confroom";
        let smt = smt_for(&v, 4, select, 5, pattern);
        let mut bvmap = HashMap::new();
        bvmap.insert("m".to_owned(), "m_new".to_owned());
        bvmap.insert("h".to_owned(), "s_new".to_owned());
        bvmap.insert("s".to_owned(), "s_new".to_owned());
        let r = unbind_smt(&v, &smt, "c_new", &bvmap, &figure2_catalog()).unwrap();
        let UnboundQuery::Query(q) = r.query else {
            panic!();
        };
        let sql = q.to_sql();
        assert!(sql.contains("capacity > 250"), "{sql}");
        assert!(sql.contains("$s_new.sum < 200"), "{sql}");
        assert!(sql.contains("$m_new.metroname = 'chicago'"), "{sql}");
        assert!(sql.contains("HAVING SUM(capacity) > 100"), "{sql}");
        // Two EXISTS: the confstat[@sum>100] branch and hotel_available.
        assert_eq!(sql.matches("EXISTS (").count(), 2, "{sql}");
    }

    #[test]
    fn rebind_for_self_select() {
        // A `.[...]` select (as produced by the §5.2 if-rewrite): no SQL,
        // reuse the bound tuple with a guard.
        let v = figure1_view();
        let t = selectq(
            &v,
            by_id(&v, 3),
            &parse_path(".[@pool='yes']").unwrap(),
            by_id(&v, 3),
        )
        .unwrap()
        .remove(0);
        let p = matchq(&v, by_id(&v, 3), &parse_pattern("hotel").unwrap())
            .unwrap()
            .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        let mut bvmap = HashMap::new();
        bvmap.insert("h".to_owned(), "h_new".to_owned());
        let r = unbind_smt(&v, &smt, "x", &bvmap, &figure2_catalog()).unwrap();
        let UnboundQuery::Rebind { source, guard } = r.query else {
            panic!("expected rebind, got {:?}", r.query);
        };
        assert_eq!(source, "h_new");
        let g = guard.unwrap();
        let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
        probe.where_clause = Some(g);
        assert!(probe.to_sql().contains("$h_new.pool = 'yes'"));
    }

    #[test]
    fn rebind_missing_binding_errors() {
        let v = figure1_view();
        let t = selectq(&v, by_id(&v, 3), &parse_path(".").unwrap(), by_id(&v, 3))
            .unwrap()
            .remove(0);
        let p = matchq(&v, by_id(&v, 3), &parse_pattern("hotel").unwrap())
            .unwrap()
            .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        assert!(matches!(
            unbind_smt(&v, &smt, "x", &HashMap::new(), &figure2_catalog()),
            Err(Error::NotComposable { .. })
        ));
    }

    #[test]
    fn nest_builds_recursive_exists() {
        // NEST over hotel_available includes its metro_available child.
        let v = figure1_view();
        let t = selectq(
            &v,
            by_id(&v, 4),
            &parse_path("../hotel_available[metro_available]/../confroom").unwrap(),
            by_id(&v, 5),
        )
        .unwrap()
        .remove(0);
        let p = matchq(&v, by_id(&v, 5), &parse_pattern("confroom").unwrap())
            .unwrap()
            .unwrap();
        let smt = combine(&v, &t, &p).unwrap();
        let mut bvmap = HashMap::new();
        bvmap.insert("m".to_owned(), "m_new".to_owned());
        bvmap.insert("h".to_owned(), "s_new".to_owned());
        let r = unbind_smt(&v, &smt, "c_new", &bvmap, &figure2_catalog()).unwrap();
        let UnboundQuery::Query(q) = r.query else {
            panic!();
        };
        let sql = q.to_sql();
        // Nested EXISTS: hotel_available EXISTS containing the
        // metro_available EXISTS, correlated by bare startdate.
        assert_eq!(sql.matches("EXISTS (").count(), 2, "{sql}");
        assert!(
            sql.contains("startdate = startdate") || sql.contains("metro_id = $m_new.metroid"),
            "{sql}"
        );
    }
}
