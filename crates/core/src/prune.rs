//! Dead-branch pruning over the TVQ (§4.2.1).
//!
//! A predicate-dataflow pass walks the TVQ top-down, carrying the
//! `$bv.column` facts established by every ancestor's tag query (seeded
//! from the DDL constraints [`xvc_rel::facts`] retains). A node whose tag
//! query is provably empty under those facts can never produce an element,
//! so its whole subtree is dead: [`prune_tvq`] removes it *before*
//! [`crate::stylesheet_view::build_stylesheet_view`] runs, shrinking both
//! the TVQ and the composed view. Surviving queries additionally have
//! their provably redundant conjuncts dropped.
//!
//! Every decision is justified by a recorded fact chain
//! ([`NodeVerdict::chain`]), which `xvc check` surfaces as `XVC4xx`
//! diagnostics and which the equivalence property tests keep honest:
//! pruning must preserve `v'(I) = x(v(I))`.

use xvc_rel::facts::{
    analyze_query, drop_redundant_conjuncts, param_key, query_cardinality, QueryAnalysis,
};
use xvc_rel::{Card, CardBound, Catalog, FactSet, ScalarExpr, SelectItem, SelectQuery};

use crate::tvq::Tvq;
use crate::unbind::UnboundQuery;

/// The dataflow verdict for one TVQ node.
#[derive(Debug, Clone)]
pub struct NodeVerdict {
    /// The node's tag query (or rebind guard) is provably empty: no
    /// instance of this node — or its subtree — can ever be produced.
    pub dead: bool,
    /// Fact chain justifying `dead`, oldest fact first.
    pub chain: Vec<String>,
    /// The conjunct-level analysis of the node's tag query (or of its
    /// rebind guard, wrapped in a probe query). `None` for literal
    /// bindings and guardless rebinds.
    pub analysis: Option<QueryAnalysis>,
    /// Cardinality bound on element instances per parent instance: the
    /// tag query's row bound under the inherited facts; exactly one for
    /// literal bindings and rebinds (a rebind re-emits the bound tuple,
    /// and its guard can only suppress it).
    pub fan_out: CardBound,
    /// Bound on this node's instances across the whole document (the
    /// running product of fan-outs down the binding path). `Zero` for
    /// nodes inside dead subtrees.
    pub cumulative: Card,
}

impl Default for NodeVerdict {
    fn default() -> Self {
        NodeVerdict {
            dead: false,
            chain: Vec::new(),
            analysis: None,
            fan_out: CardBound::unbounded(),
            // Unvisited nodes are exactly the descendants of dead
            // subtree roots: provably never instantiated.
            cumulative: Card::Zero,
        }
    }
}

/// Result of [`analyze_tvq`]: one verdict per TVQ node, same indexing.
#[derive(Debug, Clone)]
pub struct TvqAnalysis {
    /// Per-node verdicts, indexed like [`Tvq::nodes`].
    pub verdicts: Vec<NodeVerdict>,
    /// Bound on total element instances the TVQ can produce (sum of
    /// per-node cumulative bounds) — the document-growth bound.
    pub document: Card,
    /// Bound on the largest set-oriented batch any node's tag query can
    /// carry: the cumulative instance bound of its parent.
    pub max_batch: Card,
}

impl Default for TvqAnalysis {
    fn default() -> Self {
        TvqAnalysis {
            verdicts: Vec::new(),
            document: Card::Zero,
            max_batch: Card::Zero,
        }
    }
}

impl TvqAnalysis {
    /// Indices of nodes whose own verdict is dead (subtree roots of the
    /// pruned regions; their descendants are not re-flagged).
    pub fn dead_nodes(&self) -> Vec<usize> {
        self.verdicts
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.dead.then_some(i))
            .collect()
    }
}

/// What [`prune_tvq`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// TVQ nodes removed (dead subtree roots plus their descendants).
    pub nodes_removed: usize,
    /// Provably redundant conjuncts dropped from surviving tag queries.
    pub conjuncts_eliminated: usize,
}

/// Wraps a rebind guard in an empty-`FROM` `SELECT 1` probe so the fact
/// engine can analyze its conjuncts (guards only reference `$bv.column`
/// parameters, which is exactly what the inherited fact set carries).
fn guard_probe(guard: &ScalarExpr) -> SelectQuery {
    let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
    probe.where_clause = Some(guard.clone());
    probe
}

/// Runs the predicate-dataflow pass over the TVQ without mutating it.
pub fn analyze_tvq(tvq: &Tvq, catalog: &Catalog) -> TvqAnalysis {
    let mut analysis = TvqAnalysis {
        verdicts: vec![NodeVerdict::default(); tvq.nodes.len()],
        ..TvqAnalysis::default()
    };
    let env = FactSet::new();
    for &r in &tvq.roots {
        visit(
            tvq,
            catalog,
            r,
            &env,
            Card::AtMostOne,
            &mut analysis.verdicts,
        );
    }
    for v in &analysis.verdicts {
        analysis.document = analysis.document.plus(v.cumulative);
    }
    // A node's batch is bounded by its parent's document-wide instance
    // count; roots bind under the (single) document root.
    let mut max_batch = Card::Zero;
    let mut is_root = vec![false; tvq.nodes.len()];
    for &r in &tvq.roots {
        is_root[r] = true;
    }
    for (idx, v) in analysis.verdicts.iter().enumerate() {
        if is_root[idx] {
            max_batch = card_max(max_batch, Card::AtMostOne);
        }
        for &(c, _) in &tvq.nodes[idx].children {
            if !analysis.verdicts[c].dead {
                max_batch = card_max(max_batch, v.cumulative);
            }
        }
    }
    analysis.max_batch = max_batch;
    analysis
}

/// The larger of two bounds (join of the `Card` lattice).
fn card_max(a: Card, b: Card) -> Card {
    match (a.as_limit(), b.as_limit()) {
        (Some(x), Some(y)) => {
            if x >= y {
                a
            } else {
                b
            }
        }
        _ => Card::Unbounded,
    }
}

fn visit(
    tvq: &Tvq,
    catalog: &Catalog,
    idx: usize,
    env: &FactSet,
    parent_cum: Card,
    verdicts: &mut Vec<NodeVerdict>,
) {
    let node = &tvq.nodes[idx];
    let mut child_env: Option<FactSet> = None;
    let fan_out;
    match &node.binding {
        UnboundQuery::Query(q) => {
            let a = analyze_query(q, catalog, env);
            if a.empty {
                verdicts[idx] = NodeVerdict {
                    dead: true,
                    chain: a.empty_chain.clone(),
                    fan_out: CardBound::new(Card::Zero, a.empty_chain.clone()),
                    cumulative: Card::Zero,
                    analysis: Some(a),
                };
                return; // the whole subtree is dead; no need to descend
            }
            fan_out = query_cardinality(q, catalog, env).total;
            // Conjuncts of a non-aggregating (or grouped) query constrain
            // every tuple bound below this node, so the narrowed parameter
            // facts — and this query's own output columns under `$bv` —
            // flow to the descendants. An *implicitly* aggregating query
            // yields its one row even when its WHERE holds for no tuple,
            // so nothing may be propagated from it.
            let implicit_agg = q.is_aggregating() && q.group_by.is_empty();
            if !implicit_agg && a.contradiction.is_none() {
                let mut next = a.param_facts.clone();
                if !node.bv.is_empty() {
                    for (col, entry) in &a.out_facts {
                        next.insert(param_key(&node.bv, col), entry.clone());
                    }
                }
                child_env = Some(next);
            }
            verdicts[idx].analysis = Some(a);
        }
        UnboundQuery::Rebind { guard, .. } => {
            // The node reuses the tuple bound to `source` (== `node.bv`),
            // whose facts are already in `env` under `$source.*`; it is
            // re-emitted at most once per parent instance, guard or not.
            fan_out = CardBound::new(
                Card::AtMostOne,
                vec!["rebind: re-emits the bound tuple at most once".to_owned()],
            );
            if let Some(g) = guard {
                let a = analyze_query(&guard_probe(g), catalog, env);
                if a.empty {
                    verdicts[idx] = NodeVerdict {
                        dead: true,
                        chain: a.empty_chain.clone(),
                        fan_out: CardBound::new(Card::Zero, a.empty_chain.clone()),
                        cumulative: Card::Zero,
                        analysis: Some(a),
                    };
                    return;
                }
                // A guard that held narrows the reused tuple's facts for
                // everything below this node.
                if a.contradiction.is_none() {
                    child_env = Some(a.param_facts.clone());
                }
                verdicts[idx].analysis = Some(a);
            }
        }
        UnboundQuery::Literal => {
            fan_out = CardBound::new(
                Card::AtMostOne,
                vec!["literal binding: one instance per parent".to_owned()],
            );
        }
    }
    let cumulative = parent_cum.times(fan_out.card);
    verdicts[idx].fan_out = fan_out;
    verdicts[idx].cumulative = cumulative;
    let env_ref = child_env.as_ref().unwrap_or(env);
    for &(c, _) in &tvq.nodes[idx].children {
        visit(tvq, catalog, c, env_ref, cumulative, verdicts);
    }
}

/// Analyzes the TVQ and prunes it in place: dead subtrees are removed
/// (indices remapped) and surviving tag queries lose their provably
/// redundant conjuncts.
pub fn prune_tvq(tvq: &mut Tvq, catalog: &Catalog) -> PruneStats {
    let analysis = analyze_tvq(tvq, catalog);
    apply_prune(tvq, &analysis)
}

/// Applies a previously computed [`TvqAnalysis`] to the TVQ it was
/// computed for. Panics if `analysis` does not match `tvq`'s node count.
pub fn apply_prune(tvq: &mut Tvq, analysis: &TvqAnalysis) -> PruneStats {
    assert_eq!(
        analysis.verdicts.len(),
        tvq.nodes.len(),
        "TvqAnalysis does not match this TVQ"
    );
    let n = tvq.nodes.len();
    // A node goes when its own verdict is dead or any ancestor's is.
    let mut removed = vec![false; n];
    for idx in analysis.dead_nodes() {
        mark_subtree(tvq, idx, &mut removed);
    }
    let nodes_removed = removed.iter().filter(|&&r| r).count();

    let mut conjuncts_eliminated = 0;
    if nodes_removed > 0 {
        let mut remap = vec![usize::MAX; n];
        let mut kept = Vec::with_capacity(n - nodes_removed);
        for (old, node) in tvq.nodes.iter().enumerate() {
            if !removed[old] {
                remap[old] = kept.len();
                kept.push(node.clone());
            }
        }
        for node in &mut kept {
            // A kept node's parent is kept too: removal is subtree-closed.
            node.parent = node.parent.map(|p| remap[p]);
            node.children = node
                .children
                .iter()
                .filter(|(c, _)| !removed[*c])
                .map(|&(c, ati)| (remap[c], ati))
                .collect();
        }
        tvq.roots = tvq
            .roots
            .iter()
            .filter(|&&r| !removed[r])
            .map(|&r| remap[r])
            .collect();
        tvq.nodes = kept;
        // Simplify the survivors using their (pre-remap) analyses.
        for (old, verdict) in analysis.verdicts.iter().enumerate() {
            if removed[old] || verdict.dead {
                continue;
            }
            if let (Some(a), UnboundQuery::Query(q)) =
                (&verdict.analysis, &mut tvq.nodes[remap[old]].binding)
            {
                conjuncts_eliminated += drop_redundant_conjuncts(q, a);
            }
        }
    } else {
        for (idx, verdict) in analysis.verdicts.iter().enumerate() {
            if let (Some(a), UnboundQuery::Query(q)) =
                (&verdict.analysis, &mut tvq.nodes[idx].binding)
            {
                conjuncts_eliminated += drop_redundant_conjuncts(q, a);
            }
        }
    }

    PruneStats {
        nodes_removed,
        conjuncts_eliminated,
    }
}

fn mark_subtree(tvq: &Tvq, idx: usize, removed: &mut [bool]) {
    if removed[idx] {
        return;
    }
    removed[idx] = true;
    for &(c, _) in &tvq.nodes[idx].children {
        mark_subtree(tvq, c, removed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctg::build_ctg;
    use crate::paper_fixtures::{figure1_view, figure2_catalog};
    use crate::tvq::{build_tvq, DEFAULT_TVQ_LIMIT};
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    fn figure4_tvq() -> (Tvq, Catalog) {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let catalog = figure2_catalog();
        let tvq = build_tvq(&v, &x, &ctg, &catalog, DEFAULT_TVQ_LIMIT).unwrap();
        (tvq, catalog)
    }

    #[test]
    fn cardinality_annotations_flow_down_binding_paths() {
        let (tvq, catalog) = figure4_tvq();
        let analysis = analyze_tvq(&tvq, &catalog);
        // Figure 2's catalog has no key that pins the metro/hotel scans,
        // so the document-growth bound is unbounded — but every node still
        // gets a per-parent fan-out verdict, and implicit aggregates are
        // provably single-row.
        assert_eq!(analysis.verdicts.len(), tvq.nodes.len());
        assert_eq!(analysis.document, Card::Unbounded);
        let mut saw_single = false;
        for (node, v) in tvq.nodes.iter().zip(&analysis.verdicts) {
            match &node.binding {
                UnboundQuery::Query(q) if q.is_aggregating() && q.group_by.is_empty() => {
                    assert!(v.fan_out.card.at_most_one(), "{:?}", v.fan_out);
                    saw_single = true;
                }
                UnboundQuery::Rebind { .. } | UnboundQuery::Literal => {
                    assert!(v.fan_out.card.at_most_one(), "{:?}", v.fan_out);
                    saw_single = true;
                }
                _ => {}
            }
            // cumulative = product along the path, never below fan-out
            // alone when the parent has at least one instance.
            if !v.dead {
                assert_ne!(v.cumulative, Card::Zero, "live node bound to zero");
            }
        }
        assert!(
            saw_single,
            "figure 4 TVQ has at least one single-instance binding"
        );
    }

    #[test]
    fn dead_subtree_descendants_bound_to_zero() {
        let (mut tvq, catalog) = figure4_tvq();
        let hotel_idx = tvq
            .nodes
            .iter()
            .position(|n| {
                matches!(&n.binding, UnboundQuery::Query(q)
                    if q.to_sql_inline().contains("starrating"))
            })
            .expect("figure 4 TVQ binds the hotel query");
        let bv = tvq.nodes[hotel_idx].bv.clone();
        let child = TvqNodeBuilder::leaf(&tvq, hotel_idx, &bv, 3);
        let child_idx = tvq.nodes.len();
        tvq.nodes.push(child);
        tvq.nodes[hotel_idx].children.push((child_idx, 0));
        let analysis = analyze_tvq(&tvq, &catalog);
        let v = &analysis.verdicts[child_idx];
        assert!(v.dead);
        assert_eq!(v.fan_out.card, Card::Zero);
        assert_eq!(v.cumulative, Card::Zero);
        assert_eq!(v.fan_out.chain, v.chain);
    }

    #[test]
    fn clean_workload_prunes_nothing() {
        let (mut tvq, catalog) = figure4_tvq();
        let before = tvq.clone();
        let analysis = analyze_tvq(&tvq, &catalog);
        assert!(analysis.dead_nodes().is_empty());
        let stats = prune_tvq(&mut tvq, &catalog);
        assert_eq!(stats.nodes_removed, 0);
        // Structure untouched (conjunct drops, if any, only touch queries).
        assert_eq!(before.roots, tvq.roots);
        assert_eq!(before.nodes.len(), tvq.nodes.len());
    }

    #[test]
    fn contradictory_descendant_predicate_kills_subtree() {
        // The view's hotel node filters `starrating > 4` (Figure 1); a tag
        // query below it demanding `starrating < 3` on the same bound
        // tuple can never hold.
        let (mut tvq, catalog) = figure4_tvq();
        // Find a node that binds the hotel query and give one of its
        // children a contradictory guard on the hotel tuple.
        let hotel_idx = tvq
            .nodes
            .iter()
            .position(|n| {
                matches!(&n.binding, UnboundQuery::Query(q)
                    if q.to_sql_inline().contains("starrating"))
            })
            .expect("figure 4 TVQ binds the hotel query");
        let bv = tvq.nodes[hotel_idx].bv.clone();
        let child = TvqNodeBuilder::leaf(&tvq, hotel_idx, &bv, 3);
        let child_idx = tvq.nodes.len();
        tvq.nodes.push(child);
        tvq.nodes[hotel_idx].children.push((child_idx, 0));

        let analysis = analyze_tvq(&tvq, &catalog);
        assert_eq!(analysis.dead_nodes(), vec![child_idx]);
        let chain = &analysis.verdicts[child_idx].chain;
        assert!(
            chain.iter().any(|s| s.contains("starrating")),
            "chain should cite the inherited starrating fact: {chain:?}"
        );

        let before = tvq.nodes.len();
        let stats = prune_tvq(&mut tvq, &catalog);
        assert_eq!(stats.nodes_removed, 1);
        assert_eq!(tvq.nodes.len(), before - 1);
        // Parent's child list no longer mentions the removed node.
        assert!(tvq.nodes[hotel_idx]
            .children
            .iter()
            .all(|&(c, _)| c < tvq.nodes.len()));
    }

    #[test]
    fn dead_node_takes_descendants_with_it() {
        let (mut tvq, catalog) = figure4_tvq();
        let hotel_idx = tvq
            .nodes
            .iter()
            .position(|n| {
                matches!(&n.binding, UnboundQuery::Query(q)
                    if q.to_sql_inline().contains("starrating"))
            })
            .unwrap();
        let bv = tvq.nodes[hotel_idx].bv.clone();
        // Dead child with a live grandchild below it.
        let child = TvqNodeBuilder::leaf(&tvq, hotel_idx, &bv, 3);
        let child_idx = tvq.nodes.len();
        tvq.nodes.push(child);
        tvq.nodes[hotel_idx].children.push((child_idx, 0));
        let mut grandchild = TvqNodeBuilder::leaf(&tvq, child_idx, &bv, 10);
        grandchild.binding = UnboundQuery::Literal;
        let grandchild_idx = tvq.nodes.len();
        tvq.nodes.push(grandchild);
        tvq.nodes[child_idx].children.push((grandchild_idx, 0));

        let before = tvq.nodes.len();
        let stats = prune_tvq(&mut tvq, &catalog);
        assert_eq!(stats.nodes_removed, 2);
        assert_eq!(tvq.nodes.len(), before - 2);
    }

    #[test]
    fn redundant_guard_is_not_fatal() {
        // A guard entailed by the inherited facts leaves the node alive.
        let (mut tvq, catalog) = figure4_tvq();
        let hotel_idx = tvq
            .nodes
            .iter()
            .position(|n| {
                matches!(&n.binding, UnboundQuery::Query(q)
                    if q.to_sql_inline().contains("starrating"))
            })
            .unwrap();
        let bv = tvq.nodes[hotel_idx].bv.clone();
        // starrating > 2 is implied by the view's starrating > 4.
        let mut child = TvqNodeBuilder::leaf(&tvq, hotel_idx, &bv, 3);
        child.binding = UnboundQuery::Rebind {
            source: bv.clone(),
            guard: Some(ScalarExpr::binary(
                xvc_rel::BinOp::Gt,
                ScalarExpr::param(&bv, "starrating"),
                ScalarExpr::int(2),
            )),
        };
        let child_idx = tvq.nodes.len();
        tvq.nodes.push(child);
        tvq.nodes[hotel_idx].children.push((child_idx, 0));

        let analysis = analyze_tvq(&tvq, &catalog);
        assert!(!analysis.verdicts[child_idx].dead);
        let a = analysis.verdicts[child_idx].analysis.as_ref().unwrap();
        assert_eq!(a.redundant.len(), 1);
    }

    /// Test-only helper constructing a leaf TVQ node whose tag query
    /// contradicts the hotel filter: `SELECT * FROM hotel WHERE
    /// starrating < {hi} AND hotelid = $bv.hotelid AND starrating =
    /// $bv.starrating` — rebinding the parent's hotel tuple, so the
    /// inherited `> 4` fact meets `< hi`.
    struct TvqNodeBuilder;
    impl TvqNodeBuilder {
        fn leaf(tvq: &Tvq, parent: usize, bv: &str, hi: i64) -> crate::tvq::TvqNode {
            use xvc_rel::BinOp;
            let mut q = SelectQuery::new(
                vec![SelectItem::Star],
                vec![xvc_rel::TableRef::Named {
                    name: "hotel".into(),
                    alias: None,
                }],
            );
            q.and_where(ScalarExpr::binary(
                BinOp::Eq,
                ScalarExpr::col("starrating"),
                ScalarExpr::param(bv, "starrating"),
            ));
            q.and_where(ScalarExpr::binary(
                BinOp::Lt,
                ScalarExpr::col("starrating"),
                ScalarExpr::int(hi),
            ));
            crate::tvq::TvqNode {
                view: tvq.nodes[parent].view,
                rule: tvq.nodes[parent].rule,
                bv: format!("{bv}_leaf"),
                binding: UnboundQuery::Query(q),
                is_entry: false,
                bvmap: std::collections::HashMap::new(),
                parent: Some(parent),
                children: Vec::new(),
            }
        }
    }
}
