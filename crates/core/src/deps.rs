//! Static table→view dependency analysis (lineage) over the TVQ.
//!
//! The composed view makes every published XML node a function of base
//! relations; this module recovers that function's *support* statically.
//! For each analysis unit — a TVQ node on the acyclic path, or a raw view
//! node when the CTG is cyclic and no TVQ exists (§5.3) — it walks the
//! unit's tag query and emission guard recording every base
//! `(table, column)` reference, partitioned by [`DepRole`]:
//!
//! * **scan source** — the table appears in a `FROM` (any nesting);
//! * **join key** — the column sits in an equality conjunct against
//!   another column or a `$bv.column` parameter;
//! * **predicate** — the column feeds a pushdown / `HAVING` / `GROUP BY`
//!   condition, or any condition inside an `EXISTS`;
//! * **guard** — the column is reachable from an emission guard;
//! * **output** — the column is projected into XML attributes.
//!
//! Each edge is classified for *update-safety* ([`UpdateSafety`]): whether
//! a base-row insert can be appended monotonically, patched in place, or
//! forces recomputation (the column feeds a guard, join key, `GROUP BY`,
//! aggregation, or a recursion cycle). Every edge carries a fact chain in
//! the XVC4xx/5xx justification style.
//!
//! Downstream consumers: the XVC601–604 diagnostics of `xvc check`, the
//! `xvc deps` CLI, and the delta-republish experiments (the publisher's
//! own runtime path uses the coarser `xvc_view::TableDeps`, which this
//! analysis refines but must never under-approximate).

use std::collections::{BTreeMap, BTreeSet};

use xvc_rel::{Catalog, ScalarExpr, SelectItem, SelectQuery, TableRef};
use xvc_view::{SchemaTree, ViewNodeId};

use crate::tvq::Tvq;
use crate::unbind::UnboundQuery;

/// The role a base column plays for a view node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DepRole {
    /// The table is a scan source of the tag query (column is `*`).
    Scan,
    /// Equality join key (column–column or column–parameter).
    JoinKey,
    /// Pushdown predicate, `GROUP BY` / `HAVING` input, or any condition
    /// inside an `EXISTS` subquery.
    Predicate,
    /// Reachable from the node's emission guard.
    Guard,
    /// Projected into the node's XML attributes.
    Output,
}

impl DepRole {
    /// Stable lowercase rendering (`scan`, `join-key`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            DepRole::Scan => "scan",
            DepRole::JoinKey => "join-key",
            DepRole::Predicate => "predicate",
            DepRole::Guard => "guard",
            DepRole::Output => "output",
        }
    }
}

/// Static update-safety classification of one dependency edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum UpdateSafety {
    /// An insert into the table can only append new instances of the view
    /// node; existing instances are untouched (non-aggregating scan).
    InsertMonotone,
    /// A change to the column rewrites attribute values of existing
    /// instances in place, keyed by the surviving instance identity.
    InPlacePatch,
    /// A change can restructure the result (guard, join key, `GROUP BY`,
    /// aggregation, or recursion cycle): the subtree must be recomputed.
    RecomputeRequired,
}

impl UpdateSafety {
    /// Stable lowercase rendering (`insert-monotone`, …).
    pub fn as_str(self) -> &'static str {
        match self {
            UpdateSafety::InsertMonotone => "insert-monotone",
            UpdateSafety::InPlacePatch => "in-place-patch",
            UpdateSafety::RecomputeRequired => "recompute-required",
        }
    }
}

/// One dependency edge: base `(table, column)` → view node, with role,
/// safety class and fact-chain justification.
#[derive(Debug, Clone)]
pub struct DepEdge {
    /// Base table.
    pub table: String,
    /// Base column, or `*` for a whole-table scan-source edge.
    pub column: String,
    /// The schema-tree node the analysis unit publishes.
    pub view: ViewNodeId,
    /// Template rule index of the TVQ unit (`None` on raw-view walks).
    pub rule: Option<usize>,
    /// Human-readable unit label, e.g. `TVQ node <confstat> (rule R3, $s_new)`.
    pub unit: String,
    /// The role the column plays.
    pub role: DepRole,
    /// Static update-safety of this edge.
    pub safety: UpdateSafety,
    /// Fact chain justifying the edge, innermost fact last.
    pub chain: Vec<String>,
}

impl DepEdge {
    /// The rendered fact chain (`fact chain: a  ->  b`), XVC4xx/5xx style.
    pub fn justification(&self) -> String {
        if self.chain.is_empty() {
            "no recorded facts (structurally impossible)".to_owned()
        } else {
            format!("fact chain: {}", self.chain.join("  ->  "))
        }
    }
}

/// The full dependency map of one workload: every `(table, column)` →
/// `(view node, role)` edge, plus the inversions the consumers need.
#[derive(Debug, Clone, Default)]
pub struct DependencyMap {
    /// All edges, in analysis order (units in pre-order, roles per unit).
    pub edges: Vec<DepEdge>,
    /// True when the map was built from the raw view because the CTG is
    /// cyclic (every edge is then recompute-required).
    pub recursive: bool,
}

impl DependencyMap {
    /// Builds the map by walking the TVQ (the acyclic composition path).
    /// Each TVQ node is one analysis unit; `$bv.column` parameters resolve
    /// through the TVQ parent chain to the ancestor's projected base
    /// column.
    pub fn of_tvq(tvq: &Tvq, view: &SchemaTree, catalog: &Catalog) -> DependencyMap {
        let mut map = DependencyMap {
            edges: Vec::new(),
            recursive: false,
        };
        for (idx, w) in tvq.nodes.iter().enumerate() {
            let unit = tvq_unit_label(view, tvq, idx);
            let resolver =
                |var: &str, column: &str| resolve_tvq_param(tvq, catalog, idx, var, column);
            match &w.binding {
                UnboundQuery::Query(q) => {
                    collect_unit(
                        &mut map,
                        catalog,
                        q,
                        None,
                        w.view,
                        Some(w.rule),
                        &unit,
                        &resolver,
                        false,
                    );
                }
                UnboundQuery::Rebind { guard: Some(g), .. } => {
                    collect_guard_unit(
                        &mut map,
                        catalog,
                        g,
                        w.view,
                        Some(w.rule),
                        &unit,
                        &resolver,
                        false,
                    );
                }
                _ => {}
            }
        }
        map
    }

    /// Builds the map from the raw view — the §5.3 path for cyclic CTGs
    /// (no TVQ exists). When `recursive` is true every edge is classified
    /// recompute-required: an update reaching a recursion cycle cannot be
    /// patched structurally.
    pub fn of_view(view: &SchemaTree, catalog: &Catalog, recursive: bool) -> DependencyMap {
        let mut map = DependencyMap {
            edges: Vec::new(),
            recursive,
        };
        for vid in view.node_ids() {
            let node = view.node(vid).expect("non-root id");
            let unit = format!("view node <{}> (${})", node.tag, node.bv);
            let resolver =
                |var: &str, column: &str| resolve_view_param(view, catalog, vid, var, column);
            if let Some(q) = &node.query {
                collect_unit(
                    &mut map, catalog, q, None, vid, None, &unit, &resolver, recursive,
                );
            }
            if let Some(g) = &node.guard {
                collect_guard_unit(&mut map, catalog, g, vid, None, &unit, &resolver, recursive);
            }
        }
        map
    }

    /// Inverts the map: `(table, column)` → edges touching it, sorted.
    pub fn columns(&self) -> BTreeMap<(String, String), Vec<&DepEdge>> {
        let mut out: BTreeMap<(String, String), Vec<&DepEdge>> = BTreeMap::new();
        for e in &self.edges {
            out.entry((e.table.clone(), e.column.clone()))
                .or_default()
                .push(e);
        }
        out
    }

    /// View nodes with at least one edge from `table`.
    pub fn affected_views(&self, table: &str) -> BTreeSet<ViewNodeId> {
        self.edges
            .iter()
            .filter(|e| e.table == table)
            .map(|e| e.view)
            .collect()
    }

    /// Catalog tables no edge reads — dead weight for this workload.
    pub fn dead_tables(&self, catalog: &Catalog) -> Vec<String> {
        let read: BTreeSet<&str> = self.edges.iter().map(|e| e.table.as_str()).collect();
        catalog
            .iter()
            .map(|t| t.name.clone())
            .filter(|t| !read.contains(t.as_str()))
            .collect()
    }

    /// Distinct analysis units (by label) touching `(table, column)` —
    /// the write-amplification count behind XVC601.
    pub fn touch_count(&self, table: &str, column: &str) -> usize {
        self.edges
            .iter()
            .filter(|e| e.table == table && e.column == column)
            .map(|e| e.unit.as_str())
            .collect::<BTreeSet<_>>()
            .len()
    }

    /// Plain-text rendering of the inverted map for `xvc deps`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.recursive {
            out.push_str("# cyclic CTG: raw-view analysis, every edge recompute-required\n");
        }
        for ((table, column), edges) in self.columns() {
            out.push_str(&format!("{table}.{column}\n"));
            for e in edges {
                out.push_str(&format!(
                    "  {:<10} {:<19} {}\n",
                    e.role.as_str(),
                    format!("[{}]", e.safety.as_str()),
                    e.unit
                ));
                out.push_str(&format!("      {}\n", e.justification()));
            }
        }
        out
    }

    /// Hand-rolled JSON rendering for `xvc deps --json`: an array of edge
    /// objects sorted like [`DependencyMap::columns`].
    pub fn to_json(&self) -> String {
        let mut parts = Vec::new();
        for ((table, column), edges) in self.columns() {
            for e in edges {
                parts.push(format!(
                    "{{\"table\":\"{}\",\"column\":\"{}\",\"unit\":\"{}\",\"role\":\"{}\",\"safety\":\"{}\",\"justification\":\"{}\"}}",
                    json_escape(&table),
                    json_escape(&column),
                    json_escape(&e.unit),
                    e.role.as_str(),
                    e.safety.as_str(),
                    json_escape(&e.justification()),
                ));
            }
        }
        format!(
            "{{\"recursive\":{},\"edges\":[{}]}}",
            self.recursive,
            parts.join(",")
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Label for a TVQ analysis unit, matching the `XVC4xx` diagnostic style.
fn tvq_unit_label(view: &SchemaTree, tvq: &Tvq, idx: usize) -> String {
    let w = &tvq.nodes[idx];
    let tag = if view.is_root(w.view) {
        "root".to_owned()
    } else {
        view.node(w.view)
            .map_or_else(|| "?".to_owned(), |n| n.tag.clone())
    };
    let binding = match &w.binding {
        UnboundQuery::Query(_) => format!(", ${}", w.bv),
        UnboundQuery::Rebind { source, .. } if !source.is_empty() => {
            format!(", rebinds ${source}")
        }
        _ => String::new(),
    };
    format!("TVQ node <{tag}> (rule R{}{binding})", w.rule + 1)
}

/// Resolves `$var.column` through the TVQ parent chain: the nearest
/// ancestor whose binding variable is `var` and carries a query projects
/// `column` from some base table.
fn resolve_tvq_param(
    tvq: &Tvq,
    catalog: &Catalog,
    idx: usize,
    var: &str,
    column: &str,
) -> Vec<(String, String)> {
    let mut cur = tvq.nodes[idx].parent;
    while let Some(i) = cur {
        let w = &tvq.nodes[i];
        if w.bv == var {
            if let UnboundQuery::Query(q) = &w.binding {
                return resolve_output(q, catalog, column);
            }
            // Rebind nodes alias their source's tuple; keep climbing.
        }
        cur = w.parent;
    }
    Vec::new()
}

/// Resolves `$var.column` through the schema-tree ancestors (raw-view
/// walks). Context-copy nodes alias an ancestor's tuple, so the climb
/// follows `context_tuple_of` renames.
fn resolve_view_param(
    view: &SchemaTree,
    catalog: &Catalog,
    vid: ViewNodeId,
    var: &str,
    column: &str,
) -> Vec<(String, String)> {
    let mut wanted = var.to_owned();
    let mut cur = view.parent(vid);
    while let Some(a) = cur {
        if view.is_root(a) {
            break;
        }
        let node = view.node(a).expect("non-root id");
        if node.bv == wanted {
            if let Some(q) = &node.query {
                return resolve_output(q, catalog, column);
            }
            if let Some(src) = &node.context_tuple_of {
                wanted = src.clone();
            }
        }
        cur = view.parent(a);
    }
    Vec::new()
}

/// Resolves `$var.column` parameters to base `(table, column)` pairs —
/// the ancestor-chain walk differs between TVQ and raw-view analyses.
type Resolver<'r> = dyn Fn(&str, &str) -> Vec<(String, String)> + 'r;

/// One FROM-scope item: an alias bound to a base table or a derived query.
enum ScopeItem<'a> {
    Base(&'a str),
    Derived(&'a SelectQuery),
}

fn scope_of(q: &SelectQuery) -> Vec<(String, ScopeItem<'_>)> {
    q.from
        .iter()
        .map(|item| match item {
            TableRef::Named { name, alias } => (
                alias.clone().unwrap_or_else(|| name.clone()),
                ScopeItem::Base(name.as_str()),
            ),
            TableRef::Derived { query, alias, .. } => (alias.clone(), ScopeItem::Derived(query)),
        })
        .collect()
}

/// Resolves a column reference to base `(table, column)` pairs. Ambiguous
/// unqualified references resolve to *every* in-scope match — the analysis
/// over-approximates rather than dropping an edge.
fn resolve_col(
    q: &SelectQuery,
    catalog: &Catalog,
    qualifier: Option<&str>,
    name: &str,
) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (alias, item) in scope_of(q) {
        if qualifier.is_some_and(|w| w != alias) {
            continue;
        }
        match item {
            ScopeItem::Base(table) => {
                let has = catalog
                    .get(table)
                    .map(|s| s.column_index(name).is_some())
                    .unwrap_or(false);
                if has || qualifier.is_some() {
                    out.push((table.to_owned(), name.to_owned()));
                }
            }
            ScopeItem::Derived(dq) => out.extend(resolve_output(dq, catalog, name)),
        }
    }
    out
}

/// Resolves an *output* column of `q` (by its visible name) to the base
/// columns it projects.
fn resolve_output(q: &SelectQuery, catalog: &Catalog, wanted: &str) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for item in &q.select {
        match item {
            SelectItem::Expr { expr, alias } => {
                let visible = alias.as_deref().or(match expr {
                    ScalarExpr::Column { name, .. } => Some(name.as_str()),
                    ScalarExpr::Param { column, .. } => Some(column.as_str()),
                    _ => None,
                });
                if visible != Some(wanted) {
                    continue;
                }
                for (qual, name) in columns_in_expr(expr) {
                    out.extend(resolve_col(q, catalog, qual.as_deref(), &name));
                }
            }
            SelectItem::Star => out.extend(resolve_col(q, catalog, None, wanted)),
            SelectItem::QualifiedStar(alias) => {
                out.extend(resolve_col(q, catalog, Some(alias), wanted));
            }
        }
    }
    out
}

/// All direct column references in a scalar expression (no `EXISTS`
/// descent — subqueries have their own scopes and are analyzed there).
fn columns_in_expr(e: &ScalarExpr) -> Vec<(Option<String>, String)> {
    let mut out = Vec::new();
    collect_columns(e, &mut out);
    out
}

fn collect_columns(e: &ScalarExpr, out: &mut Vec<(Option<String>, String)>) {
    match e {
        ScalarExpr::Column { qualifier, name } => {
            out.push((qualifier.clone(), name.clone()));
        }
        ScalarExpr::Binary { lhs, rhs, .. } => {
            collect_columns(lhs, out);
            collect_columns(rhs, out);
        }
        ScalarExpr::Not(inner) | ScalarExpr::IsNull(inner) => collect_columns(inner, out),
        ScalarExpr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_columns(a, out);
            }
        }
        ScalarExpr::Exists(_) | ScalarExpr::Param { .. } | ScalarExpr::Literal(_) => {}
    }
}

/// All `$var.column` parameters directly in an expression (no `EXISTS`
/// descent).
fn params_in_expr(e: &ScalarExpr) -> Vec<(String, String)> {
    fn walk(e: &ScalarExpr, out: &mut Vec<(String, String)>) {
        match e {
            ScalarExpr::Param { var, column } => out.push((var.clone(), column.clone())),
            ScalarExpr::Binary { lhs, rhs, .. } => {
                walk(lhs, out);
                walk(rhs, out);
            }
            ScalarExpr::Not(inner) | ScalarExpr::IsNull(inner) => walk(inner, out),
            ScalarExpr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    walk(a, out);
                }
            }
            ScalarExpr::Exists(_) | ScalarExpr::Column { .. } | ScalarExpr::Literal(_) => {}
        }
    }
    let mut out = Vec::new();
    walk(e, &mut out);
    out
}

/// Splits a WHERE/HAVING clause into top-level conjuncts.
fn conjuncts(e: &ScalarExpr) -> Vec<&ScalarExpr> {
    match e {
        ScalarExpr::Binary {
            op: xvc_rel::BinOp::And,
            lhs,
            rhs,
        } => {
            let mut out = conjuncts(lhs);
            out.extend(conjuncts(rhs));
            out
        }
        _ => vec![e],
    }
}

/// Collects `EXISTS` subqueries anywhere in an expression.
fn exists_in_expr<'e>(e: &'e ScalarExpr, out: &mut Vec<&'e SelectQuery>) {
    match e {
        ScalarExpr::Exists(q) => out.push(q),
        ScalarExpr::Binary { lhs, rhs, .. } => {
            exists_in_expr(lhs, out);
            exists_in_expr(rhs, out);
        }
        ScalarExpr::Not(inner) | ScalarExpr::IsNull(inner) => exists_in_expr(inner, out),
        ScalarExpr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                exists_in_expr(a, out);
            }
        }
        ScalarExpr::Column { .. } | ScalarExpr::Param { .. } | ScalarExpr::Literal(_) => {}
    }
}

/// Context threaded through one analysis unit's extraction.
struct UnitCx<'c> {
    catalog: &'c Catalog,
    view: ViewNodeId,
    rule: Option<usize>,
    unit: &'c str,
    resolver: &'c Resolver<'c>,
    /// Recursion taint: every edge becomes recompute-required.
    recursive: bool,
    /// The unit's query aggregates (`GROUP BY` / aggregate select items).
    aggregating: bool,
}

impl UnitCx<'_> {
    fn push(
        &self,
        map: &mut DependencyMap,
        table: String,
        column: String,
        role: DepRole,
        mut safety: UpdateSafety,
        mut chain: Vec<String>,
    ) {
        if self.recursive {
            safety = UpdateSafety::RecomputeRequired;
            chain.push("the unit sits on a recursion cycle (XVC503 territory): instances feed instances, so no static patch exists".to_owned());
        }
        map.edges.push(DepEdge {
            table,
            column,
            view: self.view,
            rule: self.rule,
            unit: self.unit.to_owned(),
            role,
            safety,
            chain,
        });
    }

    /// Safety of a non-structural (output) edge under this unit.
    fn output_safety(&self) -> UpdateSafety {
        if self.aggregating {
            UpdateSafety::RecomputeRequired
        } else {
            UpdateSafety::InPlacePatch
        }
    }
}

/// Extracts every edge of one query-bearing unit into `map`.
#[allow(clippy::too_many_arguments)]
fn collect_unit(
    map: &mut DependencyMap,
    catalog: &Catalog,
    q: &SelectQuery,
    guard: Option<&ScalarExpr>,
    view: ViewNodeId,
    rule: Option<usize>,
    unit: &str,
    resolver: &Resolver<'_>,
    recursive: bool,
) {
    let cx = UnitCx {
        catalog,
        view,
        rule,
        unit,
        resolver,
        recursive,
        aggregating: q.is_aggregating(),
    };
    collect_query(map, &cx, q, DepRole::Predicate, true);
    if let Some(g) = guard {
        collect_guard_expr(map, &cx, g);
    }
}

/// Extracts a guard-only unit (rebind nodes, raw-view guards).
#[allow(clippy::too_many_arguments)]
fn collect_guard_unit(
    map: &mut DependencyMap,
    catalog: &Catalog,
    g: &ScalarExpr,
    view: ViewNodeId,
    rule: Option<usize>,
    unit: &str,
    resolver: &Resolver<'_>,
    recursive: bool,
) {
    let cx = UnitCx {
        catalog,
        view,
        rule,
        unit,
        resolver,
        recursive,
        aggregating: false,
    };
    collect_guard_expr(map, &cx, g);
}

/// Walks one query level: scan sources, WHERE conjunct roles, projected
/// outputs, `GROUP BY` / `HAVING`. `top` is false inside derived tables
/// and `EXISTS` subqueries, whose select lists are not the unit's XML
/// output (their outputs surface through `resolve_output` instead) and
/// whose conditions are all [`DepRole::Predicate`].
fn collect_query(
    map: &mut DependencyMap,
    cx: &UnitCx<'_>,
    q: &SelectQuery,
    condition_role: DepRole,
    top: bool,
) {
    // Scan sources, recursing into derived tables.
    for item in &q.from {
        match item {
            TableRef::Named { name, .. } => {
                let safety = if cx.aggregating {
                    UpdateSafety::RecomputeRequired
                } else {
                    UpdateSafety::InsertMonotone
                };
                cx.push(
                    map,
                    name.clone(),
                    "*".to_owned(),
                    DepRole::Scan,
                    safety,
                    vec![
                        format!("{} scans FROM {}", cx.unit, name),
                        if cx.aggregating {
                            "the query aggregates, so new rows can rewrite existing groups"
                                .to_owned()
                        } else {
                            "each new row appends one tuple to this scan".to_owned()
                        },
                    ],
                );
            }
            TableRef::Derived { query, .. } => {
                collect_query(map, cx, query, DepRole::Predicate, false);
            }
        }
    }

    // WHERE conjuncts: join keys vs. pushdown predicates.
    if let Some(w) = &q.where_clause {
        for c in conjuncts(w) {
            collect_condition(map, cx, q, c, condition_role);
        }
    }

    // GROUP BY and HAVING are always structural.
    for e in &q.group_by {
        for (qual, name) in columns_in_expr(e) {
            for (t, col) in resolve_col(q, cx.catalog, qual.as_deref(), &name) {
                cx.push(
                    map,
                    t,
                    col,
                    DepRole::Predicate,
                    UpdateSafety::RecomputeRequired,
                    vec![
                        format!("{} groups by {}", cx.unit, name),
                        "a changed grouping column moves rows between groups".to_owned(),
                    ],
                );
            }
        }
    }
    if let Some(h) = &q.having {
        for c in conjuncts(h) {
            for (qual, name) in columns_in_expr(c) {
                for (t, col) in resolve_col(q, cx.catalog, qual.as_deref(), &name) {
                    cx.push(
                        map,
                        t,
                        col,
                        DepRole::Predicate,
                        UpdateSafety::RecomputeRequired,
                        vec![
                            format!("{} filters groups on HAVING over {}", cx.unit, name),
                            "group-level conditions re-evaluate under any member change".to_owned(),
                        ],
                    );
                }
            }
            let mut subs = Vec::new();
            exists_in_expr(c, &mut subs);
            for sq in subs {
                collect_query(map, cx, sq, DepRole::Predicate, false);
            }
        }
    }

    // Projected output (top level only: derived outputs surface through
    // the consumer that references them).
    if top {
        for item in &q.select {
            match item {
                SelectItem::Expr { expr, alias } => {
                    let visible = alias
                        .clone()
                        .or(match expr {
                            ScalarExpr::Column { name, .. } => Some(name.clone()),
                            _ => None,
                        })
                        .unwrap_or_else(|| "?".to_owned());
                    for (qual, name) in columns_in_expr(expr) {
                        for (t, col) in resolve_col(q, cx.catalog, qual.as_deref(), &name) {
                            cx.push(
                                map,
                                t,
                                col,
                                DepRole::Output,
                                cx.output_safety(),
                                vec![
                                    format!(
                                        "{} projects {} as attribute {}",
                                        cx.unit, name, visible
                                    ),
                                    if cx.aggregating {
                                        "the projection feeds an aggregating query".to_owned()
                                    } else {
                                        "value changes patch the attribute in place".to_owned()
                                    },
                                ],
                            );
                        }
                    }
                }
                SelectItem::Star => {
                    for (alias, item) in scope_of(q) {
                        expand_star_output(map, cx, &alias, &item);
                    }
                }
                SelectItem::QualifiedStar(alias) => {
                    for (a, item) in scope_of(q) {
                        if a == *alias {
                            expand_star_output(map, cx, &a, &item);
                        }
                    }
                }
            }
        }
    }
}

/// Expands a `*` / `alias.*` select item into per-column output edges.
fn expand_star_output(map: &mut DependencyMap, cx: &UnitCx<'_>, alias: &str, item: &ScopeItem<'_>) {
    match item {
        ScopeItem::Base(table) => {
            if let Ok(schema) = cx.catalog.get(table) {
                for col in schema.column_names() {
                    cx.push(
                        map,
                        (*table).to_owned(),
                        col.clone(),
                        DepRole::Output,
                        cx.output_safety(),
                        vec![
                            format!("{} projects {alias}.* including {col}", cx.unit),
                            "star projections publish every column as an attribute".to_owned(),
                        ],
                    );
                }
            }
        }
        ScopeItem::Derived(dq) => {
            // A derived star re-exports the derived query's output names;
            // resolve each through the derived query.
            for out_item in &dq.select {
                if let SelectItem::Expr { expr, alias: a } = out_item {
                    let visible = a.clone().or(match expr {
                        ScalarExpr::Column { name, .. } => Some(name.clone()),
                        _ => None,
                    });
                    if let Some(v) = visible {
                        for (t, col) in resolve_output(dq, cx.catalog, &v) {
                            cx.push(
                                map,
                                t,
                                col,
                                DepRole::Output,
                                cx.output_safety(),
                                vec![
                                    format!(
                                        "{} projects {alias}.* including {v} (via derived table)",
                                        cx.unit
                                    ),
                                    "star projections publish every column as an attribute"
                                        .to_owned(),
                                ],
                            );
                        }
                    }
                } else if let SelectItem::Star = out_item {
                    for (a2, inner) in scope_of(dq) {
                        expand_star_output(map, cx, &a2, &inner);
                    }
                }
            }
        }
    }
}

/// Classifies one WHERE conjunct: equality against a column or parameter
/// makes join-key edges; anything else is a predicate. `EXISTS`
/// subqueries contribute their own scans and predicate edges.
fn collect_condition(
    map: &mut DependencyMap,
    cx: &UnitCx<'_>,
    q: &SelectQuery,
    c: &ScalarExpr,
    role: DepRole,
) {
    let rendered = render_condition(c);
    if let ScalarExpr::Binary {
        op: xvc_rel::BinOp::Eq,
        lhs,
        rhs,
    } = c
    {
        let col_param = |a: &ScalarExpr, b: &ScalarExpr| {
            matches!(a, ScalarExpr::Column { .. }) && matches!(b, ScalarExpr::Param { .. })
        };
        let col_col = matches!(&**lhs, ScalarExpr::Column { .. })
            && matches!(&**rhs, ScalarExpr::Column { .. });
        if col_col || col_param(lhs, rhs) || col_param(rhs, lhs) {
            for (qual, name) in columns_in_expr(c) {
                for (t, col) in resolve_col(q, cx.catalog, qual.as_deref(), &name) {
                    cx.push(
                        map,
                        t,
                        col,
                        DepRole::JoinKey,
                        UpdateSafety::RecomputeRequired,
                        vec![
                            format!("{} joins on {rendered}", cx.unit),
                            "a changed join key re-parents rows across parent instances".to_owned(),
                        ],
                    );
                }
            }
            for (var, column) in params_in_expr(c) {
                for (t, col) in (cx.resolver)(&var, &column) {
                    let chain = vec![
                        format!("{} joins on {rendered}", cx.unit),
                        format!(
                            "${var}.{column} resolves through the binding ancestor to {t}.{col}"
                        ),
                    ];
                    cx.push(
                        map,
                        t,
                        col,
                        DepRole::JoinKey,
                        UpdateSafety::RecomputeRequired,
                        chain,
                    );
                }
            }
            return;
        }
    }

    // Generic condition: every referenced column / parameter is a
    // predicate (or guard) input.
    for (qual, name) in columns_in_expr(c) {
        for (t, col) in resolve_col(q, cx.catalog, qual.as_deref(), &name) {
            cx.push(
                map,
                t,
                col,
                role,
                UpdateSafety::RecomputeRequired,
                vec![
                    format!("{} filters on {rendered}", cx.unit),
                    "a changed condition input adds or removes instances".to_owned(),
                ],
            );
        }
    }
    for (var, column) in params_in_expr(c) {
        for (t, col) in (cx.resolver)(&var, &column) {
            let chain = vec![
                format!("{} filters on {rendered}", cx.unit),
                format!("${var}.{column} resolves through the binding ancestor to {t}.{col}"),
            ];
            cx.push(map, t, col, role, UpdateSafety::RecomputeRequired, chain);
        }
    }
    let mut subs = Vec::new();
    exists_in_expr(c, &mut subs);
    for sq in subs {
        collect_query(map, cx, sq, DepRole::Predicate, false);
    }
}

/// Guard expressions have no FROM scope of their own: parameters resolve
/// through ancestors, `EXISTS` subqueries carry their own scopes.
fn collect_guard_expr(map: &mut DependencyMap, cx: &UnitCx<'_>, g: &ScalarExpr) {
    for c in conjuncts(g) {
        let rendered = render_condition(c);
        for (var, column) in params_in_expr(c) {
            for (t, col) in (cx.resolver)(&var, &column) {
                let chain = vec![
                    format!("{} guards emission on {rendered}", cx.unit),
                    format!("${var}.{column} resolves through the binding ancestor to {t}.{col}"),
                    "a flipped guard adds or removes whole subtrees".to_owned(),
                ];
                cx.push(
                    map,
                    t,
                    col,
                    DepRole::Guard,
                    UpdateSafety::RecomputeRequired,
                    chain,
                );
            }
        }
        let mut subs = Vec::new();
        exists_in_expr(c, &mut subs);
        for sq in subs {
            collect_guard_subquery(map, cx, sq);
        }
    }
}

/// Inside a guard's `EXISTS`: scans and conditions are guard-role edges
/// (tripping the existence check restructures the document).
fn collect_guard_subquery(map: &mut DependencyMap, cx: &UnitCx<'_>, q: &SelectQuery) {
    for item in &q.from {
        match item {
            TableRef::Named { name, .. } => {
                cx.push(
                    map,
                    name.clone(),
                    "*".to_owned(),
                    DepRole::Guard,
                    UpdateSafety::RecomputeRequired,
                    vec![
                        format!("{} guards emission via EXISTS over {}", cx.unit, name),
                        "a new or deleted row can flip the existence check".to_owned(),
                    ],
                );
            }
            TableRef::Derived { query, .. } => collect_guard_subquery(map, cx, query),
        }
    }
    if let Some(w) = &q.where_clause {
        for c in conjuncts(w) {
            collect_condition(map, cx, q, c, DepRole::Guard);
        }
    }
}

/// Compact, stable rendering of a conjunct for fact chains.
fn render_condition(c: &ScalarExpr) -> String {
    let mut probe = SelectQuery::new(vec![SelectItem::expr(ScalarExpr::int(1))], vec![]);
    probe.where_clause = Some(c.clone());
    let sql = probe.to_sql_inline();
    sql.split_once("WHERE ")
        .map_or_else(|| sql.clone(), |(_, p)| p.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctg::build_ctg;
    use crate::paper_fixtures::{figure1_view, figure2_catalog};
    use crate::tvq::{build_tvq, DEFAULT_TVQ_LIMIT};
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    fn figure4_map() -> (SchemaTree, DependencyMap) {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let cat = figure2_catalog();
        let ctg = build_ctg(&v, &x).unwrap();
        let tvq = build_tvq(&v, &x, &ctg, &cat, DEFAULT_TVQ_LIMIT).unwrap();
        let map = DependencyMap::of_tvq(&tvq, &v, &cat);
        (v, map)
    }

    #[test]
    fn figure4_tvq_roles_and_safety() {
        let (_, map) = figure4_map();
        assert!(!map.recursive);
        let cols = map.columns();
        // metroarea is scanned and its key joins downstream nodes.
        assert!(cols.contains_key(&("metroarea".into(), "*".into())));
        let metroid = &cols[&("metroarea".into(), "metroid".into())];
        assert!(
            metroid.iter().any(|e| e.role == DepRole::JoinKey),
            "{metroid:?}"
        );
        // The confstat rule aggregates over confroom: its scan edges are
        // recompute-required.
        assert!(
            map.edges.iter().any(|e| e.table == "confroom"
                && e.role == DepRole::Scan
                && e.safety == UpdateSafety::RecomputeRequired),
            "{:#?}",
            map.edges
                .iter()
                .filter(|e| e.table == "confroom")
                .collect::<Vec<_>>()
        );
        // Every edge is justified.
        for e in &map.edges {
            assert!(!e.chain.is_empty());
            assert!(e.justification().starts_with("fact chain: "));
        }
        // Non-aggregating scans stay insert-monotone somewhere.
        assert!(map
            .edges
            .iter()
            .any(|e| e.safety == UpdateSafety::InsertMonotone));
    }

    #[test]
    fn dead_tables_and_touch_counts() {
        let (_, map) = figure4_map();
        let cat = figure2_catalog();
        // FIGURE4 only traverses metro/confstat/confroom: hotelchain is
        // never read by any TVQ query.
        let dead = map.dead_tables(&cat);
        assert!(dead.contains(&"hotelchain".to_owned()), "{dead:?}");
        assert!(map.touch_count("metroarea", "metroid") >= 1);
        assert!(!map.affected_views("metroarea").is_empty());
        assert!(map.affected_views("no_such_table").is_empty());
    }

    #[test]
    fn raw_view_walk_marks_recursion_recompute_required() {
        let v = figure1_view();
        let cat = figure2_catalog();
        let map = DependencyMap::of_view(&v, &cat, true);
        assert!(map.recursive);
        assert!(!map.edges.is_empty());
        assert!(map
            .edges
            .iter()
            .all(|e| e.safety == UpdateSafety::RecomputeRequired));
        assert!(map
            .edges
            .iter()
            .all(|e| e.chain.last().unwrap().contains("recursion cycle")));
    }

    #[test]
    fn render_and_json_are_well_formed() {
        let (_, map) = figure4_map();
        let text = map.render();
        assert!(text.contains("metroarea.metroid"), "{text}");
        assert!(text.contains("join-key"), "{text}");
        assert!(text.contains("fact chain: "), "{text}");
        let json = map.to_json();
        assert!(json.starts_with("{\"recursive\":false"));
        assert!(json.contains("\"role\":\"join-key\""));
        assert!(json.contains("\"safety\":\"recompute-required\""));
    }

    #[test]
    fn view_param_resolution_follows_ancestors() {
        let v = figure1_view();
        let cat = figure2_catalog();
        let map = DependencyMap::of_view(&v, &cat, false);
        // The hotel node's join on $m.metroid must trace back to
        // metroarea.metroid through the metro ancestor's projection.
        assert!(
            map.edges.iter().any(|e| e.table == "metroarea"
                && e.column == "metroid"
                && e.role == DepRole::JoinKey
                && e.chain.iter().any(|f| f.contains("binding ancestor"))),
            "{:#?}",
            map.edges
                .iter()
                .filter(|e| e.role == DepRole::JoinKey)
                .collect::<Vec<_>>()
        );
    }
}
