//! Error type for the composition algorithm.

use std::fmt;

/// Result alias used throughout `xvc-core`.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the composition algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The stylesheet is outside the composable fragment.
    NotComposable {
        /// Which construct is unsupported and why.
        reason: String,
    },
    /// The CTG contains a cycle: the stylesheet is recursive over this
    /// view. Use [`crate::compose_recursive`] (§5.3) instead.
    RecursiveStylesheet {
        /// A node on the cycle, rendered as `(view-id, rule-index)`.
        witness: String,
    },
    /// A match pattern or select predicate resolves ambiguously over the
    /// schema tree (e.g. a `//` step with several embeddings).
    Ambiguous {
        /// Human-readable explanation.
        reason: String,
    },
    /// TVQ duplication exceeded the configured node budget (the §4.5
    /// exponential case).
    TvqTooLarge {
        /// The configured limit.
        limit: usize,
    },
    /// Error from the relational layer (e.g. while computing output
    /// columns for GROUP BY preservation).
    Rel(
        /// The underlying error.
        xvc_rel::Error,
    ),
    /// Error from the view layer (e.g. validation of the produced
    /// stylesheet view).
    View(
        /// The underlying error.
        xvc_view::Error,
    ),
    /// Error from the XSLT layer (e.g. a §5.2 rewrite failing).
    Xslt(
        /// The underlying error.
        xvc_xslt::Error,
    ),
    /// A filesystem-level failure (used by front ends loading inputs).
    Io {
        /// The path that could not be read.
        path: String,
        /// The OS-level message.
        message: String,
    },
    /// Any error, annotated with the file it came from (used by front
    /// ends so a parse failure names its input).
    InFile {
        /// The offending file.
        path: String,
        /// The underlying error.
        source: Box<Error>,
    },
}

impl Error {
    /// Wraps a [`std::io::Error`] with the path being read.
    pub fn io(path: impl Into<String>, e: &std::io::Error) -> Self {
        Error::Io {
            path: path.into(),
            message: e.to_string(),
        }
    }

    /// Annotates any error convertible to [`Error`] with its source file.
    pub fn in_file(path: impl Into<String>, e: impl Into<Error>) -> Self {
        Error::InFile {
            path: path.into(),
            source: Box::new(e.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotComposable { reason } => write!(f, "not composable: {reason}"),
            Error::RecursiveStylesheet { witness } => write!(
                f,
                "stylesheet is recursive over this view (cycle through {witness}); \
                 use compose_recursive (§5.3)"
            ),
            Error::Ambiguous { reason } => write!(f, "ambiguous: {reason}"),
            Error::TvqTooLarge { limit } => write!(
                f,
                "traverse view query exceeds the {limit}-node budget \
                 (§4.5 exponential duplication)"
            ),
            Error::Rel(e) => write!(f, "relational error: {e}"),
            Error::View(e) => write!(f, "view error: {e}"),
            Error::Xslt(e) => write!(f, "XSLT error: {e}"),
            Error::Io { path, message } => write!(f, "reading {path}: {message}"),
            Error::InFile { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Rel(e) => Some(e),
            Error::View(e) => Some(e),
            Error::Xslt(e) => Some(e),
            Error::InFile { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<xvc_rel::Error> for Error {
    fn from(e: xvc_rel::Error) -> Self {
        Error::Rel(e)
    }
}

impl From<xvc_view::Error> for Error {
    fn from(e: xvc_view::Error) -> Self {
        Error::View(e)
    }
}

impl From<xvc_xslt::Error> for Error {
    fn from(e: xvc_xslt::Error) -> Self {
        Error::Xslt(e)
    }
}
