//! The Traverse View Query (§3.2, §4.2; Figure 7(a)).
//!
//! The TVQ unrolls the CTG into a tree: one TVQ node per (entry-reachable)
//! path through the CTG, so a CTG node with several incoming edges is
//! duplicated once per incoming path — the §4.5 case where the TVQ "may be
//! up to exponentially larger than the CTG", guarded here by a node
//! budget. Each TVQ node receives a fresh binding variable (`$m` becomes
//! the paper's `$m_new`) and a tag query generated from its incoming
//! edge's select-match subtree by [`crate::unbind::unbind_smt`].

use std::collections::HashMap;

use xvc_rel::Catalog;
use xvc_view::{SchemaTree, ViewNodeId};
use xvc_xslt::Stylesheet;

use crate::ctg::Ctg;
use crate::error::{Error, Result};
use crate::unbind::{unbind_smt, UnboundQuery};

/// Default budget for TVQ duplication.
pub const DEFAULT_TVQ_LIMIT: usize = 10_000;

/// One node of the traverse view query.
#[derive(Debug, Clone, PartialEq)]
pub struct TvqNode {
    /// The schema-tree node this TVQ node traverses.
    pub view: ViewNodeId,
    /// The template rule fired at this node.
    pub rule: usize,
    /// This node's binding variable (fresh, e.g. `s_new`). Empty for the
    /// entry node; equal to the reused source for rebind nodes.
    pub bv: String,
    /// How instances of this node are produced.
    pub binding: UnboundQuery,
    /// Whether this node is the TVQ entry (root, r).
    pub is_entry: bool,
    /// `bvmap(w)`: original binding variables → TVQ binding variables.
    pub bvmap: HashMap<String, String>,
    /// Parent TVQ node.
    pub parent: Option<usize>,
    /// Children as `(node index, apply-templates index in this rule)`.
    pub children: Vec<(usize, usize)>,
}

/// The traverse view query.
#[derive(Debug, Clone, PartialEq)]
pub struct Tvq {
    /// Nodes; entries first, then depth-first.
    pub nodes: Vec<TvqNode>,
    /// Indices of the entry nodes (`(root, r)` in the default mode).
    pub roots: Vec<usize>,
}

impl Tvq {
    /// Renders the TVQ in the Figure 7(a) style.
    pub fn render(&self, view: &SchemaTree, stylesheet: &Stylesheet) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.render_node(view, stylesheet, r, 0, &mut out);
        }
        out
    }

    fn render_node(
        &self,
        view: &SchemaTree,
        _stylesheet: &Stylesheet,
        idx: usize,
        depth: usize,
        out: &mut String,
    ) {
        let w = &self.nodes[idx];
        let indent = "  ".repeat(depth);
        let view_label = if view.is_root(w.view) {
            "(0, root)".to_owned()
        } else {
            let vn = view.node(w.view).expect("non-root");
            format!("({}, {})", vn.id, vn.tag)
        };
        out.push_str(&format!("{indent}({view_label}, R{})", w.rule + 1));
        match &w.binding {
            UnboundQuery::Query(q) => {
                out.push_str(&format!("  ${}\n", w.bv));
                for line in q.to_sql().lines() {
                    out.push_str(&format!("{indent}    {line}\n"));
                }
            }
            UnboundQuery::Literal => {
                out.push_str("  [literal]\n");
            }
            UnboundQuery::Rebind { source, guard } => {
                out.push_str(&format!("  [rebind ${source}"));
                if let Some(g) = guard {
                    // Render through a throwaway query for a stable form.
                    let mut probe = xvc_rel::SelectQuery::new(
                        vec![xvc_rel::SelectItem::expr(xvc_rel::ScalarExpr::int(1))],
                        vec![],
                    );
                    probe.where_clause = Some(g.clone());
                    let sql = probe.to_sql_inline();
                    out.push_str(&format!(
                        ", guard {}",
                        sql.trim_start_matches("SELECT 1 FROM WHERE ")
                            .trim_start_matches("SELECT 1 FROM  WHERE ")
                    ));
                }
                out.push_str("]\n");
            }
        }
        if w.is_entry {
            // Entry nodes have no query; the marker line suffices.
        }
        for &(c, _) in &w.children {
            self.render_node(view, _stylesheet, c, depth + 1, out);
        }
    }
}

/// Builds the TVQ (Figure 9 lines 16–22) from a CTG.
pub fn build_tvq(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    ctg: &Ctg,
    catalog: &Catalog,
    limit: usize,
) -> Result<Tvq> {
    if let Some(witness) = ctg.has_cycle() {
        let n = &ctg.nodes[witness];
        let label = if view.is_root(n.view) {
            format!("((0, root), R{})", n.rule + 1)
        } else {
            format!(
                "(({}, {}), R{})",
                view.node(n.view).expect("non-root").id,
                view.node(n.view).expect("non-root").tag,
                n.rule + 1
            )
        };
        return Err(Error::RecursiveStylesheet { witness: label });
    }

    let mut tvq = Tvq {
        nodes: Vec::new(),
        roots: Vec::new(),
    };
    let mut bv_counter: HashMap<String, usize> = HashMap::new();

    for entry in ctg.entry_nodes(view, stylesheet) {
        let root_idx = tvq.nodes.len();
        tvq.nodes.push(TvqNode {
            view: ctg.nodes[entry].view,
            rule: ctg.nodes[entry].rule,
            bv: String::new(),
            binding: UnboundQuery::Rebind {
                source: String::new(),
                guard: None,
            },
            is_entry: true,
            bvmap: HashMap::new(),
            parent: None,
            children: Vec::new(),
        });
        tvq.roots.push(root_idx);
        expand(
            view,
            stylesheet,
            ctg,
            catalog,
            entry,
            root_idx,
            &mut tvq,
            &mut bv_counter,
            limit,
        )?;
    }
    Ok(tvq)
}

#[allow(clippy::too_many_arguments, clippy::only_used_in_recursion)]
fn expand(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    ctg: &Ctg,
    catalog: &Catalog,
    ctg_idx: usize,
    tvq_idx: usize,
    tvq: &mut Tvq,
    bv_counter: &mut HashMap<String, usize>,
    limit: usize,
) -> Result<()> {
    for edge_idx in ctg.outgoing(ctg_idx) {
        if tvq.nodes.len() >= limit {
            return Err(Error::TvqTooLarge { limit });
        }
        let edge = &ctg.edges[edge_idx];
        let target = &ctg.nodes[edge.to];
        // Literal targets have no binding variable of their own.
        let new_bv = match view.bv(target.view) {
            Some(orig) => fresh_bv(orig, bv_counter),
            None => String::new(),
        };
        let parent_bvmap = tvq.nodes[tvq_idx].bvmap.clone();
        let result = unbind_smt(view, &edge.smt, &new_bv, &parent_bvmap, catalog)?;
        let bv = match &result.query {
            UnboundQuery::Query(_) => new_bv,
            UnboundQuery::Rebind { source, .. } => source.clone(),
            UnboundQuery::Literal => String::new(),
        };
        let child_idx = tvq.nodes.len();
        tvq.nodes.push(TvqNode {
            view: target.view,
            rule: target.rule,
            bv,
            binding: result.query,
            is_entry: false,
            bvmap: result.bvmap,
            parent: Some(tvq_idx),
            children: Vec::new(),
        });
        tvq.nodes[tvq_idx]
            .children
            .push((child_idx, edge.apply_idx));
        expand(
            view, stylesheet, ctg, catalog, edge.to, child_idx, tvq, bv_counter, limit,
        )?;
    }
    Ok(())
}

/// `m` → `m_new`, then `m_new2`, `m_new3`, … on reuse (duplicated nodes).
fn fresh_bv(orig: &str, counter: &mut HashMap<String, usize>) -> String {
    let n = counter.entry(orig.to_owned()).or_insert(0);
    *n += 1;
    if *n == 1 {
        format!("{orig}_new")
    } else {
        format!("{orig}_new{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctg::build_ctg;
    use crate::paper_fixtures::{figure1_view, figure2_catalog};
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::parse_stylesheet;

    fn figure4_tvq() -> (SchemaTree, Stylesheet, Tvq) {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let tvq = build_tvq(&v, &x, &ctg, &figure2_catalog(), DEFAULT_TVQ_LIMIT).unwrap();
        (v, x, tvq)
    }

    #[test]
    fn figure7a_structure() {
        let (v, _, tvq) = figure4_tvq();
        // A chain of four nodes: (root,R1) → (metro,R2) → (confstat,R3)
        // → (confroom,R4).
        assert_eq!(tvq.nodes.len(), 4);
        assert_eq!(tvq.roots, vec![0]);
        let chain: Vec<&TvqNode> = {
            let mut out = vec![&tvq.nodes[0]];
            let mut cur = &tvq.nodes[0];
            while let Some(&(c, _)) = cur.children.first() {
                cur = &tvq.nodes[c];
                out.push(cur);
            }
            out
        };
        assert!(chain[0].is_entry);
        assert_eq!(chain[1].bv, "m_new");
        assert_eq!(chain[2].bv, "s_new");
        assert_eq!(chain[3].bv, "c_new");
        let ids: Vec<u32> = chain[1..]
            .iter()
            .map(|w| v.node(w.view).unwrap().id)
            .collect();
        assert_eq!(ids, vec![1, 4, 5]);
    }

    #[test]
    fn figure7a_queries() {
        let (v, x, tvq) = figure4_tvq();
        let r = tvq.render(&v, &x);
        // Qm_new.
        assert!(r.contains("SELECT metroid, metroname"), "{r}");
        // Qs_new with the derived hotel table and GROUP BY TEMP columns.
        assert!(r.contains("SELECT SUM(capacity), TEMP.*"), "{r}");
        assert!(r.contains("metro_id = $m_new.metroid"), "{r}");
        assert!(r.contains("GROUP BY TEMP.hotelid"), "{r}");
        // Qc_new with the EXISTS sibling condition on $s_new.
        assert!(r.contains("chotel_id = $s_new.hotelid"), "{r}");
        assert!(r.contains("EXISTS ("), "{r}");
        assert!(r.contains("rhotel_id = $s_new.hotelid"), "{r}");
    }

    #[test]
    fn duplication_for_shared_nodes() {
        // Two apply-templates in one rule reaching the same confstat node:
        // the TVQ duplicates it (and its subtree).
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro">
                   <m>
                     <xsl:apply-templates select="hotel/confstat"/>
                     <xsl:apply-templates select="hotel/confstat"/>
                   </m>
                 </xsl:template>
                 <xsl:template match="confstat"><c/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        // One CTG node for (4,confstat) but two incoming edges.
        let tvq = build_tvq(&v, &x, &ctg, &figure2_catalog(), DEFAULT_TVQ_LIMIT).unwrap();
        let confstats: Vec<&TvqNode> = tvq
            .nodes
            .iter()
            .filter(|w| v.node(w.view).map(|n| n.id) == Some(4))
            .collect();
        assert_eq!(confstats.len(), 2);
        assert_eq!(confstats[0].bv, "s_new");
        assert_eq!(confstats[1].bv, "s_new2");
    }

    #[test]
    fn budget_guards_exponential_duplication() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro"/></xsl:template>
                 <xsl:template match="metro">
                   <xsl:apply-templates select="hotel/confstat"/>
                   <xsl:apply-templates select="hotel/confstat"/>
                 </xsl:template>
                 <xsl:template match="confstat"><c/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        assert!(matches!(
            build_tvq(&v, &x, &ctg, &figure2_catalog(), 2),
            Err(Error::TvqTooLarge { limit: 2 })
        ));
    }

    #[test]
    fn recursion_is_rejected_with_witness() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel"><xsl:apply-templates select="confstat"/></xsl:template>
                 <xsl:template match="confstat"><xsl:apply-templates select=".."/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        assert!(matches!(
            build_tvq(&v, &x, &ctg, &figure2_catalog(), DEFAULT_TVQ_LIMIT),
            Err(Error::RecursiveStylesheet { .. })
        ));
    }

    #[test]
    fn rebind_transitions_inherit_bindings() {
        // A `.[guard]` transition (if-rewrite shape) produces a Rebind node
        // whose bv aliases the parent's.
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><xsl:apply-templates select="metro/hotel"/></xsl:template>
                 <xsl:template match="hotel">
                   <h><xsl:apply-templates select=".[@pool='yes']" mode="inner"/></h>
                 </xsl:template>
                 <xsl:template match="hotel" mode="inner"><lux/></xsl:template>
               </xsl:stylesheet>"#,
        )
        .unwrap();
        let ctg = build_ctg(&v, &x).unwrap();
        let tvq = build_tvq(&v, &x, &ctg, &figure2_catalog(), DEFAULT_TVQ_LIMIT).unwrap();
        let rebind = tvq
            .nodes
            .iter()
            .find(|w| !w.is_entry && matches!(w.binding, UnboundQuery::Rebind { .. }))
            .expect("rebind node");
        let UnboundQuery::Rebind { source, guard } = &rebind.binding else {
            unreachable!()
        };
        assert_eq!(source, "h_new");
        assert_eq!(rebind.bv, "h_new");
        assert!(guard.is_some());
    }
}
