//! The top-level composition entry points (Figure 9's `Compose(v, x)`).

use xvc_rel::Catalog;
use xvc_view::SchemaTree;
use xvc_xslt::{rewrite, Stylesheet};

use crate::ctg::build_ctg;
use crate::error::Result;
use crate::stylesheet_view::build_stylesheet_view;
use crate::tvq::{build_tvq, DEFAULT_TVQ_LIMIT};

/// Tuning knobs for composition.
#[derive(Debug, Clone, Copy)]
pub struct ComposeOptions {
    /// Budget for TVQ duplication (§4.5's exponential case). Exceeding it
    /// yields [`crate::Error::TvqTooLarge`] instead of unbounded blowup.
    pub tvq_limit: usize,
    /// Run the Kim-style simplification pass (`xvc_rel::optimize`) over
    /// every generated tag query: trivial derived tables unnest, duplicate
    /// conjuncts collapse. Off by default so the artifacts match the
    /// paper's figures verbatim.
    pub optimize: bool,
    /// Run the predicate-dataflow pruning pass ([`crate::prune`]) between
    /// the TVQ and stylesheet-view stages: provably dead TVQ subtrees are
    /// removed and redundant conjuncts dropped, with every decision
    /// justified by a recorded fact chain. Off by default for the same
    /// reason as `optimize`.
    pub prune: bool,
}

impl Default for ComposeOptions {
    fn default() -> Self {
        ComposeOptions {
            tvq_limit: DEFAULT_TVQ_LIMIT,
            optimize: false,
            prune: false,
        }
    }
}

/// Everything one composition produced.
#[derive(Debug, Clone)]
pub struct Composition {
    /// The stylesheet view `v'` with `v'(I) = x(v(I))`.
    pub view: SchemaTree,
    /// Per-stage size statistics (CTG/TVQ/composed-view counts, §4.5
    /// duplication factor, unbind depth, pruning counters).
    pub stats: crate::stats::ComposeStats,
    /// The stylesheet actually composed: the input verbatim, or its §5.2
    /// lowering when [`Composer::rewrites`] was enabled.
    pub stylesheet: Stylesheet,
}

/// Builder-style composition entry point (Figure 9's `Compose(v, x)`):
/// configures the §5.2 rewrites, pruning, optimization and the TVQ budget,
/// then [`run`](Composer::run)s, producing a [`Composition`] whose view
/// satisfies `v'(I) = x(v(I))` for every instance `I` (document order
/// excluded, §2.2.2).
///
/// ```no_run
/// # use xvc_core::Composer;
/// # fn demo(view: &xvc_view::SchemaTree, xslt: &xvc_xslt::Stylesheet,
/// #         catalog: &xvc_rel::Catalog) -> xvc_core::Result<()> {
/// let composition = Composer::new(view, xslt, catalog)
///     .rewrites(true) // lower flow control / general value-of first
///     .prune(true)    // drop provably dead TVQ subtrees
///     .run()?;
/// println!("{}", composition.view.render());
/// # Ok(()) }
/// ```
///
/// Recursive stylesheets go through [`crate::compose_recursive`] instead.
#[derive(Debug, Clone)]
pub struct Composer<'a> {
    view: &'a SchemaTree,
    stylesheet: &'a Stylesheet,
    catalog: &'a Catalog,
    rewrites: bool,
    options: ComposeOptions,
}

impl<'a> Composer<'a> {
    /// A composer over `view` and `stylesheet` with default options: no
    /// rewrites, no pruning, no optimization, the default TVQ budget.
    pub fn new(view: &'a SchemaTree, stylesheet: &'a Stylesheet, catalog: &'a Catalog) -> Self {
        Composer {
            view,
            stylesheet,
            catalog,
            rewrites: false,
            options: ComposeOptions::default(),
        }
    }

    /// Lower the stylesheet through the §5.2 `XSLT_transformable` rewrites
    /// (flow control, general `value-of`, conflict resolution) before
    /// composing. The lowered stylesheet is returned in
    /// [`Composition::stylesheet`].
    pub fn rewrites(mut self, on: bool) -> Self {
        self.rewrites = on;
        self
    }

    /// Run the predicate-dataflow pruning pass ([`crate::prune`]) between
    /// the TVQ and stylesheet-view stages.
    pub fn prune(mut self, on: bool) -> Self {
        self.options.prune = on;
        self
    }

    /// Run the Kim-style simplification pass (`xvc_rel::optimize`) over
    /// every generated tag query.
    pub fn optimize(mut self, on: bool) -> Self {
        self.options.optimize = on;
        self
    }

    /// Budget for TVQ duplication (§4.5's exponential case).
    pub fn tvq_limit(mut self, limit: usize) -> Self {
        self.options.tvq_limit = limit;
        self
    }

    /// Apply a whole [`ComposeOptions`] at once (the CLI's path).
    pub fn with_options(mut self, options: ComposeOptions) -> Self {
        self.options = options;
        self
    }

    /// Composes, producing the stylesheet view plus statistics.
    pub fn run(&self) -> Result<Composition> {
        let effective = if self.rewrites {
            Some(rewrite::lower_to_basic(self.stylesheet)?)
        } else {
            None
        };
        let stylesheet = effective.as_ref().unwrap_or(self.stylesheet);
        let (view, stats) = compose_impl(self.view, stylesheet, self.catalog, self.options)?;
        Ok(Composition {
            view,
            stats,
            stylesheet: effective.unwrap_or_else(|| self.stylesheet.clone()),
        })
    }
}

fn compose_impl(
    view: &SchemaTree,
    stylesheet: &Stylesheet,
    catalog: &Catalog,
    options: ComposeOptions,
) -> Result<(SchemaTree, crate::stats::ComposeStats)> {
    view.validate()?;
    let ctg = build_ctg(view, stylesheet)?;
    let mut tvq = build_tvq(view, stylesheet, &ctg, catalog, options.tvq_limit)?;
    let prune_stats = if options.prune {
        crate::prune::prune_tvq(&mut tvq, catalog)
    } else {
        crate::prune::PruneStats::default()
    };
    let mut composed = build_stylesheet_view(view, stylesheet, &tvq, catalog)?;
    if options.optimize {
        for vid in composed.node_ids() {
            if let Some(node) = composed.node_mut(vid) {
                if let Some(q) = &mut node.query {
                    xvc_rel::optimize(q, catalog)?;
                }
            }
        }
    }
    let mut stats = crate::stats::ComposeStats::collect(view, stylesheet, &ctg, &tvq, &composed);
    stats.tvq_nodes_pruned = prune_stats.nodes_removed;
    stats.conjuncts_eliminated = prune_stats.conjuncts_eliminated;
    Ok((composed, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_fixtures::{
        figure1_view, figure2_catalog, sample_database, FIGURE15_XSLT, FIGURE17_XSLT,
    };
    use xvc_rel::Database;
    use xvc_view::Engine;
    use xvc_xml::{documents_equal_unordered, Document};
    use xvc_xslt::parse::FIGURE4_XSLT;
    use xvc_xslt::{parse_stylesheet, process};

    /// Shadows the deprecated free function: the tests exercise the
    /// builder path.
    fn compose(view: &SchemaTree, x: &Stylesheet, catalog: &Catalog) -> Result<SchemaTree> {
        Composer::new(view, x, catalog).run().map(|c| c.view)
    }

    fn publish_doc(tree: &SchemaTree, db: &Database) -> Document {
        Engine::new(tree).session().publish(db).unwrap().document
    }

    /// The headline theorem: `v'(I) = x(v(I))`, checked without document
    /// order.
    fn assert_equivalent(xslt: &str) {
        let v = figure1_view();
        let x = parse_stylesheet(xslt).unwrap();
        let db = sample_database();
        let composed =
            compose(&v, &x, &figure2_catalog()).unwrap_or_else(|e| panic!("compose failed: {e}"));
        let view_doc = publish_doc(&v, &db);
        let expected = process(&x, &view_doc).unwrap();
        let actual = publish_doc(&composed, &db);
        assert!(
            documents_equal_unordered(&expected, &actual),
            "expected (x(v(I))):\n{}\nactual (v'(I)):\n{}\nstylesheet view:\n{}",
            expected.to_pretty_xml(),
            actual.to_pretty_xml(),
            composed.render(),
        );
    }

    /// Same theorem, for stylesheets that first need the §5.2 rewrites.
    fn assert_equivalent_with_rewrites(xslt: &str) {
        let v = figure1_view();
        let x = parse_stylesheet(xslt).unwrap();
        let db = sample_database();
        let composition = Composer::new(&v, &x, &figure2_catalog())
            .rewrites(true)
            .run()
            .unwrap_or_else(|e| panic!("compose with rewrites failed: {e}"));
        let composed = &composition.view;
        let view_doc = publish_doc(&v, &db);
        let expected = process(&x, &view_doc).unwrap();
        let actual = publish_doc(composed, &db);
        assert!(
            documents_equal_unordered(&expected, &actual),
            "expected (x(v(I))):\n{}\nactual (v'(I)):\n{}\nlowered rules: {}\nstylesheet view:\n{}",
            expected.to_pretty_xml(),
            actual.to_pretty_xml(),
            composition.stylesheet.len(),
            composed.render(),
        );
    }

    #[test]
    fn figure4_composes_and_matches_engine() {
        assert_equivalent(FIGURE4_XSLT);
    }

    #[test]
    fn figure15_forced_unbinding_matches_engine() {
        assert_equivalent(FIGURE15_XSLT);
    }

    #[test]
    fn figure7c_structure() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE4_XSLT).unwrap();
        let composed = compose(&v, &x, &figure2_catalog()).unwrap();
        let r = composed.render();
        // The HTML skeleton survives as literals.
        assert!(r.contains("<HTML>  [literal]"), "{r}");
        assert!(r.contains("<BODY>  [literal]"), "{r}");
        // result_metro carries Qm_new; result_confstat carries Qs_new;
        // confroom carries Qc_new.
        assert!(r.contains("<result_metro>"), "{r}");
        assert!(r.contains("SELECT metroid, metroname"), "{r}");
        assert!(r.contains("<result_confstat>"), "{r}");
        assert!(r.contains("SELECT SUM(capacity), TEMP.*"), "{r}");
        assert!(r.contains("<confroom>"), "{r}");
        assert!(r.contains("EXISTS ("), "{r}");
    }

    #[test]
    fn figure17_predicates_match_engine() {
        assert_equivalent(FIGURE17_XSLT);
    }

    #[test]
    fn figure17_composed_sql_has_predicates() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE17_XSLT).unwrap();
        let composed = compose(&v, &x, &figure2_catalog()).unwrap();
        let r = composed.render();
        // Figure 20's conditions, modulo our column naming (see DESIGN.md):
        assert!(r.contains("capacity > 250"), "{r}");
        assert!(r.contains("$s_new.sum < 200"), "{r}");
        assert!(r.contains("$m_new.metroname = 'chicago'"), "{r}");
        assert!(r.contains("HAVING SUM(capacity) > 100"), "{r}");
    }

    #[test]
    fn flow_control_if_composes_via_rewrites() {
        assert_equivalent_with_rewrites(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>
                 <xsl:template match="metro">
                   <m>
                     <xsl:apply-templates select="hotel"/>
                   </m>
                 </xsl:template>
                 <xsl:template match="hotel">
                   <h>
                     <xsl:if test="@pool='yes'"><has_pool/></xsl:if>
                   </h>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn flow_control_choose_composes_via_rewrites() {
        assert_equivalent_with_rewrites(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>
                 <xsl:template match="hotel">
                   <h>
                     <xsl:choose>
                       <xsl:when test="@pool='yes'"><pool/></xsl:when>
                       <xsl:when test="@gym='yes'"><gym_only/></xsl:when>
                       <xsl:otherwise><plain/></xsl:otherwise>
                     </xsl:choose>
                   </h>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn value_of_attribute_composes() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>
                 <xsl:template match="metro">
                   <m><xsl:value-of select="@metroname"/></m>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn nested_value_of_context_composes() {
        // value-of "." nested under a literal element: a context-copy node.
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>
                 <xsl:template match="hotel">
                   <wrapper><inner><xsl:value-of select="."/></inner></wrapper>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn copy_of_grafts_original_subtree() {
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro/hotel"/></out></xsl:template>
                 <xsl:template match="hotel">
                   <xsl:copy-of select="."/>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn general_value_of_composes_via_rewrites() {
        assert_equivalent_with_rewrites(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>
                 <xsl:template match="metro">
                   <m><xsl:value-of select="hotel/confroom"/></m>
                 </xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn multiple_applies_compose() {
        // Two apply-templates reaching different nodes.
        assert_equivalent(
            r#"<xsl:stylesheet>
                 <xsl:template match="/"><out><xsl:apply-templates select="metro"/></out></xsl:template>
                 <xsl:template match="metro">
                   <m>
                     <xsl:apply-templates select="confstat" mode="summary"/>
                     <xsl:apply-templates select="hotel"/>
                   </m>
                 </xsl:template>
                 <xsl:template match="confstat" mode="summary"><sum_node/></xsl:template>
                 <xsl:template match="hotel"><h><xsl:value-of select="@hotelname"/></h></xsl:template>
               </xsl:stylesheet>"#,
        );
    }

    #[test]
    fn text_output_is_rejected_with_guidance() {
        let v = figure1_view();
        let x = parse_stylesheet(
            r#"<xsl:stylesheet><xsl:template match="/"><a>text!</a></xsl:template></xsl:stylesheet>"#,
        )
        .unwrap();
        let err = compose(&v, &x, &figure2_catalog()).unwrap_err();
        assert!(matches!(err, crate::Error::NotComposable { .. }));
        assert!(err.to_string().contains("attribute-only"));
    }

    #[test]
    fn figure16_structure() {
        let v = figure1_view();
        let x = parse_stylesheet(FIGURE15_XSLT).unwrap();
        let composed = compose(&v, &x, &figure2_catalog()).unwrap();
        let r = composed.render();
        // R2 had no output: result_confstat's query swallowed Qm (forced
        // unbinding) — a nested derived table over metroarea appears.
        assert!(r.contains("<result_confstat>"), "{r}");
        assert!(r.contains("FROM metroarea"), "{r}");
        assert!(!r.contains("result_metro"), "{r}");
    }
}
