//! Tree-pattern queries over schema-tree nodes (§3.5, Figure 8).
//!
//! A tree pattern is a small tree whose nodes *refer to* schema-tree view
//! nodes. Distinct pattern nodes may reference the same view node — the
//! predicate example of Figure 18 has two `confstat` pattern nodes, one on
//! the main path and one required-to-exist sibling. Two pattern nodes are
//! distinguished: the **query context node** (the paper's `m`, where
//! evaluation starts) and the **new query context node** (`n`, where it
//! ends). Each pattern node carries attribute-level predicates (§5.1).

use xvc_view::{SchemaTree, ViewNodeId};
use xvc_xpath::Expr;

/// Identifier of a node inside a [`TreePattern`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TpId(pub(crate) usize);

#[derive(Debug, Clone, PartialEq)]
struct TpNodeData {
    view: ViewNodeId,
    parent: Option<TpId>,
    children: Vec<TpId>,
    predicates: Vec<Expr>,
    /// Negated existence branch: the instance must NOT exist
    /// (`not(path)` predicates become `NOT EXISTS` in SQL).
    negated: bool,
}

/// A tree-pattern query (select-match subtree).
#[derive(Debug, Clone, PartialEq)]
pub struct TreePattern {
    nodes: Vec<TpNodeData>,
    /// The query context node (`m`).
    pub context: TpId,
    /// The new query context node (`n`); for a `MATCHQ` pattern this
    /// equals [`TreePattern::context`].
    pub new_context: TpId,
}

impl TreePattern {
    /// A single-node pattern anchored at `view`; both context markers
    /// point at it.
    pub fn single(view: ViewNodeId) -> Self {
        TreePattern {
            nodes: vec![TpNodeData {
                view,
                parent: None,
                children: Vec::new(),
                predicates: Vec::new(),
                negated: false,
            }],
            context: TpId(0),
            new_context: TpId(0),
        }
    }

    /// The view node a pattern node refers to.
    pub fn view(&self, id: TpId) -> ViewNodeId {
        self.nodes[id.0].view
    }

    /// Parent pattern node.
    pub fn parent(&self, id: TpId) -> Option<TpId> {
        self.nodes[id.0].parent
    }

    /// Children of a pattern node.
    pub fn children(&self, id: TpId) -> &[TpId] {
        &self.nodes[id.0].children
    }

    /// Predicates attached to a pattern node.
    pub fn predicates(&self, id: TpId) -> &[Expr] {
        &self.nodes[id.0].predicates
    }

    /// Attaches another predicate to a node.
    pub fn add_predicate(&mut self, id: TpId, pred: Expr) {
        if !self.nodes[id.0].predicates.contains(&pred) {
            self.nodes[id.0].predicates.push(pred);
        }
    }

    /// Adds a fresh child node under `parent`.
    pub fn add_child(&mut self, parent: TpId, view: ViewNodeId) -> TpId {
        let id = TpId(self.nodes.len());
        self.nodes.push(TpNodeData {
            view,
            parent: Some(parent),
            children: Vec::new(),
            predicates: Vec::new(),
            negated: false,
        });
        self.nodes[parent.0].children.push(id);
        id
    }

    /// Marks a node as a negated existence branch.
    pub fn set_negated(&mut self, id: TpId) {
        self.nodes[id.0].negated = true;
    }

    /// True if the node is a negated existence branch (see
    /// [`TreePattern::set_negated`]).
    pub fn is_negated(&self, id: TpId) -> bool {
        self.nodes[id.0].negated
    }

    /// Adds a fresh parent *above* `child` (which must currently be a
    /// pattern root). Used when a parent-axis step or pattern unification
    /// walks above the current top.
    pub fn add_parent_above(&mut self, child: TpId, view: ViewNodeId) -> TpId {
        assert!(
            self.nodes[child.0].parent.is_none(),
            "add_parent_above requires a pattern root"
        );
        let id = TpId(self.nodes.len());
        self.nodes.push(TpNodeData {
            view,
            parent: None,
            children: vec![child],
            predicates: Vec::new(),
            negated: false,
        });
        self.nodes[child.0].parent = Some(id);
        id
    }

    /// The pattern's root (the topmost node above the context).
    pub fn root(&self) -> TpId {
        let mut cur = self.context;
        while let Some(p) = self.parent(cur) {
            cur = p;
        }
        cur
    }

    /// Number of pattern nodes (the paper's `max_b` contributor).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the pattern has exactly one node.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Path of pattern nodes from `a` (exclusive) down to `b` (inclusive),
    /// assuming `b` is a descendant of `a`. Returns `None` otherwise.
    pub fn path_below(&self, a: TpId, b: TpId) -> Option<Vec<TpId>> {
        let mut path = vec![b];
        let mut cur = b;
        while let Some(p) = self.parent(cur) {
            if p == a {
                path.reverse();
                return Some(path);
            }
            path.push(p);
            cur = p;
        }
        None
    }

    /// Path from the pattern root (inclusive) down to `id` (inclusive).
    pub fn path_from_root(&self, id: TpId) -> Vec<TpId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Lowest common ancestor of two pattern nodes.
    pub fn lca(&self, a: TpId, b: TpId) -> TpId {
        let pa = self.path_from_root(a);
        let pb = self.path_from_root(b);
        let mut lca = pa[0];
        for (x, y) in pa.iter().zip(pb.iter()) {
            if x == y {
                lca = *x;
            } else {
                break;
            }
        }
        lca
    }

    /// Renders the pattern as an indented tree, labelling the context and
    /// new-context nodes (the Figure 8 artifact format).
    pub fn render(&self, view: &SchemaTree) -> String {
        let mut out = String::new();
        self.render_node(view, self.root(), 0, &mut out);
        out
    }

    fn render_node(&self, view: &SchemaTree, id: TpId, depth: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let vid = self.view(id);
        let tag = if view.is_root(vid) {
            "(root)".to_owned()
        } else {
            view.tag(vid).unwrap_or("?").to_owned()
        };
        out.push_str(&indent);
        if self.is_negated(id) {
            out.push_str("NOT ");
        }
        out.push_str(&tag);
        for p in self.predicates(id) {
            out.push_str(&format!("[{p}]"));
        }
        if id == self.context {
            out.push_str("  <-- query context node");
        }
        if id == self.new_context && id != self.context {
            out.push_str("  <-- new query context node");
        }
        out.push('\n');
        for &c in self.children(id) {
            self.render_node(view, c, depth + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xvc_rel::parse_query;
    use xvc_view::ViewNode;

    fn tiny_view() -> (SchemaTree, ViewNodeId, ViewNodeId, ViewNodeId) {
        let mut t = SchemaTree::new();
        let metro = t
            .add_root_node(ViewNode::new(
                1,
                "metro",
                "m",
                parse_query("SELECT metroid FROM metroarea").unwrap(),
            ))
            .unwrap();
        let hotel = t
            .add_child(
                metro,
                ViewNode::new(
                    3,
                    "hotel",
                    "h",
                    parse_query("SELECT hotelid FROM hotel").unwrap(),
                ),
            )
            .unwrap();
        let stat = t
            .add_child(
                hotel,
                ViewNode::new(
                    4,
                    "confstat",
                    "s",
                    parse_query("SELECT SUM(capacity) FROM confroom").unwrap(),
                ),
            )
            .unwrap();
        (t, metro, hotel, stat)
    }

    #[test]
    fn build_and_navigate() {
        let (_, metro, hotel, stat) = tiny_view();
        let mut tp = TreePattern::single(stat);
        let h = tp.add_parent_above(tp.context, hotel);
        let m = tp.add_parent_above(h, metro);
        let sibling = tp.add_child(h, stat);
        assert_eq!(tp.root(), m);
        assert_eq!(tp.parent(tp.context), Some(h));
        assert_eq!(tp.children(h), &[tp.context, sibling]);
        assert_eq!(tp.len(), 4);
        assert_eq!(tp.path_from_root(sibling), vec![m, h, sibling]);
        assert_eq!(tp.path_below(m, tp.context), Some(vec![h, tp.context]));
        assert_eq!(tp.path_below(sibling, m), None);
        assert_eq!(tp.lca(tp.context, sibling), h);
    }

    #[test]
    fn duplicate_view_nodes_allowed() {
        // Figure 18: the same schema-tree node may appear twice.
        let (_, _, hotel, stat) = tiny_view();
        let mut tp = TreePattern::single(hotel);
        let a = tp.add_child(tp.context, stat);
        let b = tp.add_child(tp.context, stat);
        assert_ne!(a, b);
        assert_eq!(tp.view(a), tp.view(b));
    }

    #[test]
    fn predicates_dedup() {
        let (_, metro, ..) = tiny_view();
        let mut tp = TreePattern::single(metro);
        let pred = xvc_xpath::parse_expr("@sum<200").unwrap();
        tp.add_predicate(tp.context, pred.clone());
        tp.add_predicate(tp.context, pred);
        assert_eq!(tp.predicates(tp.context).len(), 1);
    }

    #[test]
    fn renders_with_markers() {
        let (view, metro, hotel, stat) = tiny_view();
        let mut tp = TreePattern::single(stat);
        let h = tp.add_parent_above(tp.context, hotel);
        tp.add_parent_above(h, metro);
        let n = tp.add_child(h, stat);
        tp.new_context = n;
        tp.add_predicate(n, xvc_xpath::parse_expr("@sum>100").unwrap());
        let r = tp.render(&view);
        assert!(r.contains("metro\n"));
        assert!(r.contains("confstat  <-- query context node"));
        assert!(r.contains("confstat[@sum > 100]  <-- new query context node"));
    }
}
